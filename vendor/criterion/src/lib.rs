//! Offline shim of `criterion`.
//!
//! Provides the API surface the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!` — and measures each closure with a
//! fixed warm-up plus a bounded number of timed iterations, printing
//! median/mean wall-clock times.  No statistical rigour is attempted; the
//! goal is that `cargo bench` runs and reports comparable numbers offline.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Builds an id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: String::new(),
        }
    }
}

/// The timing harness handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first warming up, then recording samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..2 {
            std_black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{label:<60} median {median:>12.3?}   mean {mean:>12.3?}   ({} samples)",
        sorted.len()
    );
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.max(1);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Default sample count used when the group does not override it.
    const DEFAULT_SAMPLE_SIZE: usize = 10;

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: Self::DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: Self::DEFAULT_SAMPLE_SIZE,
        };
        f(&mut bencher);
        report(&id.to_string(), &bencher.samples);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
