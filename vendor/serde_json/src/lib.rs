//! Offline shim of `serde_json`: renders the vendored [`serde::Content`]
//! tree to JSON text and parses JSON text back.  Covers the subset of JSON
//! this repository produces (no NaN/Infinity, objects/arrays/strings/
//! numbers/booleans/null) with full string escaping.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a JSON byte slice into a value — the form line-delimited network
/// codecs hold frames in (one frame sliced out of a connection's read
/// buffer, not yet known to be valid UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| Error::new(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(text)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&content)?)
}

// --- printer ---------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_content(
    content: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite numbers"));
            }
            if v.fract() == 0.0 && v.abs() < 9.0e15 {
                // Keep integral floats readable and round-trippable.
                out.push_str(&format!("{:.1}", v));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate must follow.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character '{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number {text}")))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Content::U64(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number {text}")))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&600.0f64).unwrap(), "600.0");
        assert_eq!(from_str::<f64>("600.0").unwrap(), 600.0);
        assert_eq!(from_str::<f64>("600").unwrap(), 600.0);
        assert_eq!(
            from_str::<u64>("11400714819323198485").unwrap(),
            0x9e3779b97f4a7c15
        );
        assert_eq!(from_str::<i64>("-12").unwrap(), -12);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "a \"quote\" and \\ and \n tab\t".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<f64> = vec![1.0, 2.5, -3.0];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let mut map = std::collections::BTreeMap::new();
        map.insert("a".to_string(), 1u64);
        map.insert("b".to_string(), 2u64);
        let json = to_string(&map).unwrap();
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, u64>>(&json).unwrap(),
            map
        );
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }
}
