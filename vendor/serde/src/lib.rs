//! Offline shim of the `serde` facade.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors a minimal serialization framework under the same crate
//! name.  It covers exactly what this repository uses: `#[derive(Serialize,
//! Deserialize)]` on non-generic structs with named fields and on enums with
//! unit or tuple variants, serialized through a self-describing [`Content`]
//! tree that `serde_json` (also vendored) renders to and parses from JSON
//! text.  The representation matches real serde's JSON encoding for those
//! shapes (maps for structs, externally tagged enums), so logs written by
//! this shim stay readable by the real stack and vice versa.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model plus distinct
/// integer variants so u64 seeds survive round trips exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrows the entries of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks a field up in a map; absent fields read as `Null` so that
    /// `Option` fields deserialize to `None`.
    pub fn field<'a>(entries: &'a [(String, Content)], name: &str) -> &'a Content {
        entries
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value)
            .unwrap_or(&Content::Null)
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Builds a "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError::new(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves to a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn serialize(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) if *v >= 0 => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as $t),
                    other => Err(DeError::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    other => Err(DeError::new(format!(
                        "expected signed integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError::new(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(value) => value.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(Box::new(T::deserialize(content)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content.as_seq() {
            Some([a, b]) => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            _ => Err(DeError::new("expected two-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(key, value)| (key.clone(), value.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(key, value)| Ok((key.clone(), V::deserialize(value)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn serialize(&self) -> Content {
        // Deterministic output: sort keys so equal maps serialize equally.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(key, value)| (key.clone(), value.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(key, value)| Ok((key.clone(), V::deserialize(value)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-7i64).serialize()), Ok(-7));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
        let big = 0x9e3779b97f4a7c15u64;
        assert_eq!(u64::deserialize(&big.serialize()), Ok(big));
    }

    #[test]
    fn options_use_null() {
        assert_eq!(None::<f64>.serialize(), Content::Null);
        assert_eq!(Option::<f64>::deserialize(&Content::Null), Ok(None));
        assert_eq!(
            Option::<f64>::deserialize(&Content::F64(2.0)),
            Ok(Some(2.0))
        );
    }

    #[test]
    fn missing_fields_read_as_null() {
        let entries = vec![("a".to_string(), Content::U64(1))];
        assert_eq!(Content::field(&entries, "a"), &Content::U64(1));
        assert_eq!(Content::field(&entries, "b"), &Content::Null);
    }
}
