//! Offline shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this repository actually uses — non-generic structs with named
//! fields and enums whose variants are units or tuples — by hand-parsing the
//! item's token stream (no `syn`/`quote` available offline) and emitting the
//! impl as formatted source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn is_punct(token: &TokenTree, ch: char) -> bool {
    matches!(token, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skips `#[...]` / `#![...]` attribute groups starting at `i`.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        i += 1;
        if i < tokens.len() && is_punct(&tokens[i], '!') {
            i += 1;
        }
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket) {
            i += 1;
        } else {
            panic!("serde shim: malformed attribute");
        }
    }
    i
}

/// Skips `pub`, `pub(crate)` and friends starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Parses the field names of a named-field body `{ a: T, b: U }`.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group_tokens.len() {
        i = skip_attributes(group_tokens, i);
        if i >= group_tokens.len() {
            break;
        }
        i = skip_visibility(group_tokens, i);
        let name = match &group_tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected field name, found {other}"),
        };
        i += 1;
        if !is_punct(&group_tokens[i], ':') {
            panic!("serde shim: expected ':' after field {name}");
        }
        i += 1;
        // Consume the type: everything up to the next comma at angle-bracket
        // depth zero (parens/brackets arrive as opaque groups already).
        let mut depth = 0i32;
        while i < group_tokens.len() {
            if is_punct(&group_tokens[i], '<') {
                depth += 1;
            } else if is_punct(&group_tokens[i], '>') {
                depth -= 1;
            } else if depth == 0 && is_punct(&group_tokens[i], ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Parses enum variants as `(name, tuple_arity)`; unit variants have arity 0.
fn parse_variants(group_tokens: &[TokenTree]) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group_tokens.len() {
        i = skip_attributes(group_tokens, i);
        if i >= group_tokens.len() {
            break;
        }
        let name = match &group_tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected variant name, found {other}"),
        };
        i += 1;
        let mut arity = 0usize;
        if i < group_tokens.len() {
            if let TokenTree::Group(g) = &group_tokens[i] {
                match g.delimiter() {
                    Delimiter::Parenthesis => {
                        arity = tuple_arity(&g.stream().into_iter().collect::<Vec<_>>());
                        i += 1;
                    }
                    Delimiter::Brace => {
                        panic!("serde shim: struct variants are not supported ({name})")
                    }
                    _ => {}
                }
            }
        }
        if i < group_tokens.len() && is_punct(&group_tokens[i], ',') {
            i += 1;
        }
        variants.push((name, arity));
    }
    variants
}

/// Number of fields in a tuple-variant payload (top-level comma count).
fn tuple_arity(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    for (index, token) in tokens.iter().enumerate() {
        if is_punct(token, '<') {
            depth += 1;
        } else if is_punct(token, '>') {
            depth -= 1;
        } else if depth == 0 && is_punct(token, ',') && index + 1 < tokens.len() {
            arity += 1;
        }
    }
    arity
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected item name, found {other}"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde shim: generic types are not supported ({name})");
    }
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Some(g.stream().into_iter().collect::<Vec<_>>())
            }
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("serde shim: {name} has no braced body (tuple/unit structs are unsupported)")
        });
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde shim: cannot derive for {other}"),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let source = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(variant, arity)| match arity {
                    0 => format!(
                        "{name}::{variant} => ::serde::Content::Str(\"{variant}\".to_string()),"
                    ),
                    1 => format!(
                        "{name}::{variant}(f0) => ::serde::Content::Map(vec![\
                             (\"{variant}\".to_string(), ::serde::Serialize::serialize(f0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b}),"))
                            .collect();
                        format!(
                            "{name}::{variant}({}) => ::serde::Content::Map(vec![\
                                 (\"{variant}\".to_string(), ::serde::Content::Seq(vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    source.parse().expect("serde shim: generated impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let source = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                             ::serde::Content::field(entries, \"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(content: &::serde::Content) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let entries = content.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(variant, _)| format!("\"{variant}\" => Ok({name}::{variant}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(variant, arity)| match arity {
                    1 => format!(
                        "\"{variant}\" => Ok({name}::{variant}(\
                             ::serde::Deserialize::deserialize(payload)?)),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let reads: String = binds
                            .iter()
                            .map(|b| format!("let {b} = ::serde::Deserialize::deserialize({b})?;"))
                            .collect();
                        format!(
                            "\"{variant}\" => match payload.as_seq() {{\n\
                                 Some([{}]) => {{ {reads} Ok({name}::{variant}({})) }}\n\
                                 _ => Err(::serde::DeError::expected(\
                                     \"{n}-element array\", \"{name}::{variant}\")),\n\
                             }},",
                            binds.join(", "),
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(content: &::serde::Content) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError::new(format!(\n\
                                     \"unknown variant {{other}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::DeError::new(format!(\n\
                                         \"unknown variant {{other}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::DeError::expected(\"variant\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    source.parse().expect("serde shim: generated impl parses")
}
