//! Offline shim of `proptest`.
//!
//! Implements the slice of the proptest API this repository's property
//! tests use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, regex-subset string strategies, [`collection::vec`],
//! [`Just`], `prop_oneof!`, `any::<T>()`, `ProptestConfig::with_cases` and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.  Cases are
//! generated from a deterministic per-case seed; there is no shrinking —
//! failures report the case number so the exact inputs can be regenerated.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic RNG of one test case.
pub fn test_rng(case: u64) -> TestRng {
    StdRng::seed_from_u64(0xA5A5_5A5A_D00D_F00Du64.wrapping_add(case.wrapping_mul(0x9E37_79B9)))
}

/// A failed property check.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `func`.
    fn prop_map<O, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            func,
        }
    }

    /// Boxes the strategy for heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Helper used by `prop_oneof!` to unify strategy types.
pub fn boxed_strategy<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.strategy.generate(rng))
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.random_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

// --- numeric ranges --------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        // Occasionally emit the exact endpoints, which closed ranges are
        // typically used to probe.
        match rng.random_range(0..20usize) {
            0 => start,
            1 => end,
            _ => rng.random_range(start..end.max(start + f64::MIN_POSITIVE)),
        }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32);

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.random::<u64>() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.random::<u64>() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of magnitudes, signs and special-ish values.
        match rng.random_range(0..8usize) {
            0 => 0.0,
            1 => -rng.random::<f64>(),
            2 => rng.random::<f64>() * 1.0e9,
            3 => -rng.random::<f64>() * 1.0e9,
            _ => rng.random::<f64>(),
        }
    }
}

/// The strategy behind [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of type `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// --- regex-subset string strategies ---------------------------------------

enum PatternItem {
    /// `.` — any printable character (plus a sprinkle of non-ASCII).
    Dot,
    /// A literal character.
    Literal(char),
    /// A character class `[...]`.
    Class(Vec<char>),
}

struct PatternPart {
    item: PatternItem,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
    let mut pool = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let ch = chars.next().expect("unterminated character class");
        match ch {
            ']' => {
                if let Some(p) = pending {
                    pool.push(p);
                }
                return pool;
            }
            '-' => {
                // A range if something is pending and an end follows;
                // otherwise a literal dash.
                match (pending.take(), chars.peek().copied()) {
                    (Some(start), Some(end)) if end != ']' => {
                        chars.next();
                        for c in start..=end {
                            pool.push(c);
                        }
                    }
                    (start, _) => {
                        if let Some(s) = start {
                            pool.push(s);
                        }
                        pool.push('-');
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending.replace(chars.next().expect("dangling escape")) {
                    pool.push(p);
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    pool.push(p);
                }
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for ch in chars.by_ref() {
                if ch == '}' {
                    break;
                }
                spec.push(ch);
            }
            match spec.split_once(',') {
                Some((min, max)) => (
                    min.trim().parse().expect("bad quantifier"),
                    max.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let mut chars = pattern.chars().peekable();
    let mut parts = Vec::new();
    while let Some(ch) = chars.next() {
        let item = match ch {
            '.' => PatternItem::Dot,
            '[' => PatternItem::Class(parse_class(&mut chars)),
            '\\' => PatternItem::Literal(chars.next().expect("dangling escape")),
            other => PatternItem::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars);
        parts.push(PatternPart { item, min, max });
    }
    parts
}

/// Characters `.` draws from: printable ASCII plus a few multi-byte ones to
/// exercise UTF-8 handling.
const DOT_EXTRAS: [char; 6] = ['é', 'λ', '→', '☃', '中', '\u{00a0}'];

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let parts = parse_pattern(self);
        let mut out = String::new();
        for part in &parts {
            let count = rng.random_range(part.min..=part.max);
            for _ in 0..count {
                match &part.item {
                    PatternItem::Dot => {
                        if rng.random_range(0..12usize) == 0 {
                            out.push(DOT_EXTRAS[rng.random_range(0..DOT_EXTRAS.len())]);
                        } else {
                            out.push(char::from(rng.random_range(0x20u32..0x7f) as u8));
                        }
                    }
                    PatternItem::Literal(c) => out.push(*c),
                    PatternItem::Class(pool) => {
                        out.push(pool[rng.random_range(0..pool.len())]);
                    }
                }
            }
        }
        out
    }
}

// --- collections -----------------------------------------------------------

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --- macros ----------------------------------------------------------------

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_rng(case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!("property failed at case {case}: {error}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

/// The usual glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = super::test_rng(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"f_[a-z_]{0,10}", &mut rng);
            assert!(s.starts_with("f_"));
            assert!(s.len() <= 12);
            assert!(s[2..].chars().all(|c| c.is_ascii_lowercase() || c == '_'));

            let t = Strategy::generate(&"[A-Za-z][A-Za-z0-9_.-]{0,8}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());
            assert!(t
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));

            let u = Strategy::generate(&"[ -~]{0,16}", &mut rng);
            assert!(u.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0..5.0f64, n in 3usize..9) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![Just(1usize), 5usize..7]) {
            prop_assert!(v == 1 || v == 5 || v == 6, "v = {v}");
        }

        #[test]
        fn vectors_respect_size(items in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn config_form_parses(seed in 0u64..100) {
            prop_assert!(seed < 100);
        }
    }
}
