//! Offline shim of the `rand` crate.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the small slice of the rand API it uses: a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`RngExt`] extension trait with
//! `random::<f64>()` / `random_range(..)`, [`SeedableRng::seed_from_u64`]
//! and [`seq::SliceRandom::shuffle`].  The generator is *not* the upstream
//! ChaCha12 StdRng — only determinism per seed matters here, not stream
//! compatibility.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

/// Extension methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// A uniform sample of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..8).map(|_| a.random::<f64>()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random::<f64>()).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.random::<f64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(10.0..20.0);
            assert!((10.0..20.0).contains(&y));
            let n = rng.random_range(3usize..7);
            assert!((3..7).contains(&n));
            let m = rng.random_range(1..=4usize);
            assert!((1..=4).contains(&m));
        }
    }

    #[test]
    fn samples_look_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
