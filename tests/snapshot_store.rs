//! Integration tests of the persistent segmented snapshot store: round
//! trips, warm service rehydration, corruption handling (typed errors,
//! never panics), manifest-order authority, and the CLI's incremental
//! ingest loop.

use perfxplain::prelude::*;
use perfxplain::snapshot::{self, RecordShard, ShardInput};
use perfxplain::{
    CoreError, ExecutionKind, ExecutionLog, ExecutionRecord, QueryRequest, SnapshotManifest,
    XplainService,
};
use std::path::{Path, PathBuf};

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pxsnap_it_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The block-size log of the service tests: big-block jobs plateau, so the
/// canonical despite-blocked query is answerable.
fn block_size_log(n: usize) -> ExecutionLog {
    let mut log = ExecutionLog::new();
    for i in 0..n {
        let big_blocks = i % 2 == 0;
        let input: f64 = if i % 4 < 2 { 32.0e9 } else { 1.0e9 };
        let duration = if big_blocks { 600.0 } else { input / 5.0e7 };
        log.push(
            ExecutionRecord::job(format!("job_{i}"))
                .with_feature("inputsize", input)
                .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                .with_feature("duration", duration),
        );
        if i % 3 == 0 {
            log.push(
                ExecutionRecord::task(format!("task_{i}"), format!("job_{i}"))
                    .with_feature("tasktype", if i % 2 == 0 { "MAP" } else { "REDUCE" })
                    .with_feature("duration", duration / 10.0),
            );
        }
    }
    log.rebuild_catalogs();
    log
}

const QUERY: &str = "DESPITE inputsize_compare = GT\n\
                     OBSERVED duration_compare = SIM\n\
                     EXPECTED duration_compare = GT";

#[test]
fn open_snapshot_rehydrates_a_warm_service() {
    let dir = test_dir("warm_service");
    let log = block_size_log(40);
    let request = QueryRequest::text(QUERY).with_pair("job_0", "job_2");

    let service = XplainService::new(log.clone());
    let original = service.explain(&request).unwrap();
    service.persist(&dir).unwrap();

    let reopened = XplainService::open_snapshot(&dir).unwrap();
    // Both kinds are populated, so both views come pre-warmed from the
    // stored binary columns.
    assert_eq!(reopened.cached_view_count(), 2);
    let rehydrated = reopened.explain(&request).unwrap();
    // The very *first* query after rehydration is served from the cache —
    // the log was never re-encoded, let alone re-parsed from JSON.
    assert!(rehydrated.view_reused);
    assert_eq!(rehydrated.explanation, original.explanation);
    assert_eq!(rehydrated.query, original.query);
    assert_eq!(reopened.snapshot(), log);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_segment_files_are_a_typed_error() {
    let dir = test_dir("truncated");
    snapshot::persist(&block_size_log(30), &dir, 2).unwrap();

    // Truncate the first segment and re-record its fingerprint, so the
    // failure exercises the decoder's truncation handling rather than the
    // fingerprint check.
    let mut manifest = SnapshotManifest::load(&dir).unwrap();
    let path = dir.join(&manifest.shards[0].file);
    let bytes = std::fs::read(&path).unwrap();
    let truncated = &bytes[..bytes.len() / 2];
    std::fs::write(&path, truncated).unwrap();
    manifest.shards[0].fingerprint = snapshot::fingerprint_bytes(truncated);
    std::fs::write(
        dir.join(snapshot::MANIFEST_FILE),
        serde_json::to_string_pretty(&manifest).unwrap(),
    )
    .unwrap();

    let file = manifest.shards[0].file.clone();
    match snapshot::open(&dir) {
        Err(CoreError::SnapshotCorrupt { path, message }) => {
            assert!(path.contains(&file), "path was {path}");
            assert!(!message.contains("fingerprint mismatch"), "{message}");
        }
        other => panic!("expected SnapshotCorrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fingerprint_mismatches_are_a_typed_error() {
    let dir = test_dir("fingerprint");
    snapshot::persist(&block_size_log(30), &dir, 2).unwrap();
    let manifest = SnapshotManifest::load(&dir).unwrap();
    let path = dir.join(&manifest.shards[1].file);
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0xff;
    std::fs::write(&path, bytes).unwrap();

    match snapshot::open(&dir) {
        Err(CoreError::SnapshotCorrupt { message, .. }) => {
            assert!(message.contains("fingerprint mismatch"), "{message}");
        }
        other => panic!("expected SnapshotCorrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn version_skew_is_a_typed_error() {
    let dir = test_dir("version_skew");
    snapshot::persist(&block_size_log(10), &dir, 1).unwrap();
    let mut manifest = SnapshotManifest::load(&dir).unwrap();
    manifest.version = 99;
    std::fs::write(
        dir.join(snapshot::MANIFEST_FILE),
        serde_json::to_string_pretty(&manifest).unwrap(),
    )
    .unwrap();
    match snapshot::open(&dir) {
        Err(CoreError::SnapshotVersionSkew { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, snapshot::SNAPSHOT_VERSION);
        }
        other => panic!("expected SnapshotVersionSkew, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A v1 snapshot (fixed-width segments, fat records block) is not readable
/// by the v2 decoder: `open` reports the skew as a typed error whose
/// message names the recovery path — a full re-ingest from the source.
#[test]
fn v1_manifests_report_version_skew_naming_reingest() {
    let dir = test_dir("v1_manifest");
    snapshot::persist(&block_size_log(10), &dir, 1).unwrap();
    let mut manifest = SnapshotManifest::load(&dir).unwrap();
    manifest.version = 1;
    std::fs::write(
        dir.join(snapshot::MANIFEST_FILE),
        serde_json::to_string_pretty(&manifest).unwrap(),
    )
    .unwrap();

    let err = snapshot::open(&dir).unwrap_err();
    let message = err.to_string();
    match err {
        CoreError::SnapshotVersionSkew { found, supported } => {
            assert_eq!(found, 1);
            assert_eq!(supported, snapshot::SNAPSHOT_VERSION);
        }
        other => panic!("expected SnapshotVersionSkew, got {other:?}"),
    }
    assert!(message.contains("re-ingest"), "{message}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Bit flips inside the compressed segment bitstreams (fingerprints
/// re-recorded, so the *decoder* sees the damage, not the checksum) and
/// truncations at every interesting boundary either decode to something or
/// fail with a typed `SnapshotCorrupt` — never a panic, and never an
/// attacker-sized allocation (the wall clock would explode long before the
/// sweep finished if counts were trusted before the bytes backing them).
/// On top of the typed failure, every damaged case must also *salvage*: a
/// lenient open quarantines the flipped shard (the file preserved on disk,
/// renamed aside, never deleted) and still serves the undamaged shard.
#[test]
fn corrupt_segment_bitstreams_fail_typed_never_panic() {
    let dir = test_dir("flip_sweep");
    snapshot::persist(&block_size_log(24), &dir, 2).unwrap();
    let mut manifest = SnapshotManifest::load(&dir).unwrap();
    let path = dir.join(&manifest.shards[0].file);
    let pristine = std::fs::read(&path).unwrap();
    let healthy_rows = manifest.shards[1].rows as usize;
    assert!(healthy_rows > 0, "the undamaged shard must hold rows");

    let mut check = |bytes: &[u8], what: &str| {
        std::fs::write(&path, bytes).unwrap();
        manifest.shards[0].fingerprint = snapshot::fingerprint_bytes(bytes);
        std::fs::write(
            dir.join(snapshot::MANIFEST_FILE),
            serde_json::to_string_pretty(&manifest).unwrap(),
        )
        .unwrap();
        match snapshot::open(&dir) {
            Ok(_) => {}
            Err(CoreError::SnapshotCorrupt { .. }) => {
                // The lenient open recovers every undamaged shard and
                // quarantines the flipped one without deleting its bytes.
                let partial = snapshot::open_salvage(&dir)
                    .unwrap_or_else(|e| panic!("{what}: salvage failed: {e}"));
                assert_eq!(partial.damaged_indices(), vec![0], "{what}");
                assert_eq!(partial.healthy_shards(), 1, "{what}");
                assert_eq!(partial.num_rows(), healthy_rows, "{what}");
                let damage = &partial.quarantined()[0];
                let quarantined_as = damage
                    .quarantined_as
                    .as_ref()
                    .unwrap_or_else(|| panic!("{what}: damage not quarantined: {damage:?}"));
                let preserved = std::fs::read(dir.join(quarantined_as))
                    .unwrap_or_else(|e| panic!("{what}: quarantine file unreadable: {e}"));
                assert_eq!(preserved, bytes, "{what}: quarantine altered the bytes");
                assert!(!path.exists(), "{what}: damaged segment left in place");
            }
            other => panic!("{what}: expected Ok or SnapshotCorrupt, got {other:?}"),
        }
    };

    // Flip bytes across the whole file — header, record block, presence
    // bitmaps, packed ids, numeric streams — with three different masks.
    let step = (pristine.len() / 97).max(1);
    for at in (0..pristine.len()).step_by(step) {
        for mask in [0xffu8, 0x01, 0x80] {
            let mut bytes = pristine.clone();
            bytes[at] ^= mask;
            check(&bytes, &format!("flip {mask:#x} at byte {at}"));
        }
    }

    // Truncate at structural boundaries (empty file, mid-magic, mid-header,
    // quarter / half / all-but-one).
    for keep in [
        0,
        1,
        7,
        8,
        11,
        12,
        pristine.len() / 4,
        pristine.len() / 2,
        pristine.len() - 1,
    ] {
        check(&pristine[..keep], &format!("truncate to {keep} bytes"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_segments_are_an_io_error_and_full_reingest_recovers() {
    let dir = test_dir("recovery");
    let log = block_size_log(30);
    snapshot::persist(&log, &dir, 3).unwrap();
    let manifest = SnapshotManifest::load(&dir).unwrap();
    std::fs::remove_file(dir.join(&manifest.shards[1].file)).unwrap();
    assert!(matches!(
        snapshot::open(&dir),
        Err(CoreError::SnapshotIo { .. })
    ));
    // An incremental sync against the broken snapshot fails the same,
    // typed, way when it needs the missing shard...
    let records = log.records().to_vec();
    let chunk_size = records.len().div_ceil(3);
    let mut dirty_first: Vec<ShardInput> = records
        .chunks(chunk_size)
        .map(|chunk| {
            ShardInput::Fresh(RecordShard {
                records: chunk.to_vec(),
                source_fingerprint: None,
            })
        })
        .collect();
    // Claim shard 1 unchanged: the manifest has no source fingerprint, so
    // the claim is rejected before the missing file is even touched.
    dirty_first[1] = ShardInput::Unchanged {
        source_fingerprint: 1,
    };
    assert!(snapshot::sync(&dir, dirty_first).is_err());

    // ...and the recovery path — a full re-ingest into the same directory —
    // restores a healthy snapshot.
    let report = snapshot::persist(&log, &dir, 3).unwrap();
    assert_eq!(report.shards_reused, 0);
    let snap = snapshot::open(&dir).unwrap();
    assert_eq!(snap.to_log(), log);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Shards whose catalogs disagree about a feature's kind (Null-only in one
/// shard, numeric in another), persisted in one order and listed in the
/// manifest in another: the manifest order is authoritative for record
/// order, and the merged catalog resolves kinds identically either way
/// (numeric wins), so the reopened log equals a serial ingest in manifest
/// order.
#[test]
fn manifest_order_wins_over_disk_layout() {
    let dir = test_dir("manifest_order");
    let chunks: Vec<Vec<ExecutionRecord>> = vec![
        vec![
            ExecutionRecord::job("job_a")
                .with_feature("mixed", perfxplain::pxql::Value::Null)
                .with_feature("duration", 100.0),
            ExecutionRecord::job("job_b")
                .with_feature("pigscript", "a.pig")
                .with_feature("duration", 200.0),
        ],
        vec![ExecutionRecord::job("job_c")
            .with_feature("mixed", 7.0)
            .with_feature("duration", 300.0)],
        vec![
            ExecutionRecord::job("job_d")
                .with_feature("only_last", "x")
                .with_feature("duration", 400.0),
            ExecutionRecord::task("task_d", "job_d").with_feature("tasktype", "MAP"),
        ],
    ];
    snapshot::persist_shards(
        &dir,
        chunks
            .iter()
            .map(|records| RecordShard {
                records: records.clone(),
                source_fingerprint: None,
            })
            .collect(),
    )
    .unwrap();

    // Rewrite the manifest with the shards listed in a different order
    // than the files were written (and than read_dir is likely to yield).
    let mut manifest = SnapshotManifest::load(&dir).unwrap();
    manifest.shards.rotate_left(2); // [2, 0, 1]
    std::fs::write(
        dir.join(snapshot::MANIFEST_FILE),
        serde_json::to_string_pretty(&manifest).unwrap(),
    )
    .unwrap();

    // The expectation: a serial ingest of the records in *manifest* order.
    let mut expected = ExecutionLog::new();
    for index in [2usize, 0, 1] {
        for record in &chunks[index] {
            expected.push(record.clone());
        }
    }
    expected.rebuild_catalogs();

    let snap = snapshot::open(&dir).unwrap();
    let reopened = snap.to_log();
    assert_eq!(reopened, expected);
    // Kind resolution is order-independent: `mixed` saw a numeric value in
    // one shard, so it is numeric however the shards are listed.
    assert_eq!(
        reopened.job_catalog().kind("mixed"),
        Some(perfxplain::FeatureKind::Numeric)
    );
    // And the assembled views match a from-scratch encode of the
    // manifest-ordered log, bit for bit.
    for kind in [ExecutionKind::Job, ExecutionKind::Task] {
        assert_eq!(
            snap.view(kind),
            perfxplain_core::columnar::ColumnarLog::build(&expected, kind)
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// CLI: incremental ingest loop
// ---------------------------------------------------------------------------

fn write_bundles(dir: &Path, seeds: &[u64]) {
    for &seed in seeds {
        let trace = Cluster::new(ClusterSpec::with_instances(2), seed).run_job(JobSpec::default());
        JobLogBundle::from_trace(&trace).write_to_dir(dir).unwrap();
    }
}

fn run_cli(args: &[&str]) -> (String, String) {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_perfxplain"))
        .args(args)
        .output()
        .expect("CLI runs");
    let stdout = String::from_utf8_lossy(&output.stdout).to_string();
    let stderr = String::from_utf8_lossy(&output.stderr).to_string();
    assert!(
        output.status.success(),
        "CLI failed: {args:?}\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    (stdout, stderr)
}

/// `ingest --snapshot` pointed at a v1-era snapshot does not fail: it warns
/// on stderr that the existing snapshot is unusable and falls back to a
/// full re-ingest, leaving a healthy v2 snapshot behind.
#[test]
fn cli_ingest_falls_back_on_version_skew() {
    let dir = test_dir("cli_v1_fallback");
    let bundles = dir.join("bundles");
    std::fs::create_dir_all(&bundles).unwrap();
    write_bundles(&bundles, &[11, 12]);
    let snap = dir.join("snap");
    let bundles_arg = bundles.display().to_string();
    let snap_arg = snap.display().to_string();
    let base = [
        "ingest",
        "--bundles",
        bundles_arg.as_str(),
        "--snapshot",
        snap_arg.as_str(),
        "--shards",
        "1",
    ];
    run_cli(&base);

    // Rewrite the manifest as a v1 ancestor would have left it.
    let mut manifest = SnapshotManifest::load(&snap).unwrap();
    manifest.version = 1;
    std::fs::write(
        snap.join(snapshot::MANIFEST_FILE),
        serde_json::to_string_pretty(&manifest).unwrap(),
    )
    .unwrap();

    let (stdout, stderr) = run_cli(&base);
    assert!(
        stderr.contains("re-ingesting everything"),
        "fallback stderr:\n{stderr}"
    );
    assert!(
        stdout.contains("1 shard(s) re-encoded, 0 served from disk"),
        "fallback stdout:\n{stdout}"
    );
    // The rebuilt snapshot is current-version and opens cleanly.
    assert_eq!(
        SnapshotManifest::load(&snap).unwrap().version,
        snapshot::SNAPSHOT_VERSION
    );
    let reopened = snapshot::open(&snap).unwrap();
    let direct = collect_bundles(&JobLogBundle::read_all(&bundles).unwrap()).unwrap();
    assert_eq!(reopened.to_log(), direct);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cli_ingest_reencodes_only_dirty_shards() {
    let dir = test_dir("cli_ingest");
    let bundles = dir.join("bundles");
    std::fs::create_dir_all(&bundles).unwrap();
    write_bundles(&bundles, &[1, 2, 3, 4, 5, 6]);
    let snap = dir.join("snap");
    let bundles_arg = bundles.display().to_string();
    let snap_arg = snap.display().to_string();
    let base = [
        "ingest",
        "--bundles",
        bundles_arg.as_str(),
        "--snapshot",
        snap_arg.as_str(),
        "--shards",
        "3",
    ];

    // First run: no snapshot yet, everything parses and encodes.
    let (stdout, _) = run_cli(&base);
    assert!(
        stdout.contains("3 shard(s) re-encoded, 0 served from disk"),
        "first run output:\n{stdout}"
    );

    // Second run, nothing changed: nothing parses, nothing encodes.
    let (stdout, _) = run_cli(&base);
    assert!(
        stdout.contains("0 shard(s) parsed, 3 clean skipped"),
        "second run output:\n{stdout}"
    );
    assert!(
        stdout.contains("0 shard(s) re-encoded, 3 served from disk"),
        "second run output:\n{stdout}"
    );

    // Touch one bundle: exactly its shard re-parses and re-encodes.
    // Bundles are sorted by job id and chunked 2-per-shard, so one bundle
    // dirties one shard.
    let manifest_before = SnapshotManifest::load(&snap).unwrap();
    let victim = std::fs::read_dir(&bundles)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.is_dir())
        .unwrap();
    let ganglia = victim.join("ganglia.csv");
    let mut text = std::fs::read_to_string(&ganglia).unwrap();
    text.push('\n');
    std::fs::write(&ganglia, text).unwrap();
    let (stdout, _) = run_cli(&base);
    assert!(
        stdout.contains("1 shard(s) parsed, 2 clean skipped"),
        "third run output:\n{stdout}"
    );
    assert!(
        stdout.contains("1 shard(s) re-encoded, 2 served from disk"),
        "third run output:\n{stdout}"
    );
    // Fingerprint bookkeeping across the runs: exactly one *source*
    // fingerprint moved (the touched bundle's shard).  Its content
    // fingerprint may legitimately stay put — the appended blank line
    // parses to identical records — but no *other* shard's content moved.
    let manifest_after = SnapshotManifest::load(&snap).unwrap();
    let source_changed: Vec<usize> = manifest_before
        .shards
        .iter()
        .zip(&manifest_after.shards)
        .enumerate()
        .filter(|(_, (a, b))| a.source_fingerprint != b.source_fingerprint)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(source_changed.len(), 1, "{source_changed:?}");
    for (i, (a, b)) in manifest_before
        .shards
        .iter()
        .zip(&manifest_after.shards)
        .enumerate()
    {
        if i != source_changed[0] {
            assert_eq!(
                a.fingerprint, b.fingerprint,
                "clean shard {i} was rewritten"
            );
        }
    }

    // Corrupt a segment: the CLI salvages — it quarantines the damaged
    // shard and re-encodes only that one, instead of re-ingesting the
    // world (the full re-ingest remains the last resort for stores salvage
    // cannot read at all, e.g. version skew — see
    // `cli_ingest_falls_back_on_version_skew`).
    let path = snap.join(&manifest_after.shards[0].file);
    let mut bytes = std::fs::read(&path).unwrap();
    let len = bytes.len();
    bytes.truncate(len / 3);
    std::fs::write(&path, bytes).unwrap();
    let (stdout, stderr) = run_cli(&base);
    assert!(
        stderr.contains("quarantined 1 damaged shard(s), re-encoding only those"),
        "recovery stderr:\n{stderr}"
    );
    assert!(
        stdout.contains("1 shard(s) parsed, 2 clean skipped"),
        "recovery stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("1 shard(s) re-encoded, 2 served from disk"),
        "recovery stdout:\n{stdout}"
    );
    // The quarantined segment survives the repair on disk.
    let quarantine = snap.join(format!("quarantine-{}", manifest_after.shards[0].file));
    assert!(quarantine.exists(), "quarantine file was deleted");
    // The recovered snapshot opens cleanly and answers like the JSON path.
    let snap_open = snapshot::open(&snap).unwrap();
    let direct = collect_bundles(&JobLogBundle::read_all(&bundles).unwrap()).unwrap();
    assert_eq!(snap_open.to_log(), direct);

    // `snapshot verify` agrees: every shard healthy, exit code zero.
    let snap_arg2 = snap.display().to_string();
    let (stdout, _) = run_cli(&["snapshot", "verify", "--snapshot", snap_arg2.as_str()]);
    assert!(
        stdout.contains("all 3 shard(s) healthy"),
        "verify stdout:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `snapshot verify` reports damage per shard and exits non-zero, without
/// touching the store (no quarantining — verification is read-only).
#[test]
fn cli_snapshot_verify_reports_damage_and_exits_nonzero() {
    let dir = test_dir("cli_verify");
    snapshot::persist(&block_size_log(30), &dir, 3).unwrap();
    let dir_arg = dir.display().to_string();
    let verify = ["snapshot", "verify", "--snapshot", dir_arg.as_str()];

    let (stdout, _) = run_cli(&verify);
    assert!(stdout.contains("all 3 shard(s) healthy"), "{stdout}");

    // Flip a byte in one segment: verify names the shard, exits non-zero,
    // and leaves the damaged file exactly where it was.
    let manifest = SnapshotManifest::load(&dir).unwrap();
    let victim = dir.join(&manifest.shards[1].file);
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_perfxplain"))
        .args(verify)
        .output()
        .expect("CLI runs");
    assert!(!output.status.success(), "damage must exit non-zero");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stdout.contains("DAMAGED"), "verify stdout:\n{stdout}");
    assert!(
        stderr.contains("1 of 3 shard(s) damaged"),
        "verify stderr:\n{stderr}"
    );
    assert!(victim.exists(), "verify must not quarantine");
    assert_eq!(std::fs::read(&victim).unwrap(), bytes);
    std::fs::remove_dir_all(&dir).unwrap();
}
