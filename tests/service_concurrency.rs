//! Concurrency tests of the [`XplainService`]: many threads, one cached
//! columnar view per execution kind, bit-identical answers.
//!
//! Run in CI both with default features and with `--features parallel`
//! (which additionally fans the inner pair enumeration of every query out
//! over threads).

use perfxplain::prelude::*;
use perfxplain::QueryInput;

/// The paper's two canonical queries over a simulated Tiny sweep, repeated
/// so the batch exercises both the job view and the task view.
fn canonical_requests(log: &ExecutionLog, repeats: usize) -> Vec<QueryRequest> {
    let job_query = why_slower_despite_same_num_instances(log)
        .expect("the sweep contains the slower-despite-same-instances pattern");
    let task_query =
        why_last_task_faster(log).expect("the sweep contains the last-task-faster pattern");
    let mut requests = Vec::new();
    for _ in 0..repeats {
        requests.push(QueryRequest::bound(job_query.bound.clone()).with_narration());
        requests.push(QueryRequest::bound(task_query.bound.clone()).with_narration());
    }
    requests
}

#[test]
fn par_explain_batch_is_bit_identical_to_the_serial_path() {
    let log = build_execution_log(LogPreset::Tiny, 42);
    let service = XplainService::new(log.clone());
    // 8 requests alternating between the two canonical queries: with ≥4
    // cores this drives ≥4 worker threads over the two shared views.
    let requests = canonical_requests(&log, 4);

    let serial: Vec<QueryOutcome> = requests
        .iter()
        .map(|request| service.explain(request).expect("serial query succeeds"))
        .collect();
    let parallel = service.par_explain_batch(&requests);

    assert_eq!(parallel.len(), serial.len());
    for (serial, parallel) in serial.iter().zip(&parallel) {
        let parallel = parallel.as_ref().expect("parallel query succeeds");
        assert_eq!(serial.explanation, parallel.explanation);
        assert_eq!(serial.query, parallel.query);
        assert_eq!(serial.narration, parallel.narration);
        assert_eq!(serial.generation, parallel.generation);
    }
    // One cached view per kind serves the whole batch.
    assert_eq!(service.cached_view_count(), 2);

    // The serial service answers also match the stateless engine, so the
    // whole stack (engine == serial service == parallel service) agrees.
    let engine = PerfXplain::with_defaults();
    for (request, outcome) in requests.iter().zip(&serial) {
        let QueryInput::Bound(bound) = &request.query else {
            panic!("requests are bound");
        };
        assert_eq!(engine.explain(&log, bound).unwrap(), outcome.explanation);
    }
}

/// Above `SHARDED_BUILD_THRESHOLD` records the service encodes its cached
/// views through the sharded parallel path.  The encode must stay
/// bit-identical to the single-shot build, and a parallel batch answered
/// from the sharded view must match the serial answers.
#[test]
fn sharded_encode_under_par_explain_batch_is_bit_identical() {
    use perfxplain::ExecutionKind;
    use perfxplain_core::columnar::ColumnarLog;
    use perfxplain_core::SHARDED_BUILD_THRESHOLD;

    // A blocked log just past the auto-shard threshold: small per-script
    // groups keep the candidate space tractable while the row count forces
    // the sharded encode.
    let n = SHARDED_BUILD_THRESHOLD + 128;
    let group_size = 8;
    let log = perfxplain_bench::blocked_log(n, group_size, 0);

    // The explicitly sharded encode is bit-identical to the single-shot
    // encode (and to whatever build_auto picked for this machine).
    let single = ColumnarLog::build_sharded(&log, ExecutionKind::Job, 1);
    for shards in [2, 4, 8] {
        assert_eq!(
            ColumnarLog::build_sharded(&log, ExecutionKind::Job, shards),
            single,
            "{shards} shards diverge"
        );
    }
    assert_eq!(ColumnarLog::build_auto(&log, ExecutionKind::Job), single);

    // Batch answers off the (auto-sharded) cached view match the serial
    // path answer for answer.
    let service = XplainService::new(log);
    let requests: Vec<QueryRequest> = (0..6)
        .map(|q| {
            let base = q * group_size;
            QueryRequest::text(perfxplain_bench::BLOCKED_QUERY)
                .with_pair(format!("job_{}", base + 2), format!("job_{base}"))
        })
        .collect();
    let serial: Vec<QueryOutcome> = requests
        .iter()
        .map(|request| service.explain(request).expect("serial query succeeds"))
        .collect();
    let parallel = service.par_explain_batch(&requests);
    for (serial, parallel) in serial.iter().zip(&parallel) {
        let parallel = parallel.as_ref().expect("parallel query succeeds");
        assert_eq!(serial.explanation, parallel.explanation);
        assert_eq!(serial.query, parallel.query);
    }
    assert_eq!(service.cached_view_count(), 1);
}

#[test]
fn external_threads_share_one_service_and_agree() {
    let log = build_execution_log(LogPreset::Tiny, 7);
    let service = XplainService::new(log);
    let requests = canonical_requests(&service.snapshot(), 1);
    let expected: Vec<Explanation> = requests
        .iter()
        .map(|r| service.explain(r).expect("query succeeds").explanation)
        .collect();

    // ≥4 OS threads hammer the same service; every answer must be
    // bit-identical to the serial one.
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let (service, requests, expected) = (&service, &requests, &expected);
            scope.spawn(move || {
                for _ in 0..3 {
                    let outcomes = service.par_explain_batch(requests);
                    for (outcome, expected) in outcomes.iter().zip(expected) {
                        let outcome = outcome.as_ref().expect("batch query succeeds");
                        assert_eq!(
                            &outcome.explanation, expected,
                            "worker {worker} diverged from the serial answer"
                        );
                        assert!(outcome.view_reused, "warm queries must hit the view cache");
                    }
                }
            });
        }
    });
    assert_eq!(service.cached_view_count(), 2);
}
