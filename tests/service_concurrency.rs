//! Concurrency tests of the [`XplainService`]: many threads, one cached
//! columnar view per execution kind, bit-identical answers.
//!
//! Run in CI both with default features and with `--features parallel`
//! (which additionally fans the inner pair enumeration of every query out
//! over threads).

use perfxplain::prelude::*;
use perfxplain::QueryInput;

/// The paper's two canonical queries over a simulated Tiny sweep, repeated
/// so the batch exercises both the job view and the task view.
fn canonical_requests(log: &ExecutionLog, repeats: usize) -> Vec<QueryRequest> {
    let job_query = why_slower_despite_same_num_instances(log)
        .expect("the sweep contains the slower-despite-same-instances pattern");
    let task_query =
        why_last_task_faster(log).expect("the sweep contains the last-task-faster pattern");
    let mut requests = Vec::new();
    for _ in 0..repeats {
        requests.push(QueryRequest::bound(job_query.bound.clone()).with_narration());
        requests.push(QueryRequest::bound(task_query.bound.clone()).with_narration());
    }
    requests
}

#[test]
fn par_explain_batch_is_bit_identical_to_the_serial_path() {
    let log = build_execution_log(LogPreset::Tiny, 42);
    let service = XplainService::new(log.clone());
    // 8 requests alternating between the two canonical queries: with ≥4
    // cores this drives ≥4 worker threads over the two shared views.
    let requests = canonical_requests(&log, 4);

    let serial: Vec<QueryOutcome> = requests
        .iter()
        .map(|request| service.explain(request).expect("serial query succeeds"))
        .collect();
    let parallel = service.par_explain_batch(&requests);

    assert_eq!(parallel.len(), serial.len());
    for (serial, parallel) in serial.iter().zip(&parallel) {
        let parallel = parallel.as_ref().expect("parallel query succeeds");
        assert_eq!(serial.explanation, parallel.explanation);
        assert_eq!(serial.query, parallel.query);
        assert_eq!(serial.narration, parallel.narration);
        assert_eq!(serial.generation, parallel.generation);
    }
    // One cached view per kind serves the whole batch.
    assert_eq!(service.cached_view_count(), 2);

    // The serial service answers also match the stateless engine, so the
    // whole stack (engine == serial service == parallel service) agrees.
    let engine = PerfXplain::with_defaults();
    for (request, outcome) in requests.iter().zip(&serial) {
        let QueryInput::Bound(bound) = &request.query else {
            panic!("requests are bound");
        };
        assert_eq!(engine.explain(&log, bound).unwrap(), outcome.explanation);
    }
}

#[test]
fn external_threads_share_one_service_and_agree() {
    let log = build_execution_log(LogPreset::Tiny, 7);
    let service = XplainService::new(log);
    let requests = canonical_requests(&service.snapshot(), 1);
    let expected: Vec<Explanation> = requests
        .iter()
        .map(|r| service.explain(r).expect("query succeeds").explanation)
        .collect();

    // ≥4 OS threads hammer the same service; every answer must be
    // bit-identical to the serial one.
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let (service, requests, expected) = (&service, &requests, &expected);
            scope.spawn(move || {
                for _ in 0..3 {
                    let outcomes = service.par_explain_batch(requests);
                    for (outcome, expected) in outcomes.iter().zip(expected) {
                        let outcome = outcome.as_ref().expect("batch query succeeds");
                        assert_eq!(
                            &outcome.explanation, expected,
                            "worker {worker} diverged from the serial answer"
                        );
                        assert!(outcome.view_reused, "warm queries must hit the view cache");
                    }
                }
            });
        }
    });
    assert_eq!(service.cached_view_count(), 2);
}
