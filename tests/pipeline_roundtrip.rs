//! Integration tests of the substrate pipeline: simulator traces → textual
//! Hadoop/Ganglia artefacts → (filesystem) → parser → collector — serial,
//! sharded, and through the CLI `ingest` command.

use perfxplain::hadoop_logs::{
    collect_bundles, collect_bundles_sharded, collect_traces, parse_job_history, JobLogBundle,
};
use perfxplain::mrsim::{Cluster, ClusterSpec, JobSpec, JobTrace, PigScript, GB, MB};
use perfxplain::pxql::Value;
use std::fs;

fn sample_traces() -> Vec<JobTrace> {
    let mut traces = Vec::new();
    for (i, (instances, script, copies)) in [
        (2usize, PigScript::SimpleFilter, 30u64),
        (8, PigScript::SimpleGroupBy, 30),
        (16, PigScript::SimpleFilter, 60),
    ]
    .into_iter()
    .enumerate()
    {
        let mut cluster = Cluster::new(ClusterSpec::with_instances(instances), 7_000 + i as u64);
        traces.push(cluster.run_job(JobSpec {
            name: format!("pipeline-{i}"),
            script,
            input_bytes: (1.3 * GB as f64 * copies as f64 / 30.0) as u64,
            input_records: 13_000_000 * copies / 30,
            dfs_block_size: 256 * MB,
            reduce_tasks_factor: 1.5,
            io_sort_factor: 50,
            submit_time: 0.0,
        }));
    }
    traces
}

#[test]
fn text_artifacts_parse_back_to_the_same_structure() {
    for trace in sample_traces() {
        let bundle = JobLogBundle::from_trace(&trace);
        let parsed = parse_job_history(&bundle.history).expect("history parses");
        assert_eq!(parsed.job_id, trace.job_id);
        assert_eq!(parsed.attempts.len(), trace.tasks.len());
        assert_eq!(parsed.counters, trace.counters);
        assert!((parsed.duration() - trace.duration()).abs() < 0.005);
    }
}

#[test]
fn filesystem_round_trip_produces_identical_execution_logs() {
    let traces = sample_traces();
    let bundles: Vec<JobLogBundle> = traces.iter().map(JobLogBundle::from_trace).collect();

    // Write all bundles to a temporary directory, read them back, collect.
    let root = std::env::temp_dir().join(format!("perfxplain-pipeline-it-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    for bundle in &bundles {
        bundle.write_to_dir(&root).unwrap();
    }
    let reread = JobLogBundle::read_all(&root).unwrap();
    let _ = fs::remove_dir_all(&root);

    let direct = collect_traces(&traces).unwrap();
    let via_disk = collect_bundles(&reread).unwrap();
    assert_eq!(direct.jobs().count(), via_disk.jobs().count());
    assert_eq!(direct.tasks().count(), via_disk.tasks().count());
    for job in direct.jobs() {
        let other = via_disk
            .get(&job.id)
            .expect("job present after disk round trip");
        assert_eq!(
            job.features, other.features,
            "features differ for {}",
            job.id
        );
    }
}

/// The CLI `ingest` command (and the sharded collector underneath it)
/// produces, from on-disk bundles, exactly the log a serial collection
/// builds in memory.
#[test]
fn cli_ingest_matches_the_serial_collection() {
    let traces = sample_traces();
    let bundles: Vec<JobLogBundle> = traces.iter().map(JobLogBundle::from_trace).collect();
    let serial = collect_bundles(&bundles).unwrap();
    assert_eq!(collect_bundles_sharded(&bundles, 3).unwrap(), serial);

    let root = std::env::temp_dir().join(format!("perfxplain-ingest-it-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    for bundle in &bundles {
        bundle.write_to_dir(&root).unwrap();
    }
    let out = root.join("ingested.json");

    let status = std::process::Command::new(env!("CARGO_BIN_EXE_perfxplain"))
        .args([
            "ingest",
            "--bundles",
            root.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--shards",
            "3",
        ])
        .status()
        .expect("the perfxplain binary runs");
    assert!(status.success(), "ingest exited with {status}");

    let ingested = perfxplain::ExecutionLog::from_json(&fs::read_to_string(&out).unwrap()).unwrap();
    let _ = fs::remove_dir_all(&root);
    // JSON round-tripping is lossless for logs, so the CLI output must load
    // back equal to the serial in-memory collection.
    assert_eq!(ingested, serial);
}

#[test]
fn collected_features_reflect_simulated_configuration_and_load() {
    let traces = sample_traces();
    let log = collect_traces(&traces).unwrap();

    for trace in &traces {
        let job = log.get(&trace.job_id).unwrap();
        assert_eq!(
            job.feature("numinstances"),
            Value::Num(trace.cluster.num_instances as f64)
        );
        assert_eq!(
            job.feature("pigscript"),
            Value::Str(trace.spec.script.file_name().to_string())
        );
        assert_eq!(
            job.feature("nummaptasks"),
            Value::Num(trace.map_tasks().count() as f64)
        );
        // Map task counters percolate into job counters.
        let expected_input: u64 = trace
            .map_tasks()
            .map(|t| t.counter("MAP_INPUT_BYTES"))
            .sum();
        assert_eq!(
            job.feature("map_input_bytes"),
            Value::Num(expected_input as f64)
        );
    }

    // Task records carry monitoring averages consistent with contention:
    // tasks that ran alongside another task saw more running processes than
    // tasks that ran alone.
    let mut alone = Vec::new();
    let mut contended = Vec::new();
    for trace in &traces {
        for task in &trace.tasks {
            let record = log.get(&task.task_id).unwrap();
            if let Some(load) = record.feature("avg_proc_run").as_num() {
                if task.concurrency == 1 {
                    alone.push(load);
                } else {
                    contended.push(load);
                }
            }
        }
    }
    if !alone.is_empty() && !contended.is_empty() {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&contended) > mean(&alone),
            "contended tasks should show higher process counts ({} vs {})",
            mean(&contended),
            mean(&alone)
        );
    }
}

#[test]
fn corrupted_history_files_are_rejected_not_misparsed() {
    let trace = &sample_traces()[0];
    let mut bundle = JobLogBundle::from_trace(trace);
    bundle.history = bundle.history.replace("FINISH_TIME=\"", "FINISH_TIME=");
    assert!(collect_bundles(&[bundle]).is_err());
}
