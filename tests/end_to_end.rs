//! End-to-end integration tests: simulator → Hadoop logs → collector →
//! PerfXplain, exercised through the public facade crate.

use perfxplain::prelude::*;
use perfxplain::{
    assess, evaluate_on_log, generate_explanation, prepare_training_set, split_log, ExecutionLog,
};

/// One shared log for the whole file: building it exercises the full
/// substrate (simulation, history/conf/Ganglia rendering, parsing,
/// collection).
fn tiny_log() -> ExecutionLog {
    build_execution_log(LogPreset::Tiny, 20260615)
}

#[test]
fn job_query_end_to_end() {
    let log = tiny_log();
    let binding = why_slower_despite_same_num_instances(&log).expect("pair of interest");
    let config = ExplainConfig::default();
    let engine = PerfXplain::new(config.clone());
    let explanation = engine.explain(&log, &binding.bound).expect("explanation");

    // The explanation is applicable to the pair of interest (Definition 3)…
    let poi = binding
        .bound
        .verify_preconditions(&log, config.sim_threshold)
        .unwrap();
    assert!(explanation.is_applicable(&poi));
    // …has the requested width…
    assert!(explanation.width() >= 1 && explanation.width() <= config.width);
    // …never mentions the duration it is supposed to explain…
    assert!(explanation
        .because
        .features()
        .iter()
        .all(|f| !f.starts_with("duration")));
    // …and beats the base rate P(obs | des) on the related pairs.
    let related = prepare_training_set(&log, &binding.bound, &config).unwrap();
    let quality = assess(&related, &explanation);
    let base_rate = related.num_observed() as f64 / related.len() as f64;
    assert!(
        quality.precision.unwrap_or(0.0) >= base_rate,
        "precision {:?} below base rate {base_rate}",
        quality.precision
    );
}

#[test]
fn task_query_end_to_end() {
    let log = tiny_log();
    let binding = why_last_task_faster(&log).expect("pair of interest");
    let config = ExplainConfig::default().with_width(3);
    let engine = PerfXplain::new(config.clone());
    let explanation = engine.explain(&log, &binding.bound).expect("explanation");

    let poi = binding
        .bound
        .verify_preconditions(&log, config.sim_threshold)
        .unwrap();
    assert!(explanation.is_applicable(&poi));
    assert!(explanation.width() >= 1);

    // The winning explanation should talk about the machine's load /
    // concurrency (Ganglia metrics) or placement — not about identifiers.
    let features = explanation.because.features();
    assert!(
        features.iter().any(|f| f.starts_with("avg_")
            || f.contains("load")
            || f.contains("cpu")
            || f.contains("proc")),
        "unexpected task explanation: {}",
        explanation.because
    );
}

#[test]
fn all_techniques_work_on_train_test_splits() {
    let log = tiny_log();
    let binding = why_slower_despite_same_num_instances(&log).expect("pair of interest");
    let config = ExplainConfig::default().with_width(2);

    // The tiny log has so few jobs that an unlucky split can leave the
    // training half without both classes; that is expected behaviour (the
    // engine reports it instead of fabricating an explanation), so probe a
    // few split seeds and require at least one to succeed for every
    // technique.
    let mut succeeded = false;
    for seed in 0..8u64 {
        let (train, test) = split_log(&log, &binding.bound, 0.6, seed);
        let explanations: Vec<_> = Technique::all()
            .into_iter()
            .map(|t| generate_explanation(t, &train, &binding.bound, &config))
            .collect();
        if explanations.iter().any(|e| e.is_err()) {
            continue;
        }
        for (technique, explanation) in Technique::all().into_iter().zip(explanations) {
            let explanation = explanation.unwrap();
            let result = evaluate_on_log(&explanation, &test, &binding.bound, &config);
            assert!(
                result.related_pairs > 0,
                "{technique}: no related pairs in the test log"
            );
            let precision = result.quality.precision.unwrap_or(0.0);
            assert!(
                (0.0..=1.0).contains(&precision),
                "{technique}: precision out of range"
            );
        }
        succeeded = true;
        break;
    }
    assert!(succeeded, "no split seed allowed all techniques to train");
}

#[test]
fn generated_despite_clause_improves_relevance_of_underspecified_query() {
    let log = tiny_log();
    let binding = why_slower_despite_same_num_instances(&log).expect("pair of interest");

    // Strip the despite clause.
    let underspecified = perfxplain::BoundQuery::new(
        parse_query("OBSERVED duration_compare = GT\nEXPECTED duration_compare = SIM").unwrap(),
        &binding.bound.left_id,
        &binding.bound.right_id,
    );

    let config = ExplainConfig::default();
    let engine = PerfXplain::new(config.clone());
    let related = prepare_training_set(&log, &underspecified, &config).unwrap();
    let before = perfxplain::relevance(&related, &Predicate::always_true()).unwrap_or(0.0);

    let despite = engine
        .generate_despite(&log, &underspecified)
        .expect("despite generation");
    let after = perfxplain::relevance(&related, &despite).unwrap_or(0.0);
    assert!(
        after >= before,
        "generated despite clause lowered relevance: {before} -> {after}"
    );
    assert!(!despite.is_trivial());
}

#[test]
fn execution_log_round_trips_through_json() {
    let log = tiny_log();
    let json = log.to_json().unwrap();
    let reloaded = ExecutionLog::from_json(&json).unwrap();
    assert_eq!(log.jobs().count(), reloaded.jobs().count());
    assert_eq!(log.tasks().count(), reloaded.tasks().count());
    assert_eq!(log.job_catalog().len(), reloaded.job_catalog().len());

    // Reloaded logs answer queries identically.
    let binding = why_slower_despite_same_num_instances(&log).unwrap();
    let config = ExplainConfig::default();
    let a = PerfXplain::new(config.clone())
        .explain(&log, &binding.bound)
        .unwrap();
    let b = PerfXplain::new(config)
        .explain(&reloaded, &binding.bound)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn explanations_are_deterministic_for_a_fixed_seed() {
    let log = tiny_log();
    let binding = why_last_task_faster(&log).expect("pair of interest");
    let config = ExplainConfig::default().with_seed(77);
    let a = PerfXplain::new(config.clone())
        .explain(&log, &binding.bound)
        .unwrap();
    let b = PerfXplain::new(config)
        .explain(&log, &binding.bound)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn feature_levels_restrict_explanation_vocabulary_end_to_end() {
    let log = tiny_log();
    let binding = why_slower_despite_same_num_instances(&log).expect("pair of interest");
    let config = ExplainConfig::default().with_feature_level(FeatureLevel::Level1);
    let explanation = PerfXplain::new(config)
        .explain(&log, &binding.bound)
        .unwrap();
    for atom in explanation.because.atoms() {
        assert!(
            atom.feature.ends_with("_isSame"),
            "level-1 explanation used {}",
            atom.feature
        );
    }
}
