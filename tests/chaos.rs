//! Chaos suite: drives the deterministic fault-injection registry
//! ([`perfxplain::failpoints`]) through the snapshot store, the worker pool
//! and the server's socket paths, and asserts the robustness invariants the
//! recovery story promises:
//!
//! * transient IO faults are absorbed in place and counted
//!   ([`SyncReport::io_retries`]), permanent ones surface typed errors
//!   without a retry storm;
//! * whatever faults strike, the store is always openable or salvageable —
//!   and salvage plus a *targeted* sync (re-encoding only the quarantined
//!   shards) converges to views bit-identical to a clean full ingest;
//! * a panicking pool job is requeued, never lost, so `map_chunks` latches
//!   always settle;
//! * a server connection rides through transient socket faults and hard
//!   accept faults only skip one tick.
//!
//! Compiled only under `--features failpoints`.  The registry is
//! process-global, so every test serializes on [`serial`] and disarms the
//! registry on entry; each test also asserts it finished under the CI
//! chaos-smoke ceiling of 30 s.

#![cfg(feature = "failpoints")]

use perfxplain::failpoints::{self, Action};
use perfxplain::server::{spawn, Client, SchedulerConfig, ServerConfig, WireRequest};
use perfxplain::snapshot::{self, RecordShard, ShardInput, SnapshotViews};
use perfxplain::{
    CoreError, ExecutionKind, ExecutionLog, ExecutionRecord, FsyncPolicy, XplainService,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// The failpoint registry is process-global: chaos tests must not
/// interleave, and a panicking test must not wedge the rest.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Every chaos test must finish comfortably inside the CI chaos-smoke
/// wall-clock ceiling.
const CEILING: Duration = Duration::from_secs(30);

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pxchaos_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Three explicit record shards (jobs + tasks, stable source fingerprints)
/// so targeted syncs can pass damaged shards as [`ShardInput::Fresh`] and
/// the rest as [`ShardInput::Unchanged`].
fn chaos_shards() -> Vec<RecordShard> {
    (0..3)
        .map(|shard| {
            let mut records = Vec::new();
            for i in 0..12usize {
                let id = shard * 12 + i;
                let big_blocks = id % 2 == 0;
                let input: f64 = if id % 4 < 2 { 32.0e9 } else { 1.0e9 };
                let duration = if big_blocks { 600.0 } else { input / 5.0e7 };
                records.push(
                    ExecutionRecord::job(format!("job_{id}"))
                        .with_feature("inputsize", input)
                        .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                        .with_feature("duration", duration),
                );
                if id % 3 == 0 {
                    records.push(
                        ExecutionRecord::task(format!("task_{id}"), format!("job_{id}"))
                            .with_feature("tasktype", if id % 2 == 0 { "MAP" } else { "REDUCE" })
                            .with_feature("duration", duration / 10.0),
                    );
                }
            }
            RecordShard {
                records,
                source_fingerprint: Some(0xC0FF_EE00 + shard as u64),
            }
        })
        .collect()
}

fn small_log(n: usize) -> ExecutionLog {
    let mut log = ExecutionLog::new();
    for i in 0..n {
        let big_blocks = i % 2 == 0;
        let input = [1.0e9, 4.0e9, 32.0e9][i % 3];
        let duration = if big_blocks {
            600.0 + (i % 13) as f64
        } else {
            input / 5.0e7 + (i % 7) as f64
        };
        log.push(
            ExecutionRecord::job(format!("job_{i}"))
                .with_feature("inputsize", input)
                .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                .with_feature("pigscript", ["a.pig", "b.pig"][i % 2])
                .with_feature("duration", duration),
        );
    }
    log.rebuild_catalogs();
    log
}

// ---------------------------------------------------------------------------
// Transient vs permanent IO faults
// ---------------------------------------------------------------------------

#[test]
fn transient_io_faults_are_absorbed_and_counted() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let dir = test_dir("transient");
    let shards = chaos_shards();
    let rows: usize = shards.iter().map(|s| s.records.len()).sum();

    // Once-then-succeed transients on every write-side site: the persist
    // rides through and the report counts what was absorbed.
    failpoints::script(
        "snapshot.segment.write",
        &[
            Action::IoError(ErrorKind::Interrupted),
            Action::IoError(ErrorKind::TimedOut),
        ],
    );
    failpoints::script(
        "snapshot.manifest.write",
        &[Action::IoError(ErrorKind::WouldBlock)],
    );
    failpoints::script(
        "snapshot.manifest.rename",
        &[Action::IoError(ErrorKind::Interrupted)],
    );
    let report = snapshot::persist_shards(&dir, shards).expect("transient write faults absorbed");
    assert_eq!(report.rows, rows);
    assert!(
        report.io_retries >= 4,
        "4 injected transients, counted {} retries",
        report.io_retries
    );
    failpoints::disarm_all();

    // Same on the read side: a strict open retries through the hiccups.
    failpoints::script(
        "snapshot.manifest.read",
        &[Action::IoError(ErrorKind::Interrupted)],
    );
    failpoints::script(
        "snapshot.segment.read",
        &[Action::IoError(ErrorKind::TimedOut)],
    );
    let snap = snapshot::open(&dir).expect("transient read faults absorbed");
    assert_eq!(snap.num_rows(), rows);

    failpoints::disarm_all();
    assert!(start.elapsed() < CEILING);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn permanent_io_faults_surface_typed_errors_without_a_retry_storm() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let dir = test_dir("permanent");
    snapshot::persist_shards(&dir, chaos_shards()).unwrap();

    // NotFound is never worth retrying: one trigger per shard, typed error.
    failpoints::always(
        "snapshot.segment.read",
        Action::IoError(ErrorKind::NotFound),
    );
    match snapshot::open(&dir) {
        Err(CoreError::SnapshotIo { .. }) => {}
        other => panic!("expected SnapshotIo, got {other:?}"),
    }
    let hits = failpoints::hits("snapshot.segment.read");
    assert!(
        (1..=3).contains(&hits),
        "non-transient kinds must not retry: at most one trigger per shard, saw {hits}"
    );

    // A transient kind that never clears exhausts the bounded retry budget
    // and still surfaces the typed error — no infinite loop.
    failpoints::disarm_all();
    failpoints::always(
        "snapshot.manifest.read",
        Action::IoError(ErrorKind::Interrupted),
    );
    match snapshot::open(&dir) {
        Err(CoreError::SnapshotIo { .. }) => {}
        other => panic!("expected SnapshotIo, got {other:?}"),
    }

    failpoints::disarm_all();
    assert!(start.elapsed() < CEILING);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_decode_corruption_is_quarantined_and_restorable() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let dir = test_dir("decode_corrupt");
    let shards = chaos_shards();
    let rows: usize = shards.iter().map(|s| s.records.len()).sum();
    snapshot::persist_shards(&dir, shards).unwrap();

    // One injected decode failure: the strict open reports corruption...
    failpoints::script("snapshot.segment.decode", &[Action::Corrupt]);
    match snapshot::open(&dir) {
        Err(CoreError::SnapshotCorrupt { .. }) => {}
        other => panic!("expected SnapshotCorrupt, got {other:?}"),
    }

    // ...and a salvage open quarantines exactly the shard it struck while
    // the other two keep serving.
    failpoints::script("snapshot.segment.decode", &[Action::Corrupt]);
    let partial = snapshot::open_salvage(&dir).expect("salvageable");
    assert_eq!(partial.quarantined().len(), 1);
    assert_eq!(partial.healthy_shards(), 2);
    let damage = &partial.quarantined()[0];
    let quarantined_as = damage.quarantined_as.clone().expect("renamed aside");

    // The fault was injected — the bytes on disk were always fine.  The
    // quarantine preserved them, so putting the file back fully restores
    // the store once the fault clears.
    failpoints::disarm_all();
    std::fs::rename(dir.join(&quarantined_as), dir.join(&damage.file)).unwrap();
    let snap = snapshot::open(&dir).expect("restored store opens strictly");
    assert_eq!(snap.num_rows(), rows);

    assert!(start.elapsed() < CEILING);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Salvage + targeted sync convergence
// ---------------------------------------------------------------------------

#[test]
fn salvage_plus_targeted_sync_converges_to_a_clean_ingest() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let clean_dir = test_dir("converge_clean");
    let hurt_dir = test_dir("converge_hurt");
    let shards = chaos_shards();
    snapshot::persist_shards(&clean_dir, shards.clone()).unwrap();
    snapshot::persist_shards(&hurt_dir, shards.clone()).unwrap();

    // Real on-disk damage: flip a byte in the middle shard's segment.
    let manifest = snapshot::SnapshotManifest::load(&hurt_dir).unwrap();
    let victim = hurt_dir.join(&manifest.shards[1].file);
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();

    assert!(
        snapshot::open(&hurt_dir).is_err(),
        "strict open must refuse"
    );
    let partial = snapshot::open_salvage(&hurt_dir).expect("salvageable");
    assert_eq!(partial.damaged_indices(), vec![1]);
    assert_eq!(partial.healthy_shards(), 2);
    let quarantine = hurt_dir.join(
        partial.quarantined()[0]
            .quarantined_as
            .as_deref()
            .expect("renamed aside"),
    );
    assert_eq!(
        std::fs::read(&quarantine).unwrap(),
        bytes,
        "quarantine preserves the damaged bytes for post-mortems"
    );

    // Targeted sync: only the quarantined shard is re-encoded from source.
    let damaged: BTreeSet<usize> = partial.damaged_indices().into_iter().collect();
    let inputs: Vec<ShardInput> = shards
        .iter()
        .enumerate()
        .map(|(index, shard)| {
            if damaged.contains(&index) {
                ShardInput::Fresh(shard.clone())
            } else {
                ShardInput::Unchanged {
                    source_fingerprint: shard.source_fingerprint.unwrap(),
                }
            }
        })
        .collect();
    let report = snapshot::sync(&hurt_dir, inputs).expect("targeted sync succeeds");
    assert_eq!(report.shards_encoded, 1, "exactly the damage re-encodes");
    assert_eq!(report.shards_reused, 2);
    assert!(!report.catalog_changed);
    assert!(
        quarantine.exists(),
        "sync must never delete quarantine files"
    );

    // The healed store is bit-identical to the never-damaged one.
    let clean: SnapshotViews = snapshot::open(&clean_dir).unwrap().into_views();
    let healed: SnapshotViews = snapshot::open(&hurt_dir).unwrap().into_views();
    assert_eq!(healed.log, clean.log);
    assert_eq!(healed.job, clean.job);
    assert_eq!(healed.task, clean.task);

    assert!(start.elapsed() < CEILING);
    std::fs::remove_dir_all(&clean_dir).unwrap();
    std::fs::remove_dir_all(&hurt_dir).unwrap();
}

/// Faults a real disk could produce: transient hiccups, hard failures and
/// corruption.  No `Panic` here — the snapshot sites run on scoped encode/
/// decode threads where an injected panic is a test abort, not an error
/// path (the pool's panic recovery has its own test below).
const STORM: &[Action] = &[
    Action::IoError(ErrorKind::Interrupted),
    Action::IoError(ErrorKind::TimedOut),
    Action::IoError(ErrorKind::WouldBlock),
    Action::IoError(ErrorKind::PermissionDenied),
    Action::Corrupt,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The invariant at the heart of the suite: under a seeded random
    /// fault schedule striking every IO site, whatever happens to a
    /// persist → open interleaving, the store is always openable,
    /// salvageable, or (when not even a manifest survived) re-ingestable —
    /// and every recovery converges to views bit-identical to a clean
    /// full ingest.
    #[test]
    fn random_fault_schedules_never_leave_the_store_unrecoverable(
        seed in 0u64..u64::MAX,
        permille in 30u32..280,
    ) {
            let _guard = serial();
            let start = Instant::now();
            failpoints::disarm_all();
            let tag = format!("storm_{seed}_{permille}");
            let clean_dir = test_dir(&format!("{tag}_clean"));
            let hurt_dir = test_dir(&format!("{tag}_hurt"));
            let shards = chaos_shards();

            // The reference: a clean ingest with no faults armed.
            snapshot::persist_shards(&clean_dir, shards.clone()).unwrap();
            let clean = snapshot::open(&clean_dir).unwrap().into_views();

            // The storm rages through persist AND the subsequent open.
            failpoints::arm_seeded(seed, permille as u16, STORM);
            let _ = snapshot::persist_shards(&hurt_dir, shards.clone());
            let healed: SnapshotViews = match snapshot::open(&hurt_dir) {
                // The storm missed (or only transients struck): full store.
                Ok(snap) => snap.into_views(),
                Err(_) => match snapshot::open_salvage(&hurt_dir) {
                    Ok(partial) => {
                        // The storm passes; re-encode exactly the damage.
                        failpoints::disarm_all();
                        let damaged: BTreeSet<usize> =
                            partial.damaged_indices().into_iter().collect();
                        let inputs: Vec<ShardInput> = shards
                            .iter()
                            .enumerate()
                            .map(|(index, shard)| {
                                if damaged.contains(&index) {
                                    ShardInput::Fresh(shard.clone())
                                } else {
                                    ShardInput::Unchanged {
                                        source_fingerprint: shard.source_fingerprint.unwrap(),
                                    }
                                }
                            })
                            .collect();
                        let report =
                            snapshot::sync(&hurt_dir, inputs).expect("targeted sync succeeds");
                        prop_assert!(
                            report.catalog_changed
                                || report.shards_encoded == damaged.len(),
                            "re-encoded {} shards for {} damaged",
                            report.shards_encoded,
                            damaged.len()
                        );
                        snapshot::open(&hurt_dir).expect("healed store opens").into_views()
                    }
                    Err(_) => {
                        // Not even a manifest to salvage against (the storm
                        // killed the persist before its atomic commit, or is
                        // still raging over the manifest): the last resort.
                        failpoints::disarm_all();
                        snapshot::persist_shards(&hurt_dir, shards.clone())
                            .expect("full re-ingest succeeds once the storm passes");
                        snapshot::open(&hurt_dir).expect("re-ingested store opens").into_views()
                    }
                },
            };
            failpoints::disarm_all();

            prop_assert_eq!(&healed.log, &clean.log);
            prop_assert_eq!(&healed.job, &clean.job);
            prop_assert_eq!(&healed.task, &clean.task);

            std::fs::remove_dir_all(&clean_dir).unwrap();
            std::fs::remove_dir_all(&hurt_dir).unwrap();
            prop_assert!(start.elapsed() < CEILING);
    }
}

// ---------------------------------------------------------------------------
// Journal crash-prefix recovery
// ---------------------------------------------------------------------------

/// The base snapshot for the journal tests: jobs *and* tasks, so both
/// columnar views are cached on reopen and a replayed tail splices into
/// them instead of triggering a from-scratch build.
fn journal_base_log() -> ExecutionLog {
    let mut log = small_log(16);
    for i in 0..4 {
        log.push(
            ExecutionRecord::task(format!("base_task_{i}"), format!("job_{i}"))
                .with_feature("tasktype", if i % 2 == 0 { "MAP" } else { "REDUCE" })
                .with_feature("duration", 5.0 + i as f64),
        );
    }
    log.rebuild_catalogs();
    log
}

/// One journaled append batch: a couple of jobs plus a task, with unique
/// ids per `(batch, row)` so recovered logs compare exactly.
fn journal_batch(batch: usize, rows: usize) -> Vec<ExecutionRecord> {
    (0..rows)
        .flat_map(|row| {
            let id = batch * 100 + row;
            let job = ExecutionRecord::job(format!("jl_job_{id}"))
                .with_feature("inputsize", 1.0e9 + id as f64)
                .with_feature("blocksize", if id % 2 == 0 { 1024.0 } else { 64.0 })
                .with_feature("duration", 60.0 + id as f64);
            let task = ExecutionRecord::task(format!("jl_task_{id}"), format!("jl_job_{id}"))
                .with_feature("tasktype", if id % 2 == 0 { "MAP" } else { "REDUCE" })
                .with_feature("duration", 6.0 + id as f64);
            [job, task]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The durability invariant, attacked from the disk side: persist a
    /// base snapshot, journal K batches under `fsync = Always` (every one
    /// acked durable), then crash the journal at an arbitrary byte — cut
    /// it off (torn tail) or flip the byte (bit rot).  The reopen must
    /// never panic or error, must recover exactly the batches whose frames
    /// lie entirely before the damage, and must serve views bit-identical
    /// to a from-scratch build of the surviving records — warm, with no
    /// full rebuild.
    #[test]
    fn crash_prefixes_of_the_journal_recover_exactly_the_acked_frames(
        batches in 1usize..5,
        rows in 1usize..4,
        permille in 0u32..1001,
        flip_coin in 0u32..2,
    ) {
        let flip = flip_coin == 1;
        let _guard = serial();
        let start = Instant::now();
        failpoints::disarm_all();
        let tag = format!("jprefix_{batches}_{rows}_{permille}_{flip}");
        let dir = test_dir(&tag);

        let service = XplainService::new(journal_base_log());
        service.persist(&dir).expect("base persist");
        service
            .enable_journal(&dir, FsyncPolicy::Always)
            .expect("journal anchors on the persisted dir");

        // Append K batches; under Always every single ack is durable, and
        // the journal byte size after each ack marks that frame's end.
        let mut frame_ends = Vec::new();
        for batch in 0..batches {
            let outcome = service.append(journal_batch(batch, rows)).expect("append");
            prop_assert!(outcome.durable, "fsync=Always must ack durable");
            frame_ends.push(service.journal_stats().expect("journal enabled").bytes);
        }
        drop(service);

        // Crash: damage the journal at an arbitrary byte offset.
        let journal_path = dir.join(snapshot::JOURNAL_FILE);
        let len = std::fs::metadata(&journal_path).unwrap().len();
        let at = len * u64::from(permille) / 1000;
        if flip {
            let mut bytes = std::fs::read(&journal_path).unwrap();
            let at = (at.min(len.saturating_sub(1))) as usize;
            bytes[at] ^= 0xff;
            std::fs::write(&journal_path, &bytes).unwrap();
        } else {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&journal_path)
                .unwrap();
            file.set_len(at).unwrap();
        }
        // Frames whose bytes all lie strictly before the damage survive;
        // a flip at `at` wounds the frame containing that byte.
        let damage_at = if flip {
            at.min(len.saturating_sub(1))
        } else {
            at
        };
        let surviving = frame_ends.iter().filter(|end| **end <= damage_at).count();

        // The reopen replays the surviving prefix — typed truncation, no
        // panic, no error.
        let reopened = XplainService::open_snapshot(&dir).expect("crash-damaged reopen");
        let mut expected_log = journal_base_log();
        for batch in 0..surviving {
            expected_log.append(journal_batch(batch, rows));
        }
        let expected = XplainService::new(expected_log.clone());
        prop_assert_eq!(reopened.snapshot(), expected_log);
        let (recovered_job, scratch_job) =
            (reopened.view(ExecutionKind::Job), expected.view(ExecutionKind::Job));
        prop_assert_eq!(recovered_job.as_ref(), scratch_job.as_ref());
        let (recovered_task, scratch_task) =
            (reopened.view(ExecutionKind::Task), expected.view(ExecutionKind::Task));
        prop_assert_eq!(recovered_task.as_ref(), scratch_task.as_ref());
        // The replayed tail was spliced through the delta path: serving
        // the views above never paid a from-scratch rebuild.
        prop_assert_eq!(reopened.view_stats().full_rebuilds, 0);

        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert!(start.elapsed() < CEILING);
    }
}

/// A failed fsync must not desync the journal: the unacknowledged frame is
/// scrubbed back off the file, the journal stays live, and the next acked
/// frame lands at the position the failed one vacated — so a crash replay
/// recovers exactly the acked batches, never resurrects the failed one,
/// and never skips an acked frame written after the fault.
#[test]
fn failed_fsync_rolls_the_frame_back_and_later_acked_frames_replay() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let dir = test_dir("jfsync_rollback");

    let service = XplainService::new(journal_base_log());
    service.persist(&dir).expect("base persist");
    service
        .enable_journal(&dir, FsyncPolicy::Always)
        .expect("journal anchors on the persisted dir");

    let first = service.append(journal_batch(0, 2)).expect("first append");
    assert!(first.durable);
    let bytes_after_first = service.journal_stats().expect("journal enabled").bytes;

    // A hard (non-transient) fsync fault: the append errors, nothing is
    // acknowledged, and the frame is rolled back off the file.
    failpoints::script(
        "journal.fsync",
        &[Action::IoError(ErrorKind::PermissionDenied)],
    );
    service
        .append(journal_batch(1, 2))
        .expect_err("fsync fault must fail the append");
    failpoints::disarm_all();
    let stats = service.journal_stats().expect("journal stays active");
    assert_eq!(
        stats.bytes, bytes_after_first,
        "the unacknowledged frame must be scrubbed off the journal"
    );

    // The journal is still live: the next batch acks durable into the
    // vacated position.
    let third = service
        .append(journal_batch(2, 2))
        .expect("appends keep working after the fault");
    assert!(third.durable);
    drop(service);

    // Crash replay recovers exactly the acked batches: batch 1 (failed,
    // never acked) must not resurrect, batch 2 (acked durable after the
    // fault) must not be shadowed or dropped.
    let reopened = XplainService::open_snapshot(&dir).expect("reopen");
    let mut expected = journal_base_log();
    expected.append(journal_batch(0, 2));
    expected.append(journal_batch(2, 2));
    assert_eq!(reopened.snapshot(), expected);

    std::fs::remove_dir_all(&dir).unwrap();
    assert!(start.elapsed() < CEILING);
}

/// A checkpoint whose journal-rotation swap fails *after* the manifest
/// committed must deactivate journaling: the commit already unlinked the
/// old `journal.bin`, so a handle stuck on the old inode would keep acking
/// "durable" frames recovery could never find.
#[test]
fn failed_rotation_swap_deactivates_journaling_instead_of_lying() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let dir = test_dir("jrotate_swap");

    let service = XplainService::new(journal_base_log());
    service.persist(&dir).expect("base persist");
    service
        .enable_journal(&dir, FsyncPolicy::Always)
        .expect("journal anchors on the persisted dir");
    service.append(journal_batch(0, 2)).expect("append");

    // `journal.write` fires once in begin_rotation (staging the next
    // generation: pass) and once in commit_rotation (the rename after the
    // manifest committed: fail hard).
    failpoints::script(
        "journal.write",
        &[Action::Pass, Action::IoError(ErrorKind::PermissionDenied)],
    );
    service
        .checkpoint(&dir)
        .expect_err("the failed swap must surface");
    failpoints::disarm_all();

    // Journaling deactivated: appends keep working but no longer claim a
    // durability they cannot deliver.
    assert!(service.journal_stats().is_none());
    let outcome = service
        .append(journal_batch(1, 2))
        .expect("appends continue un-journaled");
    assert!(!outcome.durable);

    // And the committed checkpoint is intact on disk.
    let reopened = XplainService::open_snapshot(&dir).expect("reopen");
    let mut expected = journal_base_log();
    expected.append(journal_batch(0, 2));
    assert_eq!(reopened.snapshot(), expected);

    std::fs::remove_dir_all(&dir).unwrap();
    assert!(start.elapsed() < CEILING);
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

#[test]
fn panicking_pool_jobs_are_requeued_and_latches_settle() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let pool = perfxplain::mlcore::pool::WorkerPool::new(2);

    // Three injected panics strike three dequeues; the struck jobs are
    // requeued, so every chunk still lands and the latch settles.
    failpoints::script("pool.job", &[Action::Panic, Action::Panic, Action::Panic]);
    let items: Vec<u64> = (0..64).collect();
    let sums = pool.map_chunks(&items, 8, |chunk| chunk.iter().sum::<u64>());
    assert_eq!(sums.len(), 8);
    assert_eq!(sums.iter().sum::<u64>(), 64 * 63 / 2);
    assert!(
        failpoints::hits("pool.job") >= 8 + 3,
        "8 jobs plus 3 requeued retries, saw {}",
        failpoints::hits("pool.job")
    );

    // The pool is fully serviceable afterwards — no worker died.
    let again = pool.map_chunks(&items, 4, |chunk| chunk.len());
    assert_eq!(again.iter().sum::<usize>(), 64);

    failpoints::disarm_all();
    assert!(start.elapsed() < CEILING);
}

// ---------------------------------------------------------------------------
// Server sockets
// ---------------------------------------------------------------------------

#[test]
fn server_connections_ride_through_transient_socket_faults() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let service = Arc::new(XplainService::new(small_log(200)));
    let handle = spawn(
        Arc::clone(&service),
        ServerConfig {
            scheduler: SchedulerConfig::default(),
            workers: 2,
            default_timeout: Some(Duration::from_secs(60)),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects");

    // A transient read fault leaves the frame in the socket buffer and a
    // transient write fault leaves the response queued: the next poll tick
    // completes both and the client never notices.
    failpoints::script("server.read", &[Action::IoError(ErrorKind::Interrupted)]);
    failpoints::script("server.write", &[Action::IoError(ErrorKind::WouldBlock)]);
    let probe = WireRequest {
        id: Some(1),
        target: Some("status".to_string()),
        ..WireRequest::default()
    };
    let status = client.call(&probe).expect("answered through the faults");
    assert!(status.is_ok(), "{status:?}");
    assert_eq!(status.queue_depth, Some(0));
    assert!(failpoints::hits("server.read") >= 1);
    assert!(failpoints::hits("server.write") >= 1);

    // A hard accept fault skips one tick of accepts; the listener stays
    // readable, so the very next tick lets the connection in.
    failpoints::script(
        "server.accept",
        &[Action::IoError(ErrorKind::ConnectionAborted)],
    );
    let mut second = Client::connect(&addr).expect("second client connects");
    let probe2 = WireRequest {
        id: Some(2),
        target: Some("status".to_string()),
        ..WireRequest::default()
    };
    let status2 = second.call(&probe2).expect("accepted on the next tick");
    assert!(status2.is_ok(), "{status2:?}");
    assert!(failpoints::hits("server.accept") >= 1);

    // And the first connection is still alive.
    let status3 = client.call(&probe).expect("original connection survives");
    assert!(status3.is_ok(), "{status3:?}");

    failpoints::disarm_all();
    drop(handle);
    assert!(start.elapsed() < CEILING);
}

// ---------------------------------------------------------------------------
// Wiring audit
// ---------------------------------------------------------------------------

/// Every documented snapshot site actually fires during a persist →
/// journal → corrupt → salvage round trip — a site that silently un-wires
/// would turn the rest of this suite into a no-op.
#[test]
fn every_snapshot_failpoint_site_is_wired() {
    let _guard = serial();
    let start = Instant::now();
    failpoints::disarm_all();
    let dir = test_dir("wired");
    snapshot::persist_shards(&dir, chaos_shards()).unwrap();
    snapshot::open(&dir).unwrap();

    // Exercise the journal sites: an fsynced append (journal.write +
    // journal.fsync), a checkpoint rotation (journal.write), and a reopen
    // that replays the journal (journal.replay).
    let service = XplainService::open_snapshot(&dir).unwrap();
    service.enable_journal(&dir, FsyncPolicy::Always).unwrap();
    service.append(journal_batch(0, 1)).unwrap();
    service.checkpoint(&dir).unwrap();
    drop(service);
    XplainService::open_snapshot(&dir).unwrap();

    // Damage one segment so the salvage path (and its quarantine rename)
    // runs too.
    let manifest = snapshot::SnapshotManifest::load(&dir).unwrap();
    let victim = dir.join(&manifest.shards[0].file);
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[0] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();
    snapshot::open_salvage(&dir).unwrap();

    let hit: BTreeSet<String> = failpoints::sites_hit()
        .into_iter()
        .map(|(site, _)| site)
        .collect();
    for site in [
        "snapshot.dir.create",
        "snapshot.manifest.write",
        "snapshot.manifest.rename",
        "snapshot.manifest.read",
        "snapshot.segment.write",
        "snapshot.segment.read",
        "snapshot.segment.decode",
        "snapshot.segment.quarantine",
        "journal.write",
        "journal.fsync",
        "journal.replay",
    ] {
        assert!(hit.contains(site), "failpoint '{site}' never triggered");
    }

    failpoints::disarm_all();
    assert!(start.elapsed() < CEILING);
    std::fs::remove_dir_all(&dir).unwrap();
}
