//! Property-based tests (proptest) on the core invariants of the data model
//! and the query language, plus old/new equivalence properties of the
//! streaming columnar training pipeline.

use perfxplain::pxql::{parse_predicate, parse_query, Atom, Op, Predicate, Value};
use perfxplain::{
    compute_pair_features, BoundQuery, ExecutionLog, ExecutionRecord, ExplainConfig,
    FeatureCatalog, FeatureDef, PairExample, PairLabel,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_record(id: String) -> impl Strategy<Value = ExecutionRecord> {
    (
        -1.0e9..1.0e9f64,
        0.0..1.0e12f64,
        prop_oneof![Just("simple-filter.pig"), Just("simple-groupby.pig")],
        1.0..4000.0f64,
    )
        .prop_map(move |(metric, inputsize, script, duration)| {
            ExecutionRecord::job(id.clone())
                .with_feature("somemetric", metric)
                .with_feature("inputsize", inputsize)
                .with_feature("pigscript", script)
                .with_feature("duration", duration)
        })
}

fn catalog() -> FeatureCatalog {
    FeatureCatalog::from_defs(vec![
        FeatureDef::numeric("somemetric"),
        FeatureDef::numeric("inputsize"),
        FeatureDef::nominal("pigscript"),
        FeatureDef::numeric("duration"),
    ])
}

// ---------------------------------------------------------------------------
// Pair-feature construction invariants (Table 1)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn pair_features_satisfy_table1_invariants(
        left in arb_record("left".to_string()),
        right in arb_record("right".to_string()),
    ) {
        let catalog = catalog();
        let features = compute_pair_features(&catalog, &left, &right, 0.10);
        for def in catalog.defs() {
            let is_same = features.get(&format!("{}_isSame", def.name)).unwrap();
            let compare = features.get(&format!("{}_compare", def.name)).unwrap();
            let diff = features.get(&format!("{}_diff", def.name)).unwrap();
            let base = features.get(&def.name).unwrap();

            // isSame = T  ⇒  the base feature carries the shared value and
            //               the diff feature is missing.
            if *is_same == Value::Bool(true) {
                prop_assert!(!base.is_null());
                prop_assert!(diff.is_null());
                // A numeric pair that is exactly equal is also SIM.
                if let Value::Str(c) = compare {
                    prop_assert_eq!(c.as_str(), "SIM");
                }
            }
            // isSame = F  ⇒  no base value is copied.
            if *is_same == Value::Bool(false) {
                prop_assert!(base.is_null());
            }
            // compare is only ever LT / SIM / GT, and only for numeric
            // features.
            if let Value::Str(c) = compare {
                prop_assert!(["LT", "SIM", "GT"].contains(&c.as_str()));
                prop_assert_eq!(def.kind, perfxplain::FeatureKind::Numeric);
            }
            // diff is only defined for nominal features and always carries a
            // pair of values.
            if !diff.is_null() {
                prop_assert_eq!(def.kind, perfxplain::FeatureKind::Nominal);
                prop_assert!(matches!(diff, Value::Pair(_, _)));
            }
        }
    }

    #[test]
    fn pair_features_are_symmetric_under_swap(
        left in arb_record("left".to_string()),
        right in arb_record("right".to_string()),
    ) {
        let catalog = catalog();
        let forward = compute_pair_features(&catalog, &left, &right, 0.10);
        let backward = compute_pair_features(&catalog, &right, &left, 0.10);
        for def in catalog.defs() {
            // isSame is symmetric.
            prop_assert_eq!(
                forward.get(&format!("{}_isSame", def.name)),
                backward.get(&format!("{}_isSame", def.name))
            );
            // compare flips LT <-> GT and keeps SIM.
            let f = forward.get(&format!("{}_compare", def.name)).unwrap();
            let b = backward.get(&format!("{}_compare", def.name)).unwrap();
            match (f, b) {
                (Value::Str(x), Value::Str(y)) => {
                    let flipped = match x.as_str() {
                        "LT" => "GT",
                        "GT" => "LT",
                        other => other,
                    };
                    prop_assert_eq!(flipped, y.as_str());
                }
                (Value::Null, Value::Null) => {}
                other => prop_assert!(false, "asymmetric compare: {:?}", other),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PXQL invariants
// ---------------------------------------------------------------------------

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        // Feature names never collide with PXQL keywords thanks to the
        // prefix.
        "f_[a-z_]{0,10}",
        prop_oneof![
            Just(Op::Eq),
            Just(Op::Ne),
            Just(Op::Lt),
            Just(Op::Le),
            Just(Op::Gt),
            Just(Op::Ge)
        ],
        prop_oneof![
            (-1.0e6..1.0e6f64).prop_map(Value::Num),
            any::<bool>().prop_map(Value::Bool),
            "[A-Za-z][A-Za-z0-9_.-]{0,8}".prop_map(Value::Str),
        ],
    )
        .prop_map(|(feature, op, constant)| Atom {
            feature,
            op,
            constant,
        })
}

proptest! {
    #[test]
    fn predicates_round_trip_through_their_display_form(
        atoms in proptest::collection::vec(arb_atom(), 1..5)
    ) {
        let predicate = Predicate::from_atoms(atoms);
        let text = predicate.to_string();
        let reparsed = parse_predicate(&text).expect("rendered predicates parse");
        prop_assert_eq!(reparsed.width(), predicate.width());
        // Evaluation agrees on the features the predicate mentions (built
        // from the predicate's own constants, so equality atoms hold).
        let mut features = std::collections::BTreeMap::new();
        for atom in predicate.atoms() {
            features.insert(atom.feature.clone(), atom.constant.clone());
        }
        prop_assert_eq!(reparsed.eval(&features), predicate.eval(&features));
    }

    #[test]
    fn atoms_on_missing_features_never_hold(atom in arb_atom()) {
        let empty: std::collections::BTreeMap<String, Value> = std::collections::BTreeMap::new();
        prop_assert!(!atom.eval(&empty));
    }
}

// ---------------------------------------------------------------------------
// Classification / metric invariants over small random logs
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn classification_is_consistent_with_metric_bounds(seed in 0u64..1000) {
        // Build a small random-ish log deterministically from the seed.
        let mut log = ExecutionLog::new();
        for i in 0..14u64 {
            let x = (seed.wrapping_mul(31).wrapping_add(i * 7)) % 5;
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", (1 + x) as f64 * 1.0e9)
                    .with_feature("blocksize", if i % 2 == 0 { 1024.0 } else { 64.0 })
                    .with_feature("duration", 100.0 + (x as f64) * 120.0 + (i % 3) as f64),
            );
        }
        log.rebuild_catalogs();

        let query = perfxplain::pxql::parse_query(
            "OBSERVED duration_compare = SIM\nEXPECTED duration_compare = GT",
        )
        .unwrap();
        let bound = BoundQuery::new(query, "job_0", "job_1");
        let config = ExplainConfig::default().with_sample_size(200);

        // Every related pair is classified consistently with its own
        // features, and metric estimates stay within [0, 1].
        let catalog = log.job_catalog().clone();
        let jobs: Vec<&ExecutionRecord> = log.jobs().collect();
        let mut observed = 0usize;
        let mut expected = 0usize;
        for a in &jobs {
            for b in &jobs {
                if a.id == b.id {
                    continue;
                }
                let pair = PairExample::build(&catalog, a, b, config.sim_threshold);
                match bound.classify(&pair) {
                    PairLabel::Observed => observed += 1,
                    PairLabel::Expected => expected += 1,
                    PairLabel::Unrelated => {}
                }
            }
        }
        if observed > 0 && expected > 0 {
            let set = perfxplain::prepare_training_set(&log, &bound, &config).unwrap();
            prop_assert_eq!(set.num_observed() + set.num_expected(), set.len());
            let quality = perfxplain::assess(&set, &perfxplain::Explanation::default());
            for estimate in [quality.precision, quality.generality, quality.relevance] {
                if let Some(v) = estimate.value {
                    prop_assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming columnar pipeline ≡ map-based pipeline
// ---------------------------------------------------------------------------

/// A deterministic pseudo-random log: numeric and nominal features, missing
/// values, and duration regimes that give both observed and expected pairs.
fn random_log(seed: u64) -> ExecutionLog {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut log = ExecutionLog::new();
    let n = 10 + (mix(seed) % 8) as usize;
    for i in 0..n {
        let h = mix(seed.wrapping_mul(31).wrapping_add(i as u64));
        let input = [1.0e9, 4.0e9, 32.0e9][(h % 3) as usize];
        let blocks = [64.0, 256.0, 1024.0][((h >> 8) % 3) as usize];
        let script = ["a.pig", "b.pig", "c.pig"][((h >> 16) % 3) as usize];
        let fast = (h >> 24).is_multiple_of(2);
        let duration = if fast {
            600.0
        } else {
            input / 5.0e7 + (h % 7) as f64
        };
        let mut record = ExecutionRecord::job(format!("job_{i}"))
            .with_feature("inputsize", input)
            .with_feature("blocksize", blocks)
            .with_feature("duration", duration);
        // Sprinkle in missing and nominal features.
        if !(h >> 32).is_multiple_of(4) {
            record.set_feature("pigscript", script);
        }
        if !(h >> 34).is_multiple_of(3) {
            record.set_feature("iosortfactor", 10.0 + ((h >> 36) % 3) as f64);
        }
        log.push(record);
    }
    log.rebuild_catalogs();
    log
}

/// A pool of structurally different queries: compare / isSame-blocking /
/// no-despite / base-feature atoms.
fn query_pool() -> Vec<perfxplain::pxql::PxqlQuery> {
    let mut queries = vec![
        parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap(),
        parse_query(
            "DESPITE pigscript_isSame = T\n\
             OBSERVED duration_compare = GT\n\
             EXPECTED duration_compare = SIM",
        )
        .unwrap(),
        parse_query(
            "OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap(),
    ];
    // A despite clause over a base feature and an isSame feature together.
    let base = parse_query("OBSERVED duration_compare = SIM\nEXPECTED duration_compare = GT")
        .unwrap()
        .with_despite(Predicate::from_atoms(vec![
            Atom::new("blocksize", Op::Ge, 256i64),
            Atom::eq("inputsize_isSame", false),
        ]));
    queries.push(base);
    queries
}

/// The eager, map-based reference: classify every ordered pair through
/// `compute_selected_pair_features` (exactly what the seed implementation
/// did, minus blocking/capping, which only prune pairs that classify as
/// unrelated anyway).
fn reference_related_pairs(
    log: &ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> Vec<(usize, usize, PairLabel)> {
    let records: Vec<&ExecutionRecord> = log.jobs().collect();
    let mut related = Vec::new();
    for i in 0..records.len() {
        for j in 0..records.len() {
            if i == j {
                continue;
            }
            let label = query.classify_records(log, records[i], records[j], config.sim_threshold);
            if label.is_related() {
                related.push((i, j, label));
            }
        }
    }
    related
}

/// An uncapped configuration, so streaming and eager candidate selection
/// are comparable as sets.
fn uncapped_config() -> ExplainConfig {
    let mut config = ExplainConfig::default().with_sample_size(400);
    config.max_candidate_pairs = usize::MAX;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The streaming enumerator yields exactly the related pairs (and
    /// labels) of the eager map-based path.
    #[test]
    fn streaming_related_pairs_match_the_map_based_path(seed in 0u64..500) {
        let log = random_log(seed);
        let config = uncapped_config();
        for query in query_pool() {
            let bound = BoundQuery::new(query, "job_0", "job_1");
            let (_, related) = perfxplain_core::training::collect_related_pairs(
                &log, &bound, &config,
            );
            let mut streaming: Vec<(usize, usize, PairLabel)> = related
                .iter()
                .map(|p| (p.left, p.right, p.label))
                .collect();
            streaming.sort_unstable_by_key(|&(l, r, _)| (l, r));
            let mut reference = reference_related_pairs(&log, &bound, &config);
            reference.sort_unstable_by_key(|&(l, r, _)| (l, r));
            prop_assert_eq!(streaming, reference);
        }
    }

    /// The one-pass columnar dataset encoding produces a dataset identical
    /// to the PairExample-map bridge: same schema, same pair-of-interest
    /// row, same cells and labels — and therefore the same induced decision
    /// tree.
    #[test]
    fn encoded_dataset_and_induced_tree_match_the_bridge(seed in 0u64..200) {
        use perfxplain_core::bridge::DatasetBridge;
        use perfxplain_core::pairs::PairCatalog;
        use perfxplain::mlcore::{DecisionTree, TreeConfig};

        let log = random_log(seed);
        let config = uncapped_config();
        for query in query_pool() {
            let bound = BoundQuery::new(query, "job_0", "job_1");
            let Ok(poi) = bound.verify_preconditions(&log, config.sim_threshold) else {
                continue;
            };
            let Ok(encoded) =
                perfxplain_core::training::prepare_encoded_training(&log, &bound, &config)
            else {
                continue;
            };
            let set = perfxplain::prepare_training_set(&log, &bound, &config).unwrap();
            let catalog = PairCatalog::from_raw(log.job_catalog())
                .restrict_to_groups(config.feature_level.allowed_groups());
            let excluded = perfxplain_core::query::excluded_raw_features(&bound, &config);

            let by_maps = DatasetBridge::build(&set, &poi, &catalog, &excluded);
            let poi_rows = (
                encoded.view.row_of(&bound.left_id).unwrap(),
                encoded.view.row_of(&bound.right_id).unwrap(),
            );
            let by_view = DatasetBridge::encode_from_view(
                &encoded, poi_rows, &catalog, &excluded, config.sim_threshold,
            );

            prop_assert_eq!(by_maps.num_attributes(), by_view.num_attributes());
            for attr in 0..by_maps.num_attributes() {
                prop_assert_eq!(by_maps.attr_name(attr), by_view.attr_name(attr));
                prop_assert_eq!(
                    by_maps.poi_value(attr), by_view.poi_value(attr),
                    "poi diverges on {} (seed {})", by_maps.attr_name(attr), seed
                );
            }
            let (a, b) = (by_maps.dataset(), by_view.dataset());
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(a.labels(), b.labels());
            prop_assert_eq!(a.attributes(), b.attributes());
            for row in 0..a.len() {
                prop_assert_eq!(a.row(row), b.row(row), "row {} diverges", row);
            }

            // Identical datasets induce identical decision trees.
            let tree_a = DecisionTree::fit(a, TreeConfig::default());
            let tree_b = DecisionTree::fit(b, TreeConfig::default());
            prop_assert_eq!(tree_a.root(), tree_b.root());
        }
    }

    /// An [`perfxplain::XplainService`] never serves a stale view: under any
    /// interleaving of `push` / `rebuild_catalogs` mutations and queries,
    /// every query's answer is identical to a stateless engine running
    /// against a freshly encoded snapshot of the log at that moment.
    #[test]
    fn service_answers_match_a_fresh_view_under_any_interleaving(
        seed in 0u64..120,
        ops in proptest::collection::vec(0u32..4, 1usize..12),
    ) {
        use perfxplain::{PerfXplain, QueryRequest, XplainService};

        let config = uncapped_config();
        let service = XplainService::with_config(random_log(seed), config.clone());
        let engine = PerfXplain::new(config.clone());
        let queries = query_pool();

        let mut extra = 0usize;
        for (step, op) in ops.iter().enumerate() {
            match op {
                // Mutate: push a record (catalogs intentionally left stale
                // until the next rebuild, as after any bulk load).
                0 => service.with_log_mut(|log| {
                    extra += 1;
                    let h = seed.wrapping_mul(131).wrapping_add(step as u64);
                    log.push(
                        ExecutionRecord::job(format!("extra_{extra}"))
                            .with_feature("inputsize", [1.0e9, 4.0e9, 32.0e9][(h % 3) as usize])
                            .with_feature("blocksize", 256.0)
                            .with_feature("duration", 400.0 + (h % 300) as f64),
                    );
                }),
                // Mutate: recompute the catalogs.
                1 => service.with_log_mut(|log| log.rebuild_catalogs()),
                // Query: the service (cached view) must agree with a fresh
                // engine over a snapshot of the current log.
                _ => {
                    let query = queries[(seed as usize + step) % queries.len()].clone();
                    let bound = BoundQuery::new(query, "job_0", "job_1");
                    let served = service.explain(&QueryRequest::bound(bound.clone()));
                    let snapshot = service.snapshot();
                    let fresh = engine.explain(&snapshot, &bound);
                    prop_assert_eq!(service.generation(), snapshot.generation());
                    match (&served, &fresh) {
                        (Ok(outcome), Ok(explanation)) => {
                            prop_assert_eq!(&outcome.explanation, explanation);
                            prop_assert_eq!(outcome.generation, snapshot.generation());
                        }
                        (Err(a), Err(b)) => prop_assert_eq!(a, b),
                        other => prop_assert!(false, "service/fresh divergence: {:?}", other),
                    }
                }
            }
        }
    }

    /// Delta-maintained views are bit-identical to a from-scratch rebuild.
    /// Under any interleaving of appends (the O(tail) delta-refresh path),
    /// appends that change the catalog (forced full rebuild), non-append
    /// mutations (`with_log_mut`, unconditional eviction), tail compactions
    /// and queries, the view the service serves after every step equals
    /// `ColumnarLog::build_sharded` over a snapshot of the log at that
    /// moment — and query answers agree with a stateless engine.
    #[test]
    fn delta_maintained_views_are_bit_identical_to_a_rebuild(
        seed in 0u64..120,
        shards in 1usize..8,
        ops in proptest::collection::vec(0u32..8, 1usize..14),
    ) {
        use perfxplain::{ExecutionKind, PerfXplain, QueryRequest, XplainService};
        use perfxplain_core::columnar::ColumnarLog;

        let config = uncapped_config();
        let service = XplainService::with_config(random_log(seed), config.clone());
        let engine = PerfXplain::new(config.clone());
        let queries = query_pool();

        let mut extra = 0usize;
        for (step, op) in ops.iter().enumerate() {
            let h = seed.wrapping_mul(131).wrapping_add(step as u64);
            match op {
                // Append through the delta path: known features only, so
                // the catalog (and the rewrite watermark) stay put.  Every
                // third batch reuses an existing id — appended duplicates
                // must shadow their base rows exactly like a rebuild.
                0..=2 => {
                    extra += 1;
                    let id = if h % 3 == 0 {
                        "job_0".to_string()
                    } else {
                        format!("appended_{extra}")
                    };
                    service.append(vec![
                        ExecutionRecord::job(id)
                            .with_feature("inputsize", [1.0e9, 4.0e9, 32.0e9][(h % 3) as usize])
                            .with_feature("blocksize", 256.0)
                            .with_feature("pigscript", ["a.pig", "d.pig"][((h >> 8) % 2) as usize])
                            .with_feature("duration", 400.0 + (h % 300) as f64),
                    ])
                    .expect("unjournaled append is infallible");
                }
                // Append a record carrying a brand-new feature: the batch
                // catalog differs, the rewrite watermark moves, and the
                // service must rebuild instead of splicing.
                3 => {
                    extra += 1;
                    service.append(vec![
                        ExecutionRecord::job(format!("appended_{extra}"))
                            .with_feature(format!("knob_{extra}"), (h % 10) as f64)
                            .with_feature("duration", 500.0),
                    ])
                    .expect("unjournaled append is infallible");
                }
                // Non-append mutation: unconditional eviction path.
                4 => service.with_log_mut(|log| {
                    extra += 1;
                    log.push(
                        ExecutionRecord::job(format!("pushed_{extra}"))
                            .with_feature("inputsize", 4.0e9)
                            .with_feature("duration", 700.0),
                    );
                    log.rebuild_catalogs();
                }),
                // Fold every cached tail into its base; content-neutral.
                5 => {
                    service.compact_views();
                }
                // Query: the served answer must match a stateless engine
                // over a snapshot of the current log.
                _ => {
                    let query = queries[(seed as usize + step) % queries.len()].clone();
                    let bound = BoundQuery::new(query, "job_0", "job_1");
                    let served = service.explain(&QueryRequest::bound(bound.clone()));
                    let fresh = engine.explain(&service.snapshot(), &bound);
                    match (&served, &fresh) {
                        (Ok(outcome), Ok(explanation)) => {
                            prop_assert_eq!(&outcome.explanation, explanation);
                        }
                        (Err(a), Err(b)) => prop_assert_eq!(a, b),
                        other => prop_assert!(false, "service/fresh divergence: {:?}", other),
                    }
                }
            }
            // After every step, the view the service would serve is
            // bit-identical to encoding the current log from scratch.
            let snapshot = service.snapshot();
            let served = service.view(ExecutionKind::Job);
            let rebuilt = ColumnarLog::build_sharded(&snapshot, ExecutionKind::Job, shards);
            prop_assert_eq!(
                &*served, &rebuilt,
                "served view diverges from a from-scratch rebuild at step {}", step
            );
        }
    }

    /// The sharded parallel encode produces a view bit-identical to the
    /// single-shot build for arbitrary logs and shard counts — including
    /// s = 1, s > n, and logs whose shards have disjoint dictionaries.
    #[test]
    fn sharded_build_is_bit_identical_to_the_single_shot_build(
        seed in 0u64..300,
        shards in 1usize..24,
    ) {
        use perfxplain_core::columnar::ColumnarLog;
        use perfxplain::ExecutionKind;

        let log = random_log(seed);
        let single = ColumnarLog::build(&log, ExecutionKind::Job);
        let sharded = ColumnarLog::build_sharded(&log, ExecutionKind::Job, shards);
        prop_assert_eq!(&sharded, &single);
        prop_assert_eq!(
            ColumnarLog::build_auto(&log, ExecutionKind::Job),
            single
        );

        // A log where every record carries a shard-unique nominal value:
        // every pair of shards has disjoint dictionary entries to merge.
        let mut disjoint = log.clone();
        let mut tagged = ExecutionLog::new();
        for (i, record) in disjoint.records().iter().enumerate() {
            let mut record = record.clone();
            record.set_feature("jobtag", format!("tag_{i}"));
            tagged.push(record);
        }
        disjoint = tagged;
        disjoint.rebuild_catalogs();
        prop_assert_eq!(
            ColumnarLog::build_sharded(&disjoint, ExecutionKind::Job, shards),
            ColumnarLog::build(&disjoint, ExecutionKind::Job)
        );
    }

    /// Sharded ingestion (`from_shards` over per-batch logs) equals pushing
    /// every record serially and rebuilding the catalogs.
    #[test]
    fn sharded_ingestion_equals_the_serial_ingest(
        seed in 0u64..300,
        shards in 1usize..10,
    ) {
        let log = random_log(seed);
        let records: Vec<ExecutionRecord> = log.records().to_vec();
        let chunk_size = records.len().div_ceil(shards).max(1);

        let shard_logs: Vec<ExecutionLog> = records
            .chunks(chunk_size)
            .map(|chunk| {
                let mut shard = ExecutionLog::new();
                for record in chunk {
                    shard.push(record.clone());
                }
                shard.rebuild_catalogs();
                shard
            })
            .collect();
        prop_assert_eq!(&ExecutionLog::from_shards(shard_logs), &log);

        let mut parallel = ExecutionLog::new();
        parallel.extend_parallel(
            records.chunks(chunk_size).map(<[ExecutionRecord]>::to_vec).collect(),
        );
        prop_assert_eq!(&parallel, &log);
    }

    /// The encoded end-to-end engine produces explanations identical to the
    /// legacy map-based clause generation.
    #[test]
    fn encoded_explanations_match_the_map_based_path(seed in 0u64..200) {
        let log = random_log(seed);
        let config = uncapped_config();
        let engine = perfxplain::PerfXplain::new(config.clone());
        for query in query_pool() {
            let bound = BoundQuery::new(query, "job_0", "job_1");
            let Ok(poi) = bound.verify_preconditions(&log, config.sim_threshold) else {
                continue;
            };
            let Ok(set) = perfxplain::prepare_training_set(&log, &bound, &config) else {
                continue;
            };
            let new_path = engine.explain(&log, &bound).unwrap();
            let legacy = engine.because_from_training(&set, &poi, &log, &bound);
            prop_assert_eq!(
                new_path.because, legacy,
                "because clause diverges for seed {}", seed
            );
            let new_despite = engine.generate_despite(&log, &bound).unwrap();
            let legacy_despite = engine.despite_from_training(&set, &poi, &log, &bound);
            prop_assert_eq!(new_despite, legacy_despite);
        }
    }
}

// ---------------------------------------------------------------------------
// Sweep split finder ≡ naive oracle, and trainer-rewrite invariance
// ---------------------------------------------------------------------------

use perfxplain::mlcore::{
    best_split, best_split_for_attribute, best_split_for_attribute_filtered, percentile_ranks,
    relief_weights, AttrValue, Attribute, Dataset, ReliefConfig, SplitCandidate,
};
use perfxplain_core::bridge::DatasetBridge;

/// SplitMix64 — the deterministic cell/label derivation behind the random
/// datasets below.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An adversarial dataset for the split search: numeric/nominal mix, missing
/// cells, NaN, ±infinity, schema-drift cells, heavy value ties, and values
/// within the equality tolerance of each other (negative zero, adjacent
/// representable doubles, sub-epsilon magnitudes) — everything that makes
/// the sweep's prefix/band bookkeeping earn its keep.  Returns the dataset
/// plus a derived pair-of-interest row for applicability filters.
fn build_split_dataset(
    schema_seed: u64,
    num_attrs: usize,
    row_seeds: &[u64],
    poi_seed: u64,
) -> (Dataset, Vec<AttrValue>) {
    let pool = [
        0.0,
        -0.0,
        1.0,
        1.0 + f64::EPSILON,
        1.5,
        -2.0,
        1.0e9,
        1.0e-17,
        2.0e-17,
        -1.0e-17,
        600.0,
        5.0,
    ];
    let numeric = |a: usize| (schema_seed >> a) & 1 == 0;
    let attributes = (0..num_attrs)
        .map(|a| {
            if numeric(a) {
                Attribute::numeric(format!("n{a}"))
            } else {
                Attribute::nominal(format!("c{a}"))
            }
        })
        .collect();
    let mut dataset = Dataset::new(attributes);
    for a in 0..num_attrs {
        if !numeric(a) {
            for v in 0..4 {
                dataset.attribute_mut(a).dictionary.intern(&format!("v{v}"));
            }
        }
    }
    let cell = |h: u64, numeric: bool| -> AttrValue {
        if numeric {
            match h % 16 {
                0 | 1 => AttrValue::Missing,
                2 => AttrValue::Num(f64::NAN),
                3 => AttrValue::Num(f64::INFINITY),
                4 => AttrValue::Num(f64::NEG_INFINITY),
                5 => AttrValue::Nom(0), // schema drift: nominal cell in a numeric column
                _ => AttrValue::Num(pool[(h >> 8) as usize % pool.len()]),
            }
        } else {
            match h % 8 {
                0 => AttrValue::Missing,
                1 => AttrValue::Num(2.5), // schema drift: numeric cell in a nominal column
                _ => AttrValue::Nom((h >> 8) as u32 % 4),
            }
        }
    };
    for &seed in row_seeds {
        let row: Vec<AttrValue> = (0..num_attrs)
            .map(|a| cell(splitmix(seed.wrapping_add(a as u64)), numeric(a)))
            .collect();
        dataset.push(row, splitmix(seed ^ 0xAB) & 1 == 0);
    }
    let poi: Vec<AttrValue> = (0..num_attrs)
        .map(|a| cell(splitmix(poi_seed.wrapping_add(a as u64)), numeric(a)))
        .collect();
    (dataset, poi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The sweep-based split finder returns a `SplitCandidate` identical —
    /// atom, gain, inside/outside counts, tie-breaks included — to the
    /// retained naive oracle, unfiltered and under the applicability
    /// filter, over full and subset index lists; the parallel
    /// all-attributes search matches the oracle's serial fold.
    #[test]
    fn sweep_split_finder_matches_the_naive_oracle(
        schema_seed in any::<u64>(),
        num_attrs in 1usize..4,
        row_seeds in proptest::collection::vec(any::<u64>(), 2..60),
        poi_seed in any::<u64>(),
    ) {
        let (dataset, poi) =
            build_split_dataset(schema_seed, num_attrs, &row_seeds, poi_seed);
        let all: Vec<usize> = (0..dataset.len()).collect();
        let subset: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| !splitmix(poi_seed ^ (i as u64)).is_multiple_of(3))
            .collect();
        for indices in [&all, &subset] {
            for (attribute, &poi_value) in poi.iter().enumerate() {
                prop_assert_eq!(
                    best_split_for_attribute(&dataset, indices, attribute),
                    mlcore::oracle::best_split_for_attribute(&dataset, indices, attribute),
                    "unfiltered attribute {} diverged", attribute
                );
                let sweep = best_split_for_attribute_filtered(
                    &dataset, indices, attribute,
                    |atom| atom.matches_value(poi_value),
                );
                let naive = mlcore::oracle::best_split_for_attribute_filtered(
                    &dataset, indices, attribute,
                    |atom| atom.matches_value(poi_value),
                );
                prop_assert_eq!(sweep, naive, "filtered attribute {} diverged", attribute);
            }
            prop_assert_eq!(
                best_split(&dataset, indices),
                mlcore::oracle::best_split(&dataset, indices),
            );
        }
    }

    /// The columnar, fanned-out Relief returns weights bit-identical to the
    /// retained row-at-a-time oracle on the same adversarial datasets.
    #[test]
    fn columnar_relief_matches_the_naive_oracle(
        schema_seed in any::<u64>(),
        num_attrs in 1usize..4,
        row_seeds in proptest::collection::vec(any::<u64>(), 2..60),
        iterations in 1usize..40,
    ) {
        let (dataset, _) = build_split_dataset(schema_seed, num_attrs, &row_seeds, 7);
        let config = ReliefConfig { iterations, seed: schema_seed };
        prop_assert_eq!(
            relief_weights(&dataset, config),
            mlcore::oracle::relief_weights(&dataset, config),
        );
    }
}

/// The greedy clause loop of Algorithm 1, reimplemented against the *naive*
/// split oracle: what `PerfXplain` produced before the sweep rewrite.
fn oracle_because_clause(
    bridge: &DatasetBridge,
    config: &ExplainConfig,
    width: usize,
) -> Predicate {
    let dataset = bridge.dataset();
    if dataset.is_empty() || width == 0 {
        return Predicate::always_true();
    }
    let mut atoms: Vec<Atom> = Vec::new();
    let mut current: Vec<usize> = (0..dataset.len()).collect();
    for _ in 0..width {
        if current.is_empty() {
            break;
        }
        let mut candidates: Vec<(usize, SplitCandidate)> = Vec::new();
        for attr in 0..bridge.num_attributes() {
            let poi_value = bridge.poi_value(attr);
            if poi_value.is_missing() || atoms.iter().any(|a| a.feature == bridge.attr_name(attr)) {
                continue;
            }
            if let Some(candidate) =
                mlcore::oracle::best_split_for_attribute_filtered(dataset, &current, attr, |atom| {
                    atom.matches_value(poi_value)
                })
            {
                candidates.push((attr, candidate));
            }
        }
        if candidates.is_empty() {
            break;
        }
        let precisions: Vec<f64> = candidates
            .iter()
            .map(|(_, c)| {
                let total = c.inside.total() as f64;
                if total == 0.0 {
                    0.0
                } else {
                    c.inside.positive as f64 / total
                }
            })
            .collect();
        let generalities: Vec<f64> = candidates
            .iter()
            .map(|(_, c)| c.inside.total() as f64 / current.len() as f64)
            .collect();
        let (precision_scores, generality_scores) = if config.normalize_scores {
            (
                percentile_ranks(&precisions),
                percentile_ranks(&generalities),
            )
        } else {
            (precisions.clone(), generalities.clone())
        };
        let w = config.precision_weight;
        let mut best_index = 0usize;
        let mut best_score = f64::MIN;
        for i in 0..candidates.len() {
            let score = w * precision_scores[i] + (1.0 - w) * generality_scores[i];
            let better = score > best_score + 1e-12
                || ((score - best_score).abs() <= 1e-12 && precisions[i] > precisions[best_index]);
            if better {
                best_score = score;
                best_index = i;
            }
        }
        let (_, winner) = &candidates[best_index];
        let atom = bridge.atom_to_pxql(&winner.atom);
        current.retain(|&row| winner.atom.matches_row(dataset, row));
        atoms.push(atom);
    }
    Predicate::from_atoms(atoms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// End to end: `PerfXplain::explain` over random logs and structurally
    /// different queries produces exactly the explanation the pre-sweep
    /// trainer produced (the greedy loop re-run against the naive oracle).
    #[test]
    fn explain_output_is_unchanged_by_the_sweep_trainer(seed in 0u64..200) {
        use perfxplain_core::pairs::PairCatalog;

        let log = random_log(seed);
        let config = uncapped_config();
        let engine = perfxplain::PerfXplain::new(config.clone());
        for query in query_pool() {
            let bound = BoundQuery::new(query, "job_0", "job_1");
            if bound.verify_preconditions(&log, config.sim_threshold).is_err() {
                continue;
            }
            let Ok(encoded) =
                perfxplain_core::training::prepare_encoded_training(&log, &bound, &config)
            else {
                continue;
            };
            let catalog = PairCatalog::from_raw(log.job_catalog())
                .restrict_to_groups(config.feature_level.allowed_groups());
            let excluded = perfxplain_core::query::excluded_raw_features(&bound, &config);
            let poi_rows = encoded.poi_rows(&bound).expect("poi rows exist");
            let bridge = DatasetBridge::encode_from_view(
                &encoded, poi_rows, &catalog, &excluded, config.sim_threshold,
            );
            let expected = perfxplain::Explanation::because_only(
                oracle_because_clause(&bridge, &config, config.width),
            );
            let actual = engine.explain(&log, &bound).unwrap();
            prop_assert_eq!(actual, expected, "explanation diverged for seed {}", seed);
        }
    }
}

/// Regression: a single NaN feature cell used to panic the split search
/// (`sort_by(..).expect("NaN feature value")`) and therefore the whole
/// service.  NaN now behaves exactly like a missing value everywhere in the
/// trainers.
#[test]
fn nan_feature_values_do_not_panic_the_pipeline() {
    let clean = random_log(3);
    let mut log = ExecutionLog::new();
    for (i, record) in clean.records().iter().enumerate() {
        let mut record = record.clone();
        if i % 3 == 0 {
            record.set_feature("iosortfactor", f64::NAN);
        }
        if i % 4 == 0 {
            record.set_feature("duration", f64::NAN);
        }
        log.push(record);
    }
    log.rebuild_catalogs();

    let config = uncapped_config();
    let engine = perfxplain::PerfXplain::new(config.clone());
    for query in query_pool() {
        let bound = BoundQuery::new(query, "job_1", "job_2");
        // Ok or a typed error — never a panic.
        let _ = engine.explain(&log, &bound);
        let _ = perfxplain::RuleOfThumb::new(config.clone()).explain(&log, &bound);
    }

    // The mlcore trainers treat the NaN cells exactly like Missing ones.
    let mut with_nan = Dataset::new(vec![Attribute::numeric("x")]);
    let mut with_missing = Dataset::new(vec![Attribute::numeric("x")]);
    for i in 0..20 {
        let label = i % 2 == 0;
        if i % 5 == 0 {
            with_nan.push(vec![AttrValue::Num(f64::NAN)], label);
            with_missing.push(vec![AttrValue::Missing], label);
        } else {
            with_nan.push(vec![AttrValue::Num(i as f64)], label);
            with_missing.push(vec![AttrValue::Num(i as f64)], label);
        }
    }
    let indices: Vec<usize> = (0..with_nan.len()).collect();
    assert_eq!(
        best_split_for_attribute(&with_nan, &indices, 0),
        best_split_for_attribute(&with_missing, &indices, 0),
    );
    assert_eq!(
        relief_weights(&with_nan, ReliefConfig::default()),
        relief_weights(&with_missing, ReliefConfig::default()),
    );
}

// ---------------------------------------------------------------------------
// Snapshot-store equivalence properties
// ---------------------------------------------------------------------------

/// [`random_log`] plus task records, so both execution kinds exercise the
/// snapshot round trip.
fn random_mixed_log(seed: u64) -> ExecutionLog {
    let mut log = random_log(seed);
    let jobs: Vec<String> = log.jobs().map(|j| j.id.clone()).collect();
    for (i, job_id) in jobs.iter().enumerate() {
        if i % 3 == 0 {
            log.push(
                ExecutionRecord::task(format!("task_{i}"), job_id.clone())
                    .with_feature("tasktype", if i % 2 == 0 { "MAP" } else { "REDUCE" })
                    .with_feature("duration", 5.0 + i as f64),
            );
        }
    }
    log.rebuild_catalogs();
    log
}

/// A per-case scratch directory under the system temp dir.
fn snapshot_dir(tag: &str, a: u64, b: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pxsnap_prop_{}_{tag}_{a}_{b}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ColumnarLog::build_from_snapshot(persist(log))` is bit-identical to
    /// `ColumnarLog::build_sharded(log, ..)` for arbitrary logs and shard
    /// counts, for both execution kinds, and the reopened log equals the
    /// original.
    #[test]
    fn snapshot_views_are_bit_identical_to_the_sharded_build(
        seed in 0u64..150,
        shards in 1usize..12,
    ) {
        use perfxplain::snapshot;
        use perfxplain::ExecutionKind;
        use perfxplain_core::columnar::ColumnarLog;

        let log = random_mixed_log(seed);
        let dir = snapshot_dir("views", seed, shards);
        snapshot::persist(&log, &dir, shards).unwrap();
        let snap = snapshot::open(&dir).unwrap();

        prop_assert_eq!(&snap.to_log(), &log);
        for kind in [ExecutionKind::Job, ExecutionKind::Task] {
            let from_snapshot = ColumnarLog::build_from_snapshot(&snap, kind);
            prop_assert_eq!(&from_snapshot, &ColumnarLog::build_sharded(&log, kind, shards));
            prop_assert_eq!(&from_snapshot, &ColumnarLog::build(&log, kind));
        }

        // The consuming zero-copy path (columns adopted straight from the
        // decoded segments) produces the same log and the same views as the
        // borrowing rebuild above.
        let views = snapshot::open(&dir).unwrap().into_views();
        prop_assert_eq!(&views.log, &log);
        prop_assert_eq!(&views.job, &ColumnarLog::build(&log, ExecutionKind::Job));
        prop_assert_eq!(&views.task, &ColumnarLog::build(&log, ExecutionKind::Task));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Incremental re-ingest with one dirty shard re-encodes exactly one
    /// segment; every other shard is served from disk, with its manifest
    /// entry — content fingerprint included — carried forward bit-for-bit.
    /// The synced snapshot equals a from-scratch serial ingest of the
    /// mutated records.
    #[test]
    fn incremental_sync_reencodes_exactly_the_dirty_shard(
        seed in 0u64..100,
        shard_count in 2usize..6,
        dirty_pick in 0usize..64,
    ) {
        use perfxplain::snapshot::{self, RecordShard, ShardInput};
        use perfxplain::ExecutionKind;
        use perfxplain_core::columnar::ColumnarLog;

        let log = random_mixed_log(seed);
        let records = log.records().to_vec();
        let chunk_size = records.len().div_ceil(shard_count).max(1);
        let chunks: Vec<Vec<ExecutionRecord>> =
            records.chunks(chunk_size).map(<[_]>::to_vec).collect();
        let dirty = dirty_pick % chunks.len();

        let dir = snapshot_dir("sync", seed, shard_count * 100 + dirty);
        let shards: Vec<RecordShard> = chunks
            .iter()
            .enumerate()
            .map(|(i, records)| RecordShard {
                records: records.clone(),
                source_fingerprint: Some(10_000 + i as u64),
            })
            .collect();
        snapshot::persist_shards(&dir, shards).unwrap();
        let before = perfxplain::SnapshotManifest::load(&dir).unwrap();

        // Mutate one numeric feature in the dirty shard: the catalogs stay
        // stable, so nothing else may re-encode.
        let mut mutated = chunks.clone();
        mutated[dirty][0].set_feature("duration", 123_456.0);
        let inputs: Vec<ShardInput> = mutated
            .iter()
            .enumerate()
            .map(|(i, records)| {
                if i == dirty {
                    ShardInput::Fresh(RecordShard {
                        records: records.clone(),
                        source_fingerprint: Some(777),
                    })
                } else {
                    ShardInput::Unchanged { source_fingerprint: 10_000 + i as u64 }
                }
            })
            .collect();
        let report = snapshot::sync(&dir, inputs).unwrap();
        prop_assert_eq!(report.shards_encoded, 1);
        prop_assert_eq!(report.shards_reused, chunks.len() - 1);
        prop_assert!(!report.catalog_changed);
        for (i, (old_entry, new_entry)) in
            before.shards.iter().zip(&report.manifest.shards).enumerate()
        {
            if i != dirty {
                prop_assert_eq!(old_entry, new_entry, "clean shard {} was touched", i);
            } else {
                prop_assert_eq!(new_entry.source_fingerprint, Some(777));
            }
        }

        // Equivalence with a from-scratch serial ingest of the mutated
        // records.
        let mut expected = ExecutionLog::new();
        for record in mutated.iter().flatten() {
            expected.push(record.clone());
        }
        expected.rebuild_catalogs();
        let snap = snapshot::open(&dir).unwrap();
        prop_assert_eq!(&snap.to_log(), &expected);
        for kind in [ExecutionKind::Job, ExecutionKind::Task] {
            prop_assert_eq!(
                ColumnarLog::build_from_snapshot(&snap, kind),
                ColumnarLog::build(&expected, kind)
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Segment codec round trips (bit-exact)
// ---------------------------------------------------------------------------

/// Adversarial numeric payloads for the v2 stream codec: non-finite values
/// and signed zero (must force the raw fallback), extreme magnitudes (must
/// not overflow the frame-of-reference / delta arithmetic), small integral
/// values (eligible for bit-packing) and arbitrary doubles.
fn arb_adversarial_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
        Just(0.0f64),
        Just(f64::MAX),
        Just(f64::MIN),
        Just(f64::MIN_POSITIVE),
        Just(42.0f64),
        any::<f64>(),
        any::<u32>().prop_map(|v| f64::from(v) - f64::from(u32::MAX / 2)),
    ]
}

/// One adversarial cell for a column whose nominal dictionary has
/// `dict_len` entries (`dict_len == 0` means the column is purely numeric).
fn arb_adversarial_cell(dict_len: u32) -> BoxedStrategy<perfxplain::mlcore::AttrValue> {
    use perfxplain::mlcore::AttrValue;
    if dict_len == 0 {
        prop_oneof![
            Just(AttrValue::Missing),
            arb_adversarial_f64().prop_map(AttrValue::Num),
        ]
        .boxed()
    } else {
        prop_oneof![
            Just(AttrValue::Missing),
            arb_adversarial_f64().prop_map(AttrValue::Num),
            (0u32..dict_len).prop_map(AttrValue::Nom),
        ]
        .boxed()
    }
}

/// Bitwise equality for cells: `Num` payloads compare by their IEEE-754
/// representation, so NaN == NaN and -0.0 != +0.0.
fn cells_bit_equal(a: &perfxplain::mlcore::AttrValue, b: &perfxplain::mlcore::AttrValue) -> bool {
    use perfxplain::mlcore::AttrValue;
    match (a, b) {
        (AttrValue::Missing, AttrValue::Missing) => true,
        (AttrValue::Num(x), AttrValue::Num(y)) => x.to_bits() == y.to_bits(),
        (AttrValue::Nom(x), AttrValue::Nom(y)) => x == y,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-packing at every width (0..=64) is the identity on values that
    /// fit the width — including the empty slice and a single value.
    #[test]
    fn packed_bits_round_trip_at_every_width(
        width in 0u32..65,
        raw in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        use perfxplain::mlcore::{ByteReader, ByteWriter};

        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let values: Vec<u64> = raw.iter().map(|v| v & mask).collect();
        let mut writer = ByteWriter::new();
        writer.put_packed(&values, width);
        let mut reader = ByteReader::new(writer.as_bytes());
        let decoded = reader.get_packed(values.len(), width).unwrap();
        prop_assert_eq!(decoded, values);
        prop_assert!(reader.is_exhausted());
    }

    /// The numeric stream codec (raw / frame-of-reference / delta, chosen
    /// per stream) is bit-exact over adversarial inputs: NaN payloads,
    /// infinities, signed zero and extreme magnitudes all survive.
    #[test]
    fn f64_stream_round_trips_bit_exactly(
        values in proptest::collection::vec(arb_adversarial_f64(), 0..60),
    ) {
        use perfxplain::mlcore::{decode_f64_stream, encode_f64_stream, ByteReader, ByteWriter};

        let mut writer = ByteWriter::new();
        encode_f64_stream(&mut writer, &values);
        let mut reader = ByteReader::new(writer.as_bytes());
        let decoded = decode_f64_stream(&mut reader, values.len()).unwrap();
        prop_assert_eq!(decoded.len(), values.len());
        for (got, want) in decoded.iter().zip(&values) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
        prop_assert!(reader.is_exhausted());
    }

    /// The whole v2 column-segment format is the identity on adversarial
    /// stores: dictionary-of-1 nominals (zero-bit packing), mixed
    /// numeric/nominal columns, all-missing columns, zero-row stores, and
    /// every pathological double.
    #[test]
    fn column_segments_round_trip_bit_exactly(
        dict_len in 1u32..4,
        rows in 0usize..40,
        cell_seed in any::<u64>(),
    ) {
        use perfxplain::mlcore::{Attribute, ByteReader, ByteWriter, ColumnStore};

        let mut nominal = Attribute::nominal("script");
        for i in 0..dict_len {
            nominal.dictionary.intern(&format!("script_{i}.pig"));
        }
        let attributes = vec![
            Attribute::numeric("metric"),
            nominal,
            Attribute::numeric("all_missing"),
        ];

        // Deterministically sample one cell strategy per (column, row) from
        // the seed, so the store is reproducible from the proptest case.
        let mut rng = proptest::test_rng(cell_seed);
        let numeric_cells = arb_adversarial_cell(0);
        let nominal_cells = arb_adversarial_cell(dict_len);
        let columns: Vec<Vec<perfxplain::mlcore::AttrValue>> = vec![
            (0..rows).map(|_| numeric_cells.generate(&mut rng)).collect(),
            (0..rows).map(|_| nominal_cells.generate(&mut rng)).collect(),
            vec![perfxplain::mlcore::AttrValue::Missing; rows],
        ];
        let store = ColumnStore::from_columns(attributes, columns);

        let mut writer = ByteWriter::new();
        store.encode_binary(&mut writer);
        let mut reader = ByteReader::new(writer.as_bytes());
        let decoded = ColumnStore::decode_binary(&mut reader).unwrap();
        prop_assert!(reader.is_exhausted());

        prop_assert_eq!(decoded.num_rows(), store.num_rows());
        prop_assert_eq!(decoded.num_columns(), store.num_columns());
        prop_assert_eq!(decoded.attributes(), store.attributes());
        for col in 0..store.num_columns() {
            for row in 0..store.num_rows() {
                let (want, got) = (store.value(row, col), decoded.value(row, col));
                prop_assert!(
                    cells_bit_equal(&want, &got),
                    "cell ({}, {}) decoded as {:?}, expected {:?}",
                    row, col, got, want
                );
            }
        }
    }
}
