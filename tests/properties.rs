//! Property-based tests (proptest) on the core invariants of the data model
//! and the query language.

use perfxplain::pxql::{parse_predicate, Atom, Op, Predicate, Value};
use perfxplain::{
    compute_pair_features, BoundQuery, ExecutionLog, ExecutionRecord, ExplainConfig,
    FeatureCatalog, FeatureDef, PairExample, PairLabel,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_record(id: String) -> impl Strategy<Value = ExecutionRecord> {
    (
        -1.0e9..1.0e9f64,
        0.0..1.0e12f64,
        prop_oneof![Just("simple-filter.pig"), Just("simple-groupby.pig")],
        1.0..4000.0f64,
    )
        .prop_map(move |(metric, inputsize, script, duration)| {
            ExecutionRecord::job(id.clone())
                .with_feature("somemetric", metric)
                .with_feature("inputsize", inputsize)
                .with_feature("pigscript", script)
                .with_feature("duration", duration)
        })
}

fn catalog() -> FeatureCatalog {
    FeatureCatalog::from_defs(vec![
        FeatureDef::numeric("somemetric"),
        FeatureDef::numeric("inputsize"),
        FeatureDef::nominal("pigscript"),
        FeatureDef::numeric("duration"),
    ])
}

// ---------------------------------------------------------------------------
// Pair-feature construction invariants (Table 1)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn pair_features_satisfy_table1_invariants(
        left in arb_record("left".to_string()),
        right in arb_record("right".to_string()),
    ) {
        let catalog = catalog();
        let features = compute_pair_features(&catalog, &left, &right, 0.10);
        for def in catalog.defs() {
            let is_same = features.get(&format!("{}_isSame", def.name)).unwrap();
            let compare = features.get(&format!("{}_compare", def.name)).unwrap();
            let diff = features.get(&format!("{}_diff", def.name)).unwrap();
            let base = features.get(&def.name).unwrap();

            // isSame = T  ⇒  the base feature carries the shared value and
            //               the diff feature is missing.
            if *is_same == Value::Bool(true) {
                prop_assert!(!base.is_null());
                prop_assert!(diff.is_null());
                // A numeric pair that is exactly equal is also SIM.
                if let Value::Str(c) = compare {
                    prop_assert_eq!(c.as_str(), "SIM");
                }
            }
            // isSame = F  ⇒  no base value is copied.
            if *is_same == Value::Bool(false) {
                prop_assert!(base.is_null());
            }
            // compare is only ever LT / SIM / GT, and only for numeric
            // features.
            if let Value::Str(c) = compare {
                prop_assert!(["LT", "SIM", "GT"].contains(&c.as_str()));
                prop_assert_eq!(def.kind, perfxplain::FeatureKind::Numeric);
            }
            // diff is only defined for nominal features and always carries a
            // pair of values.
            if !diff.is_null() {
                prop_assert_eq!(def.kind, perfxplain::FeatureKind::Nominal);
                prop_assert!(matches!(diff, Value::Pair(_, _)));
            }
        }
    }

    #[test]
    fn pair_features_are_symmetric_under_swap(
        left in arb_record("left".to_string()),
        right in arb_record("right".to_string()),
    ) {
        let catalog = catalog();
        let forward = compute_pair_features(&catalog, &left, &right, 0.10);
        let backward = compute_pair_features(&catalog, &right, &left, 0.10);
        for def in catalog.defs() {
            // isSame is symmetric.
            prop_assert_eq!(
                forward.get(&format!("{}_isSame", def.name)),
                backward.get(&format!("{}_isSame", def.name))
            );
            // compare flips LT <-> GT and keeps SIM.
            let f = forward.get(&format!("{}_compare", def.name)).unwrap();
            let b = backward.get(&format!("{}_compare", def.name)).unwrap();
            match (f, b) {
                (Value::Str(x), Value::Str(y)) => {
                    let flipped = match x.as_str() {
                        "LT" => "GT",
                        "GT" => "LT",
                        other => other,
                    };
                    prop_assert_eq!(flipped, y.as_str());
                }
                (Value::Null, Value::Null) => {}
                other => prop_assert!(false, "asymmetric compare: {:?}", other),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PXQL invariants
// ---------------------------------------------------------------------------

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        // Feature names never collide with PXQL keywords thanks to the
        // prefix.
        "f_[a-z_]{0,10}",
        prop_oneof![
            Just(Op::Eq),
            Just(Op::Ne),
            Just(Op::Lt),
            Just(Op::Le),
            Just(Op::Gt),
            Just(Op::Ge)
        ],
        prop_oneof![
            (-1.0e6..1.0e6f64).prop_map(Value::Num),
            any::<bool>().prop_map(Value::Bool),
            "[A-Za-z][A-Za-z0-9_.-]{0,8}".prop_map(Value::Str),
        ],
    )
        .prop_map(|(feature, op, constant)| Atom { feature, op, constant })
}

proptest! {
    #[test]
    fn predicates_round_trip_through_their_display_form(
        atoms in proptest::collection::vec(arb_atom(), 1..5)
    ) {
        let predicate = Predicate::from_atoms(atoms);
        let text = predicate.to_string();
        let reparsed = parse_predicate(&text).expect("rendered predicates parse");
        prop_assert_eq!(reparsed.width(), predicate.width());
        // Evaluation agrees on the features the predicate mentions (built
        // from the predicate's own constants, so equality atoms hold).
        let mut features = std::collections::BTreeMap::new();
        for atom in predicate.atoms() {
            features.insert(atom.feature.clone(), atom.constant.clone());
        }
        prop_assert_eq!(reparsed.eval(&features), predicate.eval(&features));
    }

    #[test]
    fn atoms_on_missing_features_never_hold(atom in arb_atom()) {
        let empty: std::collections::BTreeMap<String, Value> = std::collections::BTreeMap::new();
        prop_assert!(!atom.eval(&empty));
    }
}

// ---------------------------------------------------------------------------
// Classification / metric invariants over small random logs
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn classification_is_consistent_with_metric_bounds(seed in 0u64..1000) {
        // Build a small random-ish log deterministically from the seed.
        let mut log = ExecutionLog::new();
        for i in 0..14u64 {
            let x = (seed.wrapping_mul(31).wrapping_add(i * 7)) % 5;
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", (1 + x) as f64 * 1.0e9)
                    .with_feature("blocksize", if i % 2 == 0 { 1024.0 } else { 64.0 })
                    .with_feature("duration", 100.0 + (x as f64) * 120.0 + (i % 3) as f64),
            );
        }
        log.rebuild_catalogs();

        let query = perfxplain::pxql::parse_query(
            "OBSERVED duration_compare = SIM\nEXPECTED duration_compare = GT",
        )
        .unwrap();
        let bound = BoundQuery::new(query, "job_0", "job_1");
        let config = ExplainConfig::default().with_sample_size(200);

        // Every related pair is classified consistently with its own
        // features, and metric estimates stay within [0, 1].
        let catalog = log.job_catalog().clone();
        let jobs: Vec<&ExecutionRecord> = log.jobs().collect();
        let mut observed = 0usize;
        let mut expected = 0usize;
        for a in &jobs {
            for b in &jobs {
                if a.id == b.id {
                    continue;
                }
                let pair = PairExample::build(&catalog, a, b, config.sim_threshold);
                match bound.classify(&pair) {
                    PairLabel::Observed => observed += 1,
                    PairLabel::Expected => expected += 1,
                    PairLabel::Unrelated => {}
                }
            }
        }
        if observed > 0 && expected > 0 {
            let set = perfxplain::prepare_training_set(&log, &bound, &config).unwrap();
            prop_assert_eq!(set.num_observed() + set.num_expected(), set.len());
            let quality = perfxplain::assess(&set, &perfxplain::Explanation::default());
            for estimate in [quality.precision, quality.generality, quality.relevance] {
                if let Some(v) = estimate.value {
                    prop_assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }
}
