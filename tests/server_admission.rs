//! Admission-control integration tests over real TCP connections.
//!
//! Every test spawns the network front-end ([`perfxplain::server::spawn`])
//! on a loopback port with deliberately tight [`SchedulerConfig`] limits and
//! drives it with raw protocol clients: queue-full shedding, per-session
//! fairness under a hog connection, deadline expiry both mid-queue and
//! mid-execution, and malformed-frame handling.  The server must answer
//! every frame with a typed response — none of these scenarios may panic or
//! kill a connection that behaved.

use perfxplain::server::{
    spawn, Client, QueryCost, SchedulerConfig, ServerConfig, ServerHandle, WireRequest,
};
use perfxplain::{ExecutionLog, ExecutionRecord, QueryRequest, XplainService};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The canonical query over [`synthetic_log`] pairs: job_2 reads far more
/// input than job_0 yet takes about as long.
const QUERY: &str = "DESPITE inputsize_compare = GT\n\
                     OBSERVED duration_compare = SIM\n\
                     EXPECTED duration_compare = GT";

/// A log shaped like the paper's workload: even-indexed jobs are big-block
/// plateaued runs (similar durations at very different input sizes), so the
/// candidate space is rich in related pairs and training has real work.
fn synthetic_log(n: usize) -> ExecutionLog {
    let mut log = ExecutionLog::new();
    for i in 0..n {
        let big_blocks = i % 2 == 0;
        let input = [1.0e9, 4.0e9, 32.0e9][i % 3];
        let duration = if big_blocks {
            600.0 + (i % 13) as f64
        } else {
            input / 5.0e7 + (i % 7) as f64
        };
        log.push(
            ExecutionRecord::job(format!("job_{i}"))
                .with_feature("inputsize", input)
                .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                .with_feature("numinstances", [2.0, 8.0, 16.0][(i / 2) % 3])
                .with_feature("iosortfactor", 10.0 + (i % 3) as f64)
                .with_feature("pigscript", ["a.pig", "b.pig"][i % 2])
                .with_feature("duration", duration),
        );
    }
    log.rebuild_catalogs();
    log
}

/// A valid request for the pair of interest; `sample_size` scales how much
/// training work (and therefore wall time and admission cost) it carries.
fn request(id: u64, sample_size: u64) -> WireRequest {
    WireRequest {
        id: Some(id),
        query: Some(QUERY.to_string()),
        left: Some("job_2".to_string()),
        right: Some("job_0".to_string()),
        sample_size: Some(sample_size),
        ..WireRequest::default()
    }
}

/// The admission cost of [`request`] at `sample_size`, from the same
/// estimator the server charges with.
fn cost_of(service: &XplainService, sample_size: usize) -> QueryCost {
    let probe = QueryRequest::text(QUERY)
        .with_pair("job_2", "job_0")
        .with_config(service.config().clone().with_sample_size(sample_size));
    QueryCost::from(&service.estimate_cost(&probe).expect("estimable"))
}

/// Spawns a server over a fresh `n`-record log.
fn serve(n: usize, scheduler: SchedulerConfig) -> (ServerHandle, Arc<XplainService>) {
    let service = Arc::new(XplainService::new(synthetic_log(n)));
    let config = ServerConfig {
        scheduler,
        workers: 2,
        default_timeout: Some(Duration::from_secs(60)),
        ..ServerConfig::default()
    };
    let handle = spawn(Arc::clone(&service), config).expect("server binds");
    (handle, service)
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string()).expect("client connects")
}

/// A big-sample request is slow enough (hundreds of ms of enumeration and
/// training on this log) to deterministically hold the budget while other
/// connections arrive.
const SLOW_SAMPLE: u64 = 20_000;
const FAST_SAMPLE: u64 = 50;

#[test]
fn queue_full_sheds_with_typed_rejections() {
    // Budget fits exactly one slow request and the queue holds one more;
    // everything beyond that must shed with 429 shed_queue_full.
    let service = XplainService::new(synthetic_log(1200));
    let slow_cost = cost_of(&service, SLOW_SAMPLE as usize);
    drop(service);
    let (handle, _service) = serve(
        1200,
        SchedulerConfig {
            budget: slow_cost,
            queue_capacity: 1,
            max_inflight_per_session: 4,
            max_pending_per_session: 16,
        },
    );

    // Hold the budget with a slow request on its own connection.
    let mut holder = connect(&handle);
    holder.send(&request(1, SLOW_SAMPLE)).expect("send");
    std::thread::sleep(Duration::from_millis(100));

    // Flood from distinct connections: one queues, the rest shed.
    let mut shed = 0;
    let mut queued_or_ok = 0;
    let mut floods: Vec<Client> = (0..4).map(|_| connect(&handle)).collect();
    for (i, client) in floods.iter_mut().enumerate() {
        client
            .send(&request(10 + i as u64, SLOW_SAMPLE))
            .expect("send");
    }
    for client in &mut floods {
        let response = client.recv().expect("response");
        if response.is_shed() {
            assert_eq!(response.error.as_deref(), Some("shed_queue_full"));
            shed += 1;
        } else {
            queued_or_ok += 1;
        }
    }
    assert!(
        shed >= 3,
        "expected at least 3 of 4 flood requests shed, got {shed} (answered {queued_or_ok})"
    );
    let held = holder.recv().expect("holder answered");
    assert!(
        held.is_ok(),
        "the admitted request still succeeds: {held:?}"
    );
}

#[test]
fn oversized_cost_requests_are_rejected_outright() {
    let service = XplainService::new(synthetic_log(600));
    let normal_cost = cost_of(&service, FAST_SAMPLE as usize);
    let huge_cost = cost_of(&service, 1_000_000);
    assert!(huge_cost > normal_cost);
    drop(service);
    // Budget admits normal requests but can never admit the huge one.
    let (handle, _service) = serve(
        600,
        SchedulerConfig {
            budget: normal_cost + normal_cost,
            ..SchedulerConfig::default()
        },
    );
    let mut client = connect(&handle);

    let shed = client.call(&request(1, 1_000_000)).expect("response");
    assert_eq!(shed.code, 429);
    assert_eq!(shed.error.as_deref(), Some("cost_exceeds_budget"));

    // The same connection still gets normal requests answered.
    let ok = client.call(&request(2, FAST_SAMPLE)).expect("response");
    assert!(ok.is_ok(), "normal request after a shed: {ok:?}");
    assert!(ok.cost_units.unwrap_or(0) > 0);
}

#[test]
fn hog_connection_cannot_starve_other_sessions() {
    // The hog pipelines a backlog of slow requests but may only run one at
    // a time; the victim's single fast request must pass the backlog.
    let (handle, _service) = serve(
        1200,
        SchedulerConfig {
            budget: QueryCost(u64::MAX / 2),
            queue_capacity: 64,
            max_inflight_per_session: 1,
            max_pending_per_session: 16,
        },
    );
    let mut hog = connect(&handle);
    const HOG_BACKLOG: u64 = 4;
    for i in 0..HOG_BACKLOG {
        hog.send(&request(i, SLOW_SAMPLE)).expect("send");
    }
    std::thread::sleep(Duration::from_millis(100));

    let mut victim = connect(&handle);
    let response = victim.call(&request(100, FAST_SAMPLE)).expect("response");
    assert!(response.is_ok(), "victim starved: {response:?}");
    // The victim finished while the hog's serialized backlog was still
    // draining — the hog cannot have been answered in full yet.
    let answered_now = handle.stats().answered;
    assert!(
        answered_now < 1 + HOG_BACKLOG,
        "hog finished its whole backlog ({answered_now} answered) before the victim"
    );

    for _ in 0..HOG_BACKLOG {
        let response = hog.recv().expect("hog response");
        assert!(response.is_ok(), "hog request failed: {response:?}");
    }
}

#[test]
fn deadlines_expire_mid_queue_with_a_typed_timeout() {
    // Budget fits one slow request; a queued request with a short deadline
    // must be shed by the periodic sweep, not left to rot.
    let service = XplainService::new(synthetic_log(1200));
    let slow_cost = cost_of(&service, SLOW_SAMPLE as usize);
    drop(service);
    let (handle, _service) = serve(
        1200,
        SchedulerConfig {
            budget: slow_cost,
            queue_capacity: 8,
            ..SchedulerConfig::default()
        },
    );
    let mut holder = connect(&handle);
    holder.send(&request(1, SLOW_SAMPLE)).expect("send");
    std::thread::sleep(Duration::from_millis(100));

    let mut waiter = connect(&handle);
    let mut doomed = request(2, SLOW_SAMPLE);
    doomed.timeout_ms = Some(30);
    let started = Instant::now();
    let response = waiter.call(&doomed).expect("response");
    assert_eq!(
        response.code, 408,
        "expected a queued-deadline expiry: {response:?}"
    );
    assert_eq!(response.error.as_deref(), Some("deadline"));
    assert!(
        response.message.as_deref().unwrap_or("").contains("queued"),
        "expiry should name the queue: {response:?}"
    );
    // The expiry came from the sweep while the budget was still held — long
    // before the slow holder finished.
    assert!(started.elapsed() < Duration::from_secs(5));
    assert!(holder.recv().expect("holder answered").is_ok());
    assert!(handle.stats().expired >= 1);
}

#[test]
fn deadlines_expire_mid_execution_through_the_cancel_token() {
    // Plenty of budget: the request is admitted and starts running, then
    // the enumeration's cancellation checks trip its 1 ms deadline.
    let (handle, _service) = serve(1200, SchedulerConfig::default());
    let mut client = connect(&handle);
    let mut doomed = request(1, SLOW_SAMPLE);
    doomed.timeout_ms = Some(1);
    let response = client.call(&doomed).expect("response");
    assert_eq!(
        response.code, 408,
        "expected an in-flight expiry: {response:?}"
    );
    assert_eq!(response.error.as_deref(), Some("deadline"));
    assert!(
        !response.message.as_deref().unwrap_or("").contains("queued"),
        "deadline tripped in-flight, not in the queue: {response:?}"
    );

    // The connection survives and a later, patient request succeeds.
    let ok = client.call(&request(2, FAST_SAMPLE)).expect("response");
    assert!(ok.is_ok(), "{ok:?}");
}

#[test]
fn malformed_frames_get_typed_errors_without_killing_the_connection() {
    let (handle, _service) = serve(200, SchedulerConfig::default());
    let mut client = connect(&handle);

    client.send_raw("this is not json\n").expect("send");
    let response = client.recv().expect("response");
    assert_eq!(response.code, 400);
    assert_eq!(response.error.as_deref(), Some("bad_frame"));

    client.send_raw("{\"id\": 7}\n").expect("send");
    let response = client.recv().expect("response");
    assert_eq!(response.code, 400);
    assert_eq!(response.error.as_deref(), Some("bad_frame"));
    assert_eq!(response.id, Some(7), "the id still echoes when parseable");

    // Blank lines are ignored, not answered.
    client.send_raw("\n\n").expect("send");

    // Unknown executions and bad PXQL are typed, not fatal.
    let mut unknown = request(8, FAST_SAMPLE);
    unknown.left = Some("no_such_job".to_string());
    let response = client.call(&unknown).expect("response");
    assert_eq!(response.code, 404);
    assert_eq!(response.error.as_deref(), Some("unknown_execution"));

    let mut bad_query = request(9, FAST_SAMPLE);
    bad_query.query = Some("OBSERVE duration ~~~".to_string());
    let response = client.call(&bad_query).expect("response");
    assert_eq!(response.code, 400);
    assert_eq!(response.error.as_deref(), Some("pxql"));

    // After all that abuse the connection still answers real queries.
    let ok = client.call(&request(10, FAST_SAMPLE)).expect("response");
    assert!(ok.is_ok(), "{ok:?}");
    assert!(handle.stats().requests >= 5);
}

#[test]
fn status_probes_answer_immediately_with_counters() {
    let budget = QueryCost(4096);
    let (handle, service) = serve(
        600,
        SchedulerConfig {
            budget,
            ..SchedulerConfig::default()
        },
    );
    let mut client = connect(&handle);

    // A fresh server: zero counters, empty queue, full budget free.
    let probe = WireRequest {
        id: Some(1),
        target: Some("status".to_string()),
        ..WireRequest::default()
    };
    let status = client.call(&probe).expect("status answered");
    assert!(status.is_ok(), "{status:?}");
    assert_eq!(status.id, Some(1));
    assert_eq!(status.generation, Some(service.generation()));
    assert!(status.uptime_ms.is_some());
    assert_eq!(status.admitted, Some(0));
    assert_eq!(status.shed, Some(0));
    assert_eq!(status.expired, Some(0));
    assert_eq!(status.cancelled, Some(0));
    assert_eq!(status.queue_depth, Some(0));
    assert_eq!(status.budget_in_use, Some(0));
    assert_eq!(status.budget_total, Some(budget.units()));
    // A probe is not a query: nothing was admitted or answered for it.
    assert_eq!(handle.stats().admitted, 0);

    // After a real query the admitted counter moves.
    let ok = client.call(&request(2, FAST_SAMPLE)).expect("response");
    assert!(ok.is_ok(), "{ok:?}");
    let status = client.call(&probe).expect("status answered");
    assert_eq!(status.admitted, Some(1));

    // Unknown targets are typed protocol errors, not dead connections.
    let bogus = WireRequest {
        id: Some(3),
        target: Some("metrics".to_string()),
        ..WireRequest::default()
    };
    let response = client.call(&bogus).expect("response");
    assert_eq!(response.code, 400);
    assert_eq!(response.error.as_deref(), Some("bad_frame"));
    let ok = client.call(&request(4, FAST_SAMPLE)).expect("response");
    assert!(ok.is_ok(), "{ok:?}");
}

#[test]
fn appends_over_the_wire_refresh_views_by_delta() {
    let (handle, service) = serve(600, SchedulerConfig::default());
    let mut client = connect(&handle);
    let admitted_units = cost_of(&service, FAST_SAMPLE as usize).units();

    // Warm the view with a query; its charge is refined down to the
    // measured related-pair work once the view is built.
    let ok = client.call(&request(1, FAST_SAMPLE)).expect("response");
    assert!(ok.is_ok(), "{ok:?}");
    let related = ok.related_pairs.expect("measured work reported");
    assert!(related > 0);
    let charged = ok.cost_units.expect("refined charge reported");
    assert!(charged <= admitted_units);

    let probe = WireRequest {
        id: Some(2),
        target: Some("status".to_string()),
        ..WireRequest::default()
    };
    let status = client.call(&probe).expect("status");
    assert_eq!(status.base_rows, Some(600));
    assert_eq!(status.tail_rows, Some(0));
    assert_eq!(status.full_rebuilds, Some(1));
    assert_eq!(status.delta_refreshes, Some(0));
    // The estimate/actual difference came back to the budget mid-flight.
    assert_eq!(status.refunded_units, Some(admitted_units - charged));

    // Append a batch over the wire: acknowledged inline with the new
    // generation, no view work yet.
    let fresh: Vec<ExecutionRecord> = (600..606)
        .map(|i| {
            ExecutionRecord::job(format!("job_{i}"))
                .with_feature("inputsize", 4.0e9)
                .with_feature("blocksize", 1024.0)
                .with_feature("numinstances", 8.0)
                .with_feature("iosortfactor", 10.0)
                .with_feature("pigscript", "a.pig")
                .with_feature("duration", 600.0 + (i % 13) as f64)
        })
        .collect();
    let generation_before = service.generation();
    let ack = client.append(&fresh).expect("append acknowledged");
    assert!(ack.is_ok(), "{ack:?}");
    assert_eq!(ack.appended, Some(6));
    assert!(ack.generation.expect("generation echoes") > generation_before);

    // The next query pays an O(tail) delta refresh, not a full rebuild,
    // and can explain a pair involving an appended record.
    let mut over_tail = request(3, FAST_SAMPLE);
    over_tail.left = Some("job_602".to_string());
    let ok = client.call(&over_tail).expect("response");
    assert!(ok.is_ok(), "query over an appended record: {ok:?}");
    let status = client.call(&probe).expect("status");
    assert_eq!(status.base_rows, Some(600));
    assert_eq!(status.tail_rows, Some(6));
    assert_eq!(status.delta_refreshes, Some(1));
    assert_eq!(status.full_rebuilds, Some(1));

    // Malformed batches are typed protocol errors, not dead connections.
    let bad = WireRequest {
        id: Some(5),
        target: Some("append".to_string()),
        records: Some("not a json array".to_string()),
        ..WireRequest::default()
    };
    let response = client.call(&bad).expect("response");
    assert_eq!(response.code, 400);
    assert_eq!(response.error.as_deref(), Some("bad_frame"));
    let missing = WireRequest {
        id: Some(6),
        target: Some("append".to_string()),
        ..WireRequest::default()
    };
    let response = client.call(&missing).expect("response");
    assert_eq!(response.code, 400);
    assert_eq!(response.error.as_deref(), Some("bad_frame"));
    let ok = client.call(&request(7, FAST_SAMPLE)).expect("response");
    assert!(ok.is_ok(), "connection survives bad appends: {ok:?}");
}

#[test]
fn networked_answers_match_the_in_process_service() {
    let (handle, service) = serve(600, SchedulerConfig::default());
    let mut wire_request = request(1, FAST_SAMPLE);
    wire_request.assess = Some(true);
    let mut client = connect(&handle);
    let over_wire = client.call(&wire_request).expect("response");
    assert!(over_wire.is_ok(), "{over_wire:?}");

    let in_process = service
        .explain(
            &QueryRequest::text(QUERY)
                .with_pair("job_2", "job_0")
                .with_config(
                    service
                        .config()
                        .clone()
                        .with_sample_size(FAST_SAMPLE as usize),
                )
                .with_assessment(),
        )
        .expect("in-process explain succeeds");
    let atoms: Vec<String> = in_process
        .explanation
        .because
        .atoms()
        .iter()
        .map(|a| a.to_string())
        .collect();
    assert_eq!(over_wire.because.as_deref(), Some(&atoms[..]));
    assert_eq!(over_wire.generation, Some(in_process.generation));
    let quality = in_process.quality.expect("assessment ran");
    assert_eq!(over_wire.precision, quality.precision.value);
}
