//! The Table-2 parameter grid and the sweep driver.
//!
//! Table 2 of the paper lists the varied parameters and their values:
//!
//! | parameter            | values                                  |
//! |-----------------------|-----------------------------------------|
//! | number of instances   | 1, 2, 4, 8, 16                          |
//! | input file size       | 1.3 GB, 2.6 GB (30 or 60 copies)        |
//! | DFS block size        | 64 MB, 256 MB, 1024 MB                  |
//! | reduce tasks factor   | 1.0, 1.5, 2.0                           |
//! | IO sort factor        | 10, 50, 100                             |
//! | Pig script            | simple-filter.pig, simple-groupby.pig   |
//!
//! A full sweep is 540 configurations; [`SweepOptions`] allows deterministic
//! sub-sampling for tests and fast benchmark runs.  Every configuration runs
//! one job on its own simulated cluster (as in the paper, where each
//! configuration is a separate EC2 cluster + job submission).

use crate::excite::{ExciteLog, ExciteSpec};
use hadoop_logs::collect_traces;
use mrsim::{Cluster, ClusterSpec, JobSpec, JobTrace, PigScript, GB, MB};
use perfxplain_core::ExecutionLog;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// The paper's base input: 30 copies of the Excite sample ≈ 1.3 GB.
pub const BYTES_PER_30_COPIES: u64 = (1.3 * GB as f64) as u64;

/// One point of the parameter grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobConfiguration {
    /// Number of cluster instances.
    pub instances: usize,
    /// Number of concatenated copies of the Excite base file (30 or 60).
    pub input_copies: usize,
    /// DFS block size in bytes.
    pub block_size: u64,
    /// Reduce tasks factor.
    pub reduce_tasks_factor: f64,
    /// `io.sort.factor`.
    pub io_sort_factor: u32,
    /// Pig script.
    pub script: PigScript,
}

impl JobConfiguration {
    /// Total input bytes of this configuration (1.3 GB per 30 copies, as in
    /// the paper).
    pub fn input_bytes(&self) -> u64 {
        (BYTES_PER_30_COPIES as f64 * self.input_copies as f64 / 30.0) as u64
    }

    /// Builds the simulator job spec, deriving record counts from the
    /// Excite data profile.
    pub fn job_spec(&self, excite: &ExciteLog) -> JobSpec {
        let avg_record_bytes = (excite.bytes as f64 / excite.records.max(1) as f64).max(1.0);
        let input_bytes = self.input_bytes();
        JobSpec {
            name: format!(
                "{}-{}copies-{}inst",
                self.script.file_name(),
                self.input_copies,
                self.instances
            ),
            script: self.script,
            input_bytes,
            input_records: (input_bytes as f64 / avg_record_bytes) as u64,
            dfs_block_size: self.block_size,
            reduce_tasks_factor: self.reduce_tasks_factor,
            io_sort_factor: self.io_sort_factor,
            submit_time: 0.0,
        }
    }
}

/// The grid of values to sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Instance counts.
    pub instances: Vec<usize>,
    /// Input sizes expressed as Excite-file copy counts.
    pub input_copies: Vec<usize>,
    /// Block sizes in bytes.
    pub block_sizes: Vec<u64>,
    /// Reduce tasks factors.
    pub reduce_tasks_factors: Vec<f64>,
    /// IO sort factors.
    pub io_sort_factors: Vec<u32>,
    /// Pig scripts.
    pub scripts: Vec<PigScript>,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec::paper_table2()
    }
}

impl GridSpec {
    /// The exact grid of Table 2.
    pub fn paper_table2() -> Self {
        GridSpec {
            instances: vec![1, 2, 4, 8, 16],
            input_copies: vec![30, 60],
            block_sizes: vec![64 * MB, 256 * MB, 1024 * MB],
            reduce_tasks_factors: vec![1.0, 1.5, 2.0],
            io_sort_factors: vec![10, 50, 100],
            scripts: vec![PigScript::SimpleFilter, PigScript::SimpleGroupBy],
        }
    }

    /// A reduced grid that keeps every dimension but fewer values per
    /// dimension; used by tests and quick benchmark runs.
    pub fn reduced() -> Self {
        GridSpec {
            instances: vec![2, 8, 16],
            input_copies: vec![30, 60],
            block_sizes: vec![64 * MB, 1024 * MB],
            reduce_tasks_factors: vec![1.0, 2.0],
            io_sort_factors: vec![10, 100],
            scripts: vec![PigScript::SimpleFilter, PigScript::SimpleGroupBy],
        }
    }

    /// Number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.instances.len()
            * self.input_copies.len()
            * self.block_sizes.len()
            * self.reduce_tasks_factors.len()
            * self.io_sort_factors.len()
            * self.scripts.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every configuration of the grid, in deterministic order.
    pub fn configurations(&self) -> Vec<JobConfiguration> {
        let mut configs = Vec::with_capacity(self.len());
        for &script in &self.scripts {
            for &instances in &self.instances {
                for &input_copies in &self.input_copies {
                    for &block_size in &self.block_sizes {
                        for &reduce_tasks_factor in &self.reduce_tasks_factors {
                            for &io_sort_factor in &self.io_sort_factors {
                                configs.push(JobConfiguration {
                                    instances,
                                    input_copies,
                                    block_size,
                                    reduce_tasks_factor,
                                    io_sort_factor,
                                    script,
                                });
                            }
                        }
                    }
                }
            }
        }
        configs
    }
}

/// Options of a sweep run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Seed for the simulated clusters (each configuration derives its own
    /// sub-seed) and for sub-sampling.
    pub seed: u64,
    /// Keep every `stride`-th configuration (1 = keep all).  Striding keeps
    /// the sample spread evenly over the grid, unlike a random subset.
    pub stride: usize,
    /// Number of worker threads (1 = run inline).
    pub parallelism: usize,
    /// The Excite data profile used to derive record counts.
    pub excite: ExciteSpec,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            seed: 0x5EEDED,
            stride: 1,
            parallelism: 4,
            excite: ExciteSpec::default(),
        }
    }
}

impl SweepOptions {
    /// Builder-style setter for the stride.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the parallelism.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }
}

/// The output of a sweep: the configurations that ran and their traces.
#[derive(Debug)]
pub struct SweepResult {
    /// Configurations in the order they were run.
    pub configurations: Vec<JobConfiguration>,
    /// One trace per configuration.
    pub traces: Vec<JobTrace>,
}

impl SweepResult {
    /// Collects the traces into a PerfXplain execution log via the Hadoop
    /// log text formats (write + parse), i.e. the full substrate path.
    pub fn execution_log(&self) -> ExecutionLog {
        collect_traces(&self.traces).expect("simulated logs always parse")
    }
}

fn run_configuration(
    config: &JobConfiguration,
    index: usize,
    options: &SweepOptions,
    excite: &ExciteLog,
) -> JobTrace {
    let spec = ClusterSpec::with_instances(config.instances);
    // Every configuration gets its own cluster and deterministic sub-seed.
    let seed = options
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index as u64);
    let mut cluster = Cluster::new(spec, seed);
    cluster.run_job(config.job_spec(excite))
}

/// Runs the sweep over `grid` with the given options.
pub fn run_sweep(grid: &GridSpec, options: &SweepOptions) -> SweepResult {
    let excite = options.excite.generate();
    let configurations: Vec<JobConfiguration> = grid
        .configurations()
        .into_iter()
        .step_by(options.stride.max(1))
        .collect();

    let traces: Vec<JobTrace> = if options.parallelism <= 1 || configurations.len() <= 1 {
        configurations
            .iter()
            .enumerate()
            .map(|(i, c)| run_configuration(c, i, options, &excite))
            .collect()
    } else {
        // Fan the configurations out over a small worker pool; results are
        // collected by index so the output order is deterministic.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Mutex<Vec<Option<JobTrace>>> = Mutex::new(vec![None; configurations.len()]);
        std::thread::scope(|scope| {
            for _ in 0..options.parallelism.min(configurations.len()) {
                let next = &next;
                let results = &results;
                let excite = &excite;
                let configurations = &configurations;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if index >= configurations.len() {
                        break;
                    }
                    let trace = run_configuration(&configurations[index], index, options, excite);
                    results.lock().expect("worker poisoned the results")[index] = Some(trace);
                });
            }
        });
        results
            .into_inner()
            .expect("worker poisoned the results")
            .into_iter()
            .map(|t| t.expect("every configuration produced a trace"))
            .collect()
    };

    SweepResult {
        configurations,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_grid_has_540_configurations() {
        let grid = GridSpec::paper_table2();
        assert_eq!(grid.len(), 540);
        assert_eq!(grid.configurations().len(), 540);
        assert!(!grid.is_empty());
    }

    #[test]
    fn configurations_cover_all_values() {
        let grid = GridSpec::paper_table2();
        let configs = grid.configurations();
        for &instances in &grid.instances {
            assert!(configs.iter().any(|c| c.instances == instances));
        }
        for &bs in &grid.block_sizes {
            assert!(configs.iter().any(|c| c.block_size == bs));
        }
        for &script in &grid.scripts {
            assert!(configs.iter().any(|c| c.script == script));
        }
    }

    #[test]
    fn input_bytes_match_the_paper() {
        let config = JobConfiguration {
            instances: 8,
            input_copies: 30,
            block_size: 64 * MB,
            reduce_tasks_factor: 1.0,
            io_sort_factor: 10,
            script: PigScript::SimpleFilter,
        };
        let gb = config.input_bytes() as f64 / GB as f64;
        assert!((gb - 1.3).abs() < 0.01);
        let double = JobConfiguration {
            input_copies: 60,
            ..config
        };
        assert_eq!(double.input_bytes(), 2 * config.input_bytes());
    }

    #[test]
    fn sweep_runs_and_produces_an_execution_log() {
        let grid = GridSpec::reduced();
        let options = SweepOptions::default().with_stride(8).with_parallelism(2);
        let result = run_sweep(&grid, &options);
        assert!(!result.traces.is_empty());
        assert_eq!(result.traces.len(), result.configurations.len());
        let log = result.execution_log();
        assert_eq!(log.jobs().count(), result.traces.len());
        assert!(log.tasks().count() > result.traces.len());
    }

    #[test]
    fn sweep_is_deterministic_and_parallelism_invariant() {
        let grid = GridSpec::reduced();
        let serial = run_sweep(
            &grid,
            &SweepOptions::default().with_stride(16).with_parallelism(1),
        );
        let parallel = run_sweep(
            &grid,
            &SweepOptions::default().with_stride(16).with_parallelism(4),
        );
        assert_eq!(serial.configurations, parallel.configurations);
        let serial_durations: Vec<f64> = serial.traces.iter().map(|t| t.duration()).collect();
        let parallel_durations: Vec<f64> = parallel.traces.iter().map(|t| t.duration()).collect();
        assert_eq!(serial_durations, parallel_durations);
    }

    #[test]
    fn stride_reduces_the_number_of_runs() {
        let grid = GridSpec::reduced();
        let all = grid.configurations().len();
        let strided = run_sweep(
            &grid,
            &SweepOptions::default().with_stride(10).with_parallelism(1),
        );
        assert_eq!(strided.traces.len(), all.div_ceil(10));
    }
}
