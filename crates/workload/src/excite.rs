//! A synthetic Excite-style search-query log.
//!
//! The paper's input file is the Excite query log sample shipped with the
//! Pig tutorial, concatenated to itself 30 or 60 times (≈1.3 GB and
//! ≈2.6 GB).  The original trace is not redistributable, so this module
//! generates a statistically similar one: tab-separated
//! `(user cookie, timestamp, query)` records where users follow a Zipfian
//! popularity distribution and a configurable fraction of query strings are
//! URLs (the records `simple-filter.pig` drops).
//!
//! The generator serves two purposes: it gives the examples something real
//! to look at, and it supplies the *data characteristics* (record size,
//! filter selectivity, distinct-user cardinality) that the simulator's cost
//! model and counters are parameterised with.

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExciteSpec {
    /// Number of query records in the *base* file (before concatenation).
    pub base_records: usize,
    /// Number of distinct users.
    pub distinct_users: usize,
    /// Zipf exponent of user popularity.
    pub user_skew: f64,
    /// Fraction of queries whose query string is a URL.
    pub url_fraction: f64,
    /// Seed for reproducible generation.
    pub seed: u64,
}

impl Default for ExciteSpec {
    fn default() -> Self {
        ExciteSpec {
            base_records: 20_000,
            distinct_users: 2_500,
            user_skew: 1.1,
            url_fraction: 0.15,
            seed: 0xE9C17E,
        }
    }
}

/// A generated query log plus its measured characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExciteLog {
    /// The tab-separated text of the base file.
    pub text: String,
    /// Number of records in the base file.
    pub records: usize,
    /// Size of the base file in bytes.
    pub bytes: usize,
    /// Number of distinct users that actually appear.
    pub distinct_users: usize,
    /// Fraction of records whose query is a URL.
    pub url_fraction: f64,
}

const QUERY_TERMS: &[&str] = &[
    "yellowstone",
    "weather",
    "maps",
    "hotel",
    "cheap",
    "flights",
    "recipe",
    "chicken",
    "football",
    "scores",
    "lyrics",
    "java",
    "tutorial",
    "movies",
    "showtimes",
    "stock",
    "quotes",
    "news",
    "election",
    "travel",
    "insurance",
    "university",
    "rankings",
    "pictures",
    "wallpaper",
    "games",
    "download",
    "music",
    "mp3",
    "history",
    "war",
    "health",
    "symptoms",
    "diet",
    "jobs",
    "salary",
    "cars",
    "used",
    "review",
    "camera",
];

const URL_HOSTS: &[&str] = &[
    "www.excite.com",
    "www.yahoo.com",
    "www.geocities.com",
    "www.altavista.com",
    "members.aol.com",
    "www.angelfire.com",
    "www.hotmail.com",
    "www.lycos.com",
];

fn zipf_rank(rng: &mut StdRng, n: usize, exponent: f64) -> usize {
    // Inverse-CDF sampling over a truncated Zipf distribution.  The
    // normalisation constant is computed once per call for simplicity; the
    // generator is not on any hot path.
    let mut total = 0.0;
    for k in 1..=n {
        total += 1.0 / (k as f64).powf(exponent);
    }
    let target: f64 = rng.random_range(0.0..total);
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(exponent);
        if acc >= target {
            return k - 1;
        }
    }
    n - 1
}

impl ExciteSpec {
    /// Generates the base query log.
    pub fn generate(&self) -> ExciteLog {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut text = String::with_capacity(self.base_records * 48);
        let mut url_records = 0usize;
        let mut seen_users = vec![false; self.distinct_users.max(1)];

        // Pre-compute user popularity ranks cheaply: rank 0 is the most
        // active user.  Sampling the full Zipf inverse CDF per record would
        // be O(records × users); instead sample once per record from a small
        // alias-free approximation: pick a rank with probability ∝ 1/rank^s
        // using rejection against the continuous envelope.
        let n_users = self.distinct_users.max(1);

        for i in 0..self.base_records {
            let user_rank = if n_users <= 64 {
                zipf_rank(&mut rng, n_users, self.user_skew)
            } else {
                // Continuous approximation of the Zipf inverse CDF.
                let u: f64 = rng.random_range(0.0f64..1.0).max(1e-12);
                let rank = (u.powf(-1.0 / (self.user_skew - 1.0).max(0.1)) - 1.0) as usize;
                rank.min(n_users - 1)
            };
            seen_users[user_rank] = true;
            // Excite anonymised cookies look like hex blobs.
            let cookie = format!(
                "{:08X}{:04X}",
                user_rank as u64 * 2_654_435_761 % 0xFFFF_FFFF,
                user_rank
            );
            let timestamp = 971_000_000 + (i as u64 * 7) % 86_400;

            let is_url = rng.random_range(0.0f64..1.0) < self.url_fraction;
            let query = if is_url {
                url_records += 1;
                let host = URL_HOSTS[rng.random_range(0..URL_HOSTS.len())];
                let page = QUERY_TERMS[rng.random_range(0..QUERY_TERMS.len())];
                format!("http://{host}/{page}.html")
            } else {
                let terms = rng.random_range(1..=4usize);
                let mut q = String::new();
                for t in 0..terms {
                    if t > 0 {
                        q.push(' ');
                    }
                    q.push_str(QUERY_TERMS[rng.random_range(0..QUERY_TERMS.len())]);
                }
                q
            };
            text.push_str(&cookie);
            text.push('\t');
            text.push_str(&timestamp.to_string());
            text.push('\t');
            text.push_str(&query);
            text.push('\n');
        }

        ExciteLog {
            bytes: text.len(),
            records: self.base_records,
            distinct_users: seen_users.iter().filter(|&&s| s).count(),
            url_fraction: if self.base_records == 0 {
                0.0
            } else {
                url_records as f64 / self.base_records as f64
            },
            text,
        }
    }
}

impl ExciteLog {
    /// Size in bytes after concatenating the base file `copies` times (the
    /// paper uses 30 and 60 copies).
    pub fn concatenated_bytes(&self, copies: usize) -> u64 {
        (self.bytes * copies) as u64
    }

    /// Records after concatenating the base file `copies` times.
    pub fn concatenated_records(&self, copies: usize) -> u64 {
        (self.records * copies) as u64
    }

    /// Fraction of records that survive `simple-filter.pig` (queries that
    /// are not URLs).
    pub fn filter_selectivity(&self) -> f64 {
        1.0 - self.url_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_records() {
        let log = ExciteSpec {
            base_records: 5_000,
            ..ExciteSpec::default()
        }
        .generate();
        assert_eq!(log.records, 5_000);
        assert_eq!(log.text.lines().count(), 5_000);
        assert!(log.bytes > 5_000 * 20);
        assert!(log.distinct_users > 100);
    }

    #[test]
    fn url_fraction_is_respected() {
        let log = ExciteSpec {
            base_records: 10_000,
            url_fraction: 0.2,
            ..ExciteSpec::default()
        }
        .generate();
        assert!(
            (log.url_fraction - 0.2).abs() < 0.02,
            "{}",
            log.url_fraction
        );
        assert!((log.filter_selectivity() - 0.8).abs() < 0.02);
        let urls = log.text.lines().filter(|l| l.contains("http://")).count();
        assert_eq!(urls as f64 / 10_000.0, log.url_fraction);
    }

    #[test]
    fn records_are_tab_separated_triples() {
        let log = ExciteSpec {
            base_records: 100,
            ..ExciteSpec::default()
        }
        .generate();
        for line in log.text.lines() {
            let fields: Vec<&str> = line.split('\t').collect();
            assert_eq!(fields.len(), 3, "bad record: {line}");
            assert!(fields[1].parse::<u64>().is_ok());
            assert!(!fields[2].is_empty());
        }
    }

    #[test]
    fn user_popularity_is_skewed() {
        let log = ExciteSpec {
            base_records: 20_000,
            distinct_users: 1_000,
            ..ExciteSpec::default()
        }
        .generate();
        // Count occurrences of the most common cookie; with Zipf(1.1) it
        // should be far above the uniform share.
        let mut counts = std::collections::HashMap::new();
        for line in log.text.lines() {
            let cookie = line.split('\t').next().unwrap();
            *counts.entry(cookie).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 20_000 / 1_000 * 5, "max user count {max} not skewed");
    }

    #[test]
    fn concatenation_matches_paper_scale() {
        // Tuned so that 30 copies land in the paper's 1.3 GB ballpark when a
        // full-size base file is used; the default test base is small, so we
        // just check proportionality here.
        let log = ExciteSpec::default().generate();
        assert_eq!(log.concatenated_bytes(30), 30 * log.bytes as u64);
        assert_eq!(log.concatenated_records(60), 60 * log.records as u64);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = ExciteSpec::default().generate();
        let b = ExciteSpec::default().generate();
        assert_eq!(a.text, b.text);
        let c = ExciteSpec {
            seed: 1,
            ..ExciteSpec::default()
        }
        .generate();
        assert_ne!(a.text, c.text);
    }
}
