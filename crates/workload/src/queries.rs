//! The two PXQL queries of the paper's evaluation (Section 6.2), bound to
//! pairs of interest found in a given execution log.
//!
//! 1. **WhyLastTaskFaster** — a task-level query: despite belonging to the
//!    same job, reading a similar amount of data and running on the same
//!    instance, task T1 finished much faster than task T2; the user expected
//!    similar durations.
//! 2. **WhySlowerDespiteSameNumInstances** — a job-level query: despite
//!    running the same Pig script on the same number of instances, job J1
//!    was much slower than job J2; the user expected similar durations.
//!
//! The binding helpers scan the log for the pair of interest with the
//! clearest instance of the phenomenon (largest runtime gap satisfying the
//! despite clause), which is exactly how the authors stumbled over the
//! "last task faster" pattern while collecting their data.

use perfxplain_core::{BoundQuery, ExecutionLog, ExecutionRecord, DEFAULT_SIM_THRESHOLD};
use pxql::parse_query;

/// A named, bound PXQL query ready to be explained.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBinding {
    /// Short name used in reports (e.g. `WhyLastTaskFaster`).
    pub name: &'static str,
    /// The bound query.
    pub bound: BoundQuery,
}

fn similar(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    scale == 0.0 || (a - b).abs() <= DEFAULT_SIM_THRESHOLD * scale
}

fn num(record: &ExecutionRecord, feature: &str) -> Option<f64> {
    record.feature(feature).as_num()
}

fn text(record: &ExecutionRecord, feature: &str) -> Option<String> {
    record.feature(feature).as_str().map(str::to_string)
}

/// Builds the *WhyLastTaskFaster* query over the tasks of `log`.
///
/// ```text
/// FOR T1, T2
/// DESPITE jobid_isSame = T ∧ inputsize_compare = SIM ∧ hostname_isSame = T
/// OBSERVED duration_compare = LT
/// EXPECTED duration_compare = SIM
/// ```
///
/// Returns `None` when no pair of tasks in the log exhibits the pattern.
pub fn why_last_task_faster(log: &ExecutionLog) -> Option<QueryBinding> {
    let query = parse_query(
        "FOR T1, T2 WHERE T1.TaskID = ? AND T2.TaskID = ?\n\
         DESPITE jobid_isSame = T AND inputsize_compare = SIM AND hostname_isSame = T\n\
         OBSERVED duration_compare = LT\n\
         EXPECTED duration_compare = SIM",
    )
    .expect("well-formed query");

    // Find, within one job and one host, the pair with the largest runtime
    // gap between tasks that read a similar amount of data.
    let mut best: Option<(f64, String, String)> = None;
    for job in log.jobs() {
        // The paper's scenario is about *map* tasks of the same job: the
        // final map task of a wave runs alone and finishes faster.  Restrict
        // the pair-of-interest search accordingly (the PXQL despite clause
        // itself stays exactly as in the paper).
        let tasks: Vec<&ExecutionRecord> = log
            .tasks_of_job(&job.id)
            .filter(|t| t.feature("tasktype").as_str() == Some("MAP"))
            .collect();
        for fast in &tasks {
            for slow in &tasks {
                if fast.id == slow.id {
                    continue;
                }
                let (Some(host_a), Some(host_b)) = (text(fast, "hostname"), text(slow, "hostname"))
                else {
                    continue;
                };
                if host_a != host_b {
                    continue;
                }
                let (Some(in_a), Some(in_b)) = (num(fast, "inputsize"), num(slow, "inputsize"))
                else {
                    continue;
                };
                if !similar(in_a, in_b) {
                    continue;
                }
                let (Some(d_fast), Some(d_slow)) = (fast.duration(), slow.duration()) else {
                    continue;
                };
                // Observed: the first task is much faster (duration LT).
                if similar(d_fast, d_slow) || d_fast >= d_slow {
                    continue;
                }
                let gap = d_slow / d_fast.max(1e-9);
                if best.as_ref().map(|(g, _, _)| gap > *g).unwrap_or(true) {
                    best = Some((gap, fast.id.clone(), slow.id.clone()));
                }
            }
        }
    }
    best.map(|(_, fast, slow)| QueryBinding {
        name: "WhyLastTaskFaster",
        bound: BoundQuery::new(query, fast, slow),
    })
}

/// Builds the *WhySlowerDespiteSameNumInstances* query over the jobs of
/// `log`.
///
/// ```text
/// FOR J1, J2
/// DESPITE numinstances_isSame = T ∧ pigscript_isSame = T
/// OBSERVED duration_compare = GT
/// EXPECTED duration_compare = SIM
/// ```
pub fn why_slower_despite_same_num_instances(log: &ExecutionLog) -> Option<QueryBinding> {
    let query = parse_query(
        "FOR J1, J2 WHERE J1.JobID = ? AND J2.JobID = ?\n\
         DESPITE numinstances_isSame = T AND pigscript_isSame = T\n\
         OBSERVED duration_compare = GT\n\
         EXPECTED duration_compare = SIM",
    )
    .expect("well-formed query");

    let jobs: Vec<&ExecutionRecord> = log.jobs().collect();
    let mut best: Option<(f64, String, String)> = None;
    for slow in &jobs {
        for fast in &jobs {
            if slow.id == fast.id {
                continue;
            }
            let (Some(inst_a), Some(inst_b)) =
                (num(slow, "numinstances"), num(fast, "numinstances"))
            else {
                continue;
            };
            if inst_a != inst_b {
                continue;
            }
            let (Some(script_a), Some(script_b)) =
                (text(slow, "pigscript"), text(fast, "pigscript"))
            else {
                continue;
            };
            if script_a != script_b {
                continue;
            }
            let (Some(d_slow), Some(d_fast)) = (slow.duration(), fast.duration()) else {
                continue;
            };
            if similar(d_slow, d_fast) || d_slow <= d_fast {
                continue;
            }
            let gap = d_slow / d_fast.max(1e-9);
            if best.as_ref().map(|(g, _, _)| gap > *g).unwrap_or(true) {
                best = Some((gap, slow.id.clone(), fast.id.clone()));
            }
        }
    }
    best.map(|(_, slow, fast)| QueryBinding {
        name: "WhySlowerDespiteSameNumInstances",
        bound: BoundQuery::new(query, slow, fast),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{build_execution_log, LogPreset};

    fn tiny_log() -> ExecutionLog {
        build_execution_log(LogPreset::Tiny, 42)
    }

    #[test]
    fn task_query_finds_a_valid_pair_of_interest() {
        let log = tiny_log();
        let binding = why_last_task_faster(&log).expect("the last-task pattern exists");
        assert_eq!(binding.name, "WhyLastTaskFaster");
        // The pair of interest satisfies the query's semantic preconditions.
        let pair = binding
            .bound
            .verify_preconditions(&log, DEFAULT_SIM_THRESHOLD)
            .expect("preconditions hold");
        assert_ne!(pair.left_id, pair.right_id);
    }

    #[test]
    fn job_query_finds_a_valid_pair_of_interest() {
        let log = tiny_log();
        let binding = why_slower_despite_same_num_instances(&log).expect("a slower job exists");
        assert_eq!(binding.name, "WhySlowerDespiteSameNumInstances");
        let pair = binding
            .bound
            .verify_preconditions(&log, DEFAULT_SIM_THRESHOLD)
            .expect("preconditions hold");
        // Both ends are jobs with the same instance count and script.
        let left = log.get(&pair.left_id).unwrap();
        let right = log.get(&pair.right_id).unwrap();
        assert_eq!(left.feature("numinstances"), right.feature("numinstances"));
        assert_eq!(left.feature("pigscript"), right.feature("pigscript"));
        assert!(left.duration().unwrap() > right.duration().unwrap());
    }

    #[test]
    fn empty_log_yields_no_binding() {
        let log = ExecutionLog::new();
        assert!(why_last_task_faster(&log).is_none());
        assert!(why_slower_despite_same_num_instances(&log).is_none());
    }
}
