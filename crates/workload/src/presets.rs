//! Ready-made execution logs of different sizes.
//!
//! Tests, examples and benchmarks all need "a log of past executions" to
//! work with; these presets package the sweep driver into three sizes:
//!
//! * [`LogPreset::Tiny`] — a handful of jobs, for unit/integration tests;
//! * [`LogPreset::Small`] — the reduced grid, the default for examples and
//!   the benchmark harness (comparable coverage to the paper's grid, fewer
//!   redundant points);
//! * [`LogPreset::PaperGrid`] — the full 540-configuration grid of Table 2.

use crate::grid::{run_sweep, GridSpec, SweepOptions, SweepResult};
use perfxplain_core::ExecutionLog;
use serde::{Deserialize, Serialize};

/// Which log to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogPreset {
    /// ~24 jobs; seconds to build even in debug builds.
    Tiny,
    /// ~96 jobs covering every grid dimension.
    Small,
    /// The full Table-2 grid (540 jobs).
    PaperGrid,
}

impl LogPreset {
    /// The grid and stride behind the preset.
    pub fn plan(&self) -> (GridSpec, usize) {
        match self {
            LogPreset::Tiny => (GridSpec::reduced(), 4),
            LogPreset::Small => (GridSpec::reduced(), 1),
            LogPreset::PaperGrid => (GridSpec::paper_table2(), 1),
        }
    }

    /// Number of jobs the preset produces.
    pub fn num_jobs(&self) -> usize {
        let (grid, stride) = self.plan();
        grid.len().div_ceil(stride)
    }
}

/// Runs the sweep behind a preset and returns the raw result (traces +
/// configurations), for callers that need the simulator-level detail.
pub fn run_preset(preset: LogPreset, seed: u64) -> SweepResult {
    let (grid, stride) = preset.plan();
    let options = SweepOptions::default()
        .with_seed(seed)
        .with_stride(stride)
        .with_parallelism(num_workers());
    run_sweep(&grid, &options)
}

/// Builds the execution log of a preset (sweep → Hadoop logs → collector).
pub fn build_execution_log(preset: LogPreset, seed: u64) -> ExecutionLog {
    run_preset(preset, seed).execution_log()
}

fn num_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes_are_ordered() {
        assert!(LogPreset::Tiny.num_jobs() < LogPreset::Small.num_jobs());
        assert!(LogPreset::Small.num_jobs() < LogPreset::PaperGrid.num_jobs());
        assert_eq!(LogPreset::PaperGrid.num_jobs(), 540);
    }

    #[test]
    fn tiny_preset_builds_a_usable_log() {
        let log = build_execution_log(LogPreset::Tiny, 7);
        assert_eq!(log.jobs().count(), LogPreset::Tiny.num_jobs());
        assert!(log.tasks().count() > log.jobs().count());
        assert!(log.job_catalog().get("blocksize").is_some());
        assert!(log.task_catalog().get("hostname").is_some());
    }

    #[test]
    fn different_seeds_give_different_runtimes() {
        let a = build_execution_log(LogPreset::Tiny, 1);
        let b = build_execution_log(LogPreset::Tiny, 2);
        let d =
            |log: &ExecutionLog| -> f64 { log.jobs().filter_map(|j| j.duration()).sum::<f64>() };
        assert_ne!(d(&a), d(&b));
    }
}
