//! Workloads: the synthetic Excite query log, the Table-2 parameter grid,
//! the sweep driver that produces PerfXplain execution logs, and the two
//! PXQL queries the paper evaluates.
//!
//! The paper's evaluation runs two Pig scripts over the Excite search-query
//! trace from the Pig tutorial (concatenated 30 or 60 times) on EC2 clusters
//! of 1–16 instances, varying the parameters of Table 2, and collects the
//! resulting Hadoop and Ganglia logs.  This crate reproduces that data
//! collection on top of the simulator:
//!
//! * [`excite`] generates an Excite-like query log (Zipfian users, a mix of
//!   term queries and URL queries) and measures the data characteristics
//!   (bytes, records, selectivity of the filter script, group cardinality)
//!   that parameterise the simulator;
//! * [`grid`] enumerates the Table-2 parameter grid and runs the sweep —
//!   optionally in parallel — producing one simulated job per
//!   configuration;
//! * [`presets`] packages ready-made log sizes (tiny/small/full grid) used
//!   by tests, examples and the benchmark harness;
//! * [`queries`] builds the two PXQL queries of Section 6.2
//!   (*WhyLastTaskFaster*, *WhySlowerDespiteSameNumInstances*) and binds
//!   them to suitable pairs of interest found in a log.

pub mod excite;
pub mod grid;
pub mod presets;
pub mod queries;

pub use excite::{ExciteLog, ExciteSpec};
pub use grid::{GridSpec, JobConfiguration, SweepOptions, SweepResult};
pub use presets::{build_execution_log, LogPreset};
pub use queries::{why_last_task_faster, why_slower_despite_same_num_instances, QueryBinding};
