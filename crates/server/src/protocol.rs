//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, both UTF-8 JSON objects.
//! See the crate docs ([`crate`]) for the full field reference.  The wire
//! structs are deliberately flat — every field optional on the way in,
//! `null`-tolerant on the way out — so the vendored serde shim's derive
//! (named-field structs, `Option` for absent fields) covers them exactly.

use perfxplain_core::{pxql, CoreError, QueryOutcome};
use serde::{Deserialize, Serialize};

/// One client request: PXQL text plus the pair of interest and per-request
/// knobs.  Only `query` is semantically required; everything else has a
/// server-side default.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed verbatim on the response.
    /// Responses to pipelined requests on one connection can complete out
    /// of order; the id is how clients match them up.
    pub id: Option<u64>,
    /// What the request addresses.  Absent (the default) means a PXQL
    /// query; `"status"` asks for the server's health/counter probe and is
    /// answered immediately by the event loop (no admission, no worker);
    /// `"append"` ingests [`WireRequest::records`] into the served log —
    /// also answered inline by the event loop, since an append is O(batch)
    /// and the expensive view refresh happens lazily on the delta path.
    pub target: Option<String>,
    /// The PXQL query text (`DESPITE … OBSERVED … EXPECTED …`).
    pub query: Option<String>,
    /// Left execution id of the pair of interest.
    pub left: Option<String>,
    /// Right execution id of the pair of interest.
    pub right: Option<String>,
    /// Because-clause width override.
    pub width: Option<u64>,
    /// Training sample-size override.
    pub sample_size: Option<u64>,
    /// Extend an irrelevant despite clause automatically (Section 6.4).
    pub auto_despite: Option<bool>,
    /// Render a plain-English narration into the response.
    pub narrate: Option<bool>,
    /// Score the explanation (precision / generality / relevance).
    pub assess: Option<bool>,
    /// Per-request deadline in milliseconds (overrides the server default).
    pub timeout_ms: Option<u64>,
    /// For `target = "append"`: a JSON array of execution records (the
    /// [`ExecutionLog`](perfxplain_core::ExecutionLog) record format),
    /// carried as a string so the outer frame stays a flat object.
    pub records: Option<String>,
}

/// One server response: either an explanation (`status = "ok"`) or a typed
/// error (`status = "error"` with a machine-readable `error` kind).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WireResponse {
    /// The request's correlation id (absent when the frame was unparseable).
    pub id: Option<u64>,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// HTTP-style status code (200, 400, 404, 408, 422, 429, 499, 500).
    pub code: u64,
    /// Machine-readable error kind (one of the `ERR_*` constants).
    pub error: Option<String>,
    /// Human-readable error detail.
    pub message: Option<String>,
    /// Because-clause atoms, rendered as `feature op constant` strings.
    pub because: Option<Vec<String>>,
    /// Despite-extension atoms (empty when the user's clause sufficed).
    pub despite: Option<Vec<String>>,
    /// Plain-English narration, when requested.
    pub narration: Option<String>,
    /// `Pr(E)` over the training pairs, when assessment was requested.
    pub precision: Option<f64>,
    /// `Gen(E)`, when requested.
    pub generality: Option<f64>,
    /// `Rel(E)`, when requested.
    pub relevance: Option<f64>,
    /// Log generation the answer was computed against.
    pub generation: Option<u64>,
    /// Whether the columnar view came from the service cache.
    pub view_reused: Option<bool>,
    /// Admission-control cost ultimately charged for this request — the
    /// *refined* (post-enumeration) cost when it came in below the
    /// admission-time estimate.
    pub cost_units: Option<u64>,
    /// Related pairs the explanation actually trained on (the measured
    /// cost behind the refinement).
    pub related_pairs: Option<u64>,
    /// Records ingested (append responses only).
    pub appended: Option<u64>,
    /// Whether the appended batch was fsynced into the append journal
    /// before this acknowledgement (append responses only).  `false` means
    /// the record is in memory — and in the journal file when one is
    /// enabled — but a crash before the next fsync or checkpoint may drop
    /// it.
    pub durable: Option<bool>,
    /// Milliseconds since the event loop started (status probe only).
    pub uptime_ms: Option<u64>,
    /// Requests admitted by the scheduler so far (status probe only).
    pub admitted: Option<u64>,
    /// Admission rejections so far (status probe only).
    pub shed: Option<u64>,
    /// Queued-deadline expirations so far (status probe only).
    pub expired: Option<u64>,
    /// Requests cancelled mid-execution so far (status probe only).
    pub cancelled: Option<u64>,
    /// Requests currently waiting in the admission queue (status probe
    /// only).
    pub queue_depth: Option<u64>,
    /// Summed cost of currently executing requests (status probe only).
    pub budget_in_use: Option<u64>,
    /// The configured concurrent-cost budget (status probe only).
    pub budget_total: Option<u64>,
    /// Cost units refunded mid-flight by estimate/actual refinement
    /// (status probe only).
    pub refunded_units: Option<u64>,
    /// Rows in the cached views' immutable base segments (status probe
    /// only).
    pub base_rows: Option<u64>,
    /// Rows in the cached views' append tails (status probe only).
    pub tail_rows: Option<u64>,
    /// Views refreshed by tail splice, O(tail) each (status probe only).
    pub delta_refreshes: Option<u64>,
    /// Views rebuilt from scratch, O(log) each (status probe only).
    pub full_rebuilds: Option<u64>,
    /// Tail segments folded into their base (status probe only).
    pub compactions: Option<u64>,
    /// Unix timestamp (ms) of the last compaction; 0 if none (status probe
    /// only).
    pub last_compaction_unix_ms: Option<u64>,
    /// Append-journal size in bytes, header included (status probe only;
    /// absent while no journal is enabled).
    pub journal_bytes: Option<u64>,
    /// Frames appended to the journal since the server started (status
    /// probe only).
    pub journal_frames_appended: Option<u64>,
    /// Frames replayed from the journal when the store was opened (status
    /// probe only).
    pub journal_frames_replayed: Option<u64>,
    /// Torn/corrupt tails truncated at open (status probe only).
    pub journal_frames_truncated: Option<u64>,
    /// Journal fsyncs performed so far (status probe only).
    pub journal_fsyncs: Option<u64>,
    /// Manifest generation of the last journal rotation; 0 before the
    /// first checkpoint (status probe only).
    pub journal_last_rotation_generation: Option<u64>,
}

/// The admission queue is full: retry later (load shedding).
pub const ERR_SHED_QUEUE_FULL: &str = "shed_queue_full";
/// The query's estimated cost exceeds the server's whole budget; it can
/// never be admitted at this configuration.
pub const ERR_COST_EXCEEDS_BUDGET: &str = "cost_exceeds_budget";
/// The connection has too many requests in flight or queued.
pub const ERR_SESSION_LIMIT: &str = "session_limit";
/// The request's deadline passed (in queue or mid-execution).
pub const ERR_DEADLINE: &str = "deadline";
/// The request was cancelled before completion.
pub const ERR_CANCELLED: &str = "cancelled";
/// The frame was not a valid protocol request (bad JSON, missing query,
/// oversized line).
pub const ERR_BAD_FRAME: &str = "bad_frame";
/// The peer is not allowed to use this admin target (e.g. `shutdown`
/// from a non-loopback connection without `allow_remote_shutdown`).
pub const ERR_FORBIDDEN: &str = "forbidden";
/// The PXQL text failed to parse or bind.
pub const ERR_PXQL: &str = "pxql";
/// An execution id is not in the served log.
pub const ERR_UNKNOWN_EXECUTION: &str = "unknown_execution";
/// The query's semantic preconditions do not hold for the pair, or the log
/// cannot produce a training set for it.
pub const ERR_PRECONDITION: &str = "precondition";
/// Unexpected server-side failure.
pub const ERR_INTERNAL: &str = "internal";

impl WireResponse {
    /// A success response carrying the outcome's explanation.
    pub fn ok(id: Option<u64>, outcome: &QueryOutcome, cost_units: u64) -> WireResponse {
        let atom_strings = |predicate: &pxql::Predicate| -> Vec<String> {
            predicate.atoms().iter().map(|a| a.to_string()).collect()
        };
        WireResponse {
            id,
            status: "ok".to_string(),
            code: 200,
            because: Some(atom_strings(&outcome.explanation.because)),
            despite: Some(atom_strings(&outcome.explanation.despite)),
            narration: outcome.narration.clone(),
            precision: outcome.quality.as_ref().and_then(|q| q.precision.value),
            generality: outcome.quality.as_ref().and_then(|q| q.generality.value),
            relevance: outcome.quality.as_ref().and_then(|q| q.relevance.value),
            generation: Some(outcome.generation),
            view_reused: Some(outcome.view_reused),
            cost_units: Some(cost_units),
            related_pairs: Some(outcome.related_pairs),
            ..WireResponse::default()
        }
    }

    /// A typed error response.
    pub fn error(
        id: Option<u64>,
        code: u64,
        kind: &str,
        message: impl Into<String>,
    ) -> WireResponse {
        WireResponse {
            id,
            status: "error".to_string(),
            code,
            error: Some(kind.to_string()),
            message: Some(message.into()),
            ..WireResponse::default()
        }
    }

    /// Maps a pipeline error onto the wire: every [`CoreError`] variant has
    /// a fixed `(code, kind)` so clients can dispatch without parsing
    /// message text.
    pub fn from_core_error(id: Option<u64>, err: &CoreError) -> WireResponse {
        let (code, kind) = match err {
            CoreError::Pxql(_) | CoreError::KindMismatch { .. } => (400, ERR_PXQL),
            CoreError::UnknownExecution(_) => (404, ERR_UNKNOWN_EXECUTION),
            CoreError::QueryPreconditionViolated(_)
            | CoreError::NotEnoughTrainingPairs { .. }
            | CoreError::JournalNotAnchored { .. } => (422, ERR_PRECONDITION),
            CoreError::DeadlineExceeded => (408, ERR_DEADLINE),
            CoreError::Cancelled => (499, ERR_CANCELLED),
            CoreError::Serialization(_)
            | CoreError::SnapshotIo { .. }
            | CoreError::SnapshotCorrupt { .. }
            | CoreError::SnapshotVersionSkew { .. } => (500, ERR_INTERNAL),
        };
        WireResponse::error(id, code, kind, err.to_string())
    }

    /// Whether this is a success response.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// Whether this is an admission-control rejection (shed load).
    pub fn is_shed(&self) -> bool {
        self.code == 429
    }
}

/// Decodes one frame (a line with the terminator stripped).
pub fn decode_request(frame: &[u8]) -> Result<WireRequest, serde_json::Error> {
    serde_json::from_slice(frame)
}

/// Encodes a response as one protocol line, newline included.  Encoding a
/// response can only fail on a shim bug, and the connection must still get
/// a frame — degrade to a pre-rendered internal error.
pub fn encode_response_line(response: &WireResponse) -> String {
    let mut line = serde_json::to_string(response).unwrap_or_else(|_| {
        "{\"status\":\"error\",\"code\":500,\"error\":\"internal\",\
         \"message\":\"response encoding failed\"}"
            .to_string()
    });
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_and_tolerate_missing_fields() {
        let decoded: WireRequest =
            decode_request(br#"{"query": "OBSERVED duration_compare = SIM", "left": "a"}"#)
                .unwrap();
        assert_eq!(
            decoded.query.as_deref(),
            Some("OBSERVED duration_compare = SIM")
        );
        assert_eq!(decoded.left.as_deref(), Some("a"));
        assert_eq!(decoded.right, None);
        assert_eq!(decoded.timeout_ms, None);

        let full = WireRequest {
            id: Some(7),
            target: None,
            query: Some("q".to_string()),
            left: Some("l".to_string()),
            right: Some("r".to_string()),
            width: Some(2),
            sample_size: Some(100),
            auto_despite: Some(true),
            narrate: Some(true),
            assess: Some(true),
            timeout_ms: Some(250),
            records: Some("[]".to_string()),
        };
        let echoed: WireRequest =
            decode_request(serde_json::to_string(&full).unwrap().as_bytes()).unwrap();
        assert_eq!(echoed.id, Some(7));
        assert_eq!(echoed.timeout_ms, Some(250));
        assert_eq!(echoed.auto_despite, Some(true));
        assert_eq!(echoed.records.as_deref(), Some("[]"));
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        assert!(decode_request(b"not json").is_err());
        assert!(decode_request(b"[1, 2]").is_err());
        assert!(decode_request(b"{\"id\": \"string-not-number\"}").is_err());
        assert!(decode_request(&[0xff, 0xfe, b'{', b'}']).is_err());
        assert!(decode_request(b"").is_err());
    }

    #[test]
    fn core_errors_map_to_stable_codes() {
        let shed = WireResponse::error(Some(1), 429, ERR_SHED_QUEUE_FULL, "queue full");
        assert!(shed.is_shed());
        assert!(!shed.is_ok());

        let deadline = WireResponse::from_core_error(None, &CoreError::DeadlineExceeded);
        assert_eq!(deadline.code, 408);
        assert_eq!(deadline.error.as_deref(), Some(ERR_DEADLINE));

        let cancelled = WireResponse::from_core_error(None, &CoreError::Cancelled);
        assert_eq!(cancelled.code, 499);

        let unknown =
            WireResponse::from_core_error(Some(3), &CoreError::UnknownExecution("j".into()));
        assert_eq!(unknown.code, 404);
        assert_eq!(unknown.id, Some(3));

        let line = encode_response_line(&unknown);
        assert!(line.ends_with('\n'));
        let parsed: WireResponse = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(parsed.code, 404);
        assert_eq!(parsed.error.as_deref(), Some(ERR_UNKNOWN_EXECUTION));
    }
}
