//! Cost-based admission control in front of the worker pool.
//!
//! Every request arrives with a [`QueryCost`] (from the compiled plan's
//! statistics, [`XplainService::estimate_cost`]) and is either **admitted**
//! — its cost charged against the configured concurrent budget and its job
//! handed to the bounded [`WorkerPool`] — **queued** in a bounded FIFO when
//! the budget is exhausted, or **rejected** with a typed [`Rejection`] that
//! the protocol layer turns into a `429`-style response.  The invariants:
//!
//! * the summed cost of in-flight jobs never exceeds
//!   [`SchedulerConfig::budget`] (a single job costing more than the whole
//!   budget is rejected outright — it could never run);
//! * the queue never holds more than [`SchedulerConfig::queue_capacity`]
//!   entries — beyond that, load is shed, not buffered;
//! * dispatch is FIFO with one exception: an entry whose *session* is
//!   already at its in-flight cap is skipped (not dropped), so one
//!   pipelining connection cannot park the whole queue behind its own
//!   backlog — the per-session fairness rule;
//! * an entry whose deadline passes while queued is shed with its
//!   `on_expire` callback, both when a completion drains the queue and on
//!   the event loop's periodic [`Scheduler::sweep_expired`] tick.
//!
//! The scheduler owns no threads of its own: jobs run on the pool, and all
//! callbacks (`on_expire`, rejections at submit) run outside the state
//! lock.

use crate::cost::QueryCost;
use perfxplain_core::pool::WorkerPool;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Admission-control limits.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Maximum summed cost of concurrently executing jobs.
    pub budget: QueryCost,
    /// Maximum queued (admitted-but-waiting) requests before shedding.
    pub queue_capacity: usize,
    /// Maximum concurrently *executing* requests per session; further
    /// requests from the session wait in queue while others pass them.
    pub max_inflight_per_session: usize,
    /// Maximum in-flight + queued requests per session; beyond it the
    /// session's submissions are rejected with [`Rejection::SessionLimit`].
    pub max_pending_per_session: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            budget: QueryCost(4096),
            queue_capacity: 64,
            max_inflight_per_session: 4,
            max_pending_per_session: 16,
        }
    }
}

/// Why a submission was refused.  Every variant is shed load, not an
/// internal failure; clients may retry (except `CostExceedsBudget`, which
/// is permanent at this server configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The admission queue is at capacity.
    QueueFull {
        /// Entries currently queued.
        queued: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The job alone costs more than the entire budget.
    CostExceedsBudget {
        /// The job's estimated cost.
        cost: QueryCost,
        /// The configured budget.
        budget: QueryCost,
    },
    /// The session is at its pending-request cap.
    SessionLimit {
        /// The session's in-flight + queued requests.
        pending: usize,
        /// The configured cap.
        cap: usize,
    },
}

/// An admitted job.  It receives a [`ChargeHandle`] so it can *refine* its
/// own admission charge mid-flight once the actual work is measured.
type Job = Box<dyn FnOnce(ChargeHandle) + Send + 'static>;
type ExpireJob = Box<dyn FnOnce() + Send + 'static>;

/// A running job's live admission charge.
///
/// Admission charges the *estimate* — a conservative upper bound from the
/// compiled plan.  Once the job has enumerated its actual work (e.g. the
/// real related-pair count), it can [`refund_to`](ChargeHandle::refund_to)
/// the lower measured cost: the difference returns to the budget
/// immediately and queued requests the freed budget now covers dispatch
/// without waiting for this job to finish.  The charge can only go down —
/// raising it could retroactively overdraw the budget.  Whatever charge is
/// held when the job returns is released by the completion wrapper.
pub struct ChargeHandle {
    scheduler: Arc<Scheduler>,
    /// Units currently held, shared with the completion wrapper so a
    /// refund is never double-released.
    charge: Arc<AtomicU64>,
}

impl ChargeHandle {
    /// The units this job currently holds against the budget.
    pub fn held(&self) -> QueryCost {
        QueryCost(self.charge.load(Ordering::SeqCst))
    }

    /// Lowers the held charge to `refined` (no-op unless it is lower),
    /// returning the freed budget to the scheduler and dispatching queued
    /// work it now covers.  Returns the units refunded.
    ///
    /// Only the job's own thread calls this, so the load–store pair on the
    /// charge cell is race-free; the per-session in-flight *count* is
    /// untouched (it counts jobs, not cost).
    pub fn refund_to(&self, refined: QueryCost) -> u64 {
        let current = self.charge.load(Ordering::SeqCst);
        if refined.0 >= current {
            return 0;
        }
        let delta = current - refined.0;
        self.charge.store(refined.0, Ordering::SeqCst);
        let (dispatch, expired) = {
            let mut state = self
                .scheduler
                .state
                .lock()
                .expect("scheduler lock poisoned");
            state.inflight -= QueryCost(delta);
            self.scheduler.drain_locked(&mut state)
        };
        self.scheduler.run_drained(dispatch, expired);
        delta
    }
}

impl std::fmt::Debug for ChargeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChargeHandle")
            .field("held", &self.held())
            .finish()
    }
}

struct QueuedEntry {
    session: u64,
    cost: QueryCost,
    deadline: Option<Instant>,
    run: Job,
    on_expire: ExpireJob,
}

#[derive(Default)]
struct State {
    inflight: QueryCost,
    inflight_by_session: HashMap<u64, usize>,
    queued_by_session: HashMap<u64, usize>,
    queue: VecDeque<QueuedEntry>,
    expired_total: u64,
}

impl State {
    fn pending(&self, session: u64) -> usize {
        self.inflight_by_session.get(&session).copied().unwrap_or(0)
            + self.queued_by_session.get(&session).copied().unwrap_or(0)
    }

    fn session_at_inflight_cap(&self, session: u64, cap: usize) -> bool {
        self.inflight_by_session.get(&session).copied().unwrap_or(0) >= cap
    }

    fn charge(&mut self, session: u64, cost: QueryCost) {
        self.inflight += cost;
        *self.inflight_by_session.entry(session).or_insert(0) += 1;
    }

    fn release(&mut self, session: u64, cost: QueryCost) {
        self.inflight -= cost;
        if let Some(count) = self.inflight_by_session.get_mut(&session) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.inflight_by_session.remove(&session);
            }
        }
    }

    fn drop_queued_count(&mut self, session: u64) {
        if let Some(count) = self.queued_by_session.get_mut(&session) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.queued_by_session.remove(&session);
            }
        }
    }
}

/// Counters exposed for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Summed cost of currently executing jobs.
    pub inflight: QueryCost,
    /// Currently executing jobs.
    pub running: usize,
    /// Currently queued jobs.
    pub queued: usize,
    /// Total queued entries shed because their deadline passed.
    pub expired_total: u64,
}

/// The cost-gated scheduler.  Shared as `Arc<Scheduler>` between the event
/// loop (submissions, sweeps) and the pool workers (completions).
pub struct Scheduler {
    pool: Arc<WorkerPool>,
    config: SchedulerConfig,
    state: Mutex<State>,
}

impl Scheduler {
    /// Creates a scheduler dispatching onto `pool`.
    pub fn new(pool: Arc<WorkerPool>, config: SchedulerConfig) -> Arc<Scheduler> {
        Arc::new(Scheduler {
            pool,
            config,
            state: Mutex::new(State::default()),
        })
    }

    /// The configured limits.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The pool this scheduler dispatches onto.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Current counters.
    pub fn stats(&self) -> SchedulerStats {
        let state = self.state.lock().expect("scheduler lock poisoned");
        SchedulerStats {
            inflight: state.inflight,
            running: state.inflight_by_session.values().sum(),
            queued: state.queue.len(),
            expired_total: state.expired_total,
        }
    }

    /// Submits a job for session `session` at cost `cost`.  On admission
    /// the job starts on the pool (immediately, or after queueing behind
    /// the budget); `on_expire` fires instead if `deadline` passes while
    /// the job is still queued.  A [`Rejection`] means neither callback
    /// will ever run — the caller responds to the client directly.
    pub fn submit(
        self: &Arc<Self>,
        session: u64,
        cost: QueryCost,
        deadline: Option<Instant>,
        run: impl FnOnce(ChargeHandle) + Send + 'static,
        on_expire: impl FnOnce() + Send + 'static,
    ) -> Result<(), Rejection> {
        if cost > self.config.budget {
            return Err(Rejection::CostExceedsBudget {
                cost,
                budget: self.config.budget,
            });
        }
        let run: Job = Box::new(run);
        let on_expire: ExpireJob = Box::new(on_expire);
        let (dispatch_now, drained) = {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            let pending = state.pending(session);
            if pending >= self.config.max_pending_per_session {
                return Err(Rejection::SessionLimit {
                    pending,
                    cap: self.config.max_pending_per_session,
                });
            }
            // FIFO: a newcomer may only bypass the queue when nothing is
            // waiting in it.
            let fits = state.inflight + cost <= self.config.budget
                && !state.session_at_inflight_cap(session, self.config.max_inflight_per_session);
            let can_run = state.queue.is_empty() && fits;
            if can_run {
                state.charge(session, cost);
                (Some(run), None)
            } else {
                if state.queue.len() >= self.config.queue_capacity {
                    return Err(Rejection::QueueFull {
                        queued: state.queue.len(),
                        capacity: self.config.queue_capacity,
                    });
                }
                state.queue.push_back(QueuedEntry {
                    session,
                    cost,
                    deadline,
                    run,
                    on_expire,
                });
                *state.queued_by_session.entry(session).or_insert(0) += 1;
                // A newcomer that fits the budget and its session cap was
                // queued only because the queue was non-empty — and the
                // entries ahead of it may all be blocked by *their*
                // sessions' in-flight caps.  Drain so it dispatches without
                // waiting for the next completion or sweep.  When the
                // newcomer itself cannot run, nothing has changed since the
                // last drain, so skip it (this also keeps already-expired
                // entries queued for the sweep to account for).
                let drained = fits.then(|| self.drain_locked(&mut state));
                (None, drained)
            }
        };
        if let Some(run) = dispatch_now {
            self.spawn(session, cost, run);
        }
        if let Some((dispatch, expired)) = drained {
            self.run_drained(dispatch, expired);
        }
        Ok(())
    }

    /// Wraps a job so completion releases its *remaining* charge and drains
    /// the queue, then hands it to the pool.  The charge starts at the
    /// admitted cost and may be lowered mid-flight through the job's
    /// [`ChargeHandle`]; whatever is left in the shared cell when the job
    /// returns is released here, so a refund is never double-counted.  The
    /// release runs even if the job panics — a panicking query must not
    /// leak budget.
    fn spawn(self: &Arc<Self>, session: u64, cost: QueryCost, run: Job) {
        let scheduler = Arc::clone(self);
        self.pool.execute(move || {
            let charge = Arc::new(AtomicU64::new(cost.0));
            let handle = ChargeHandle {
                scheduler: Arc::clone(&scheduler),
                charge: Arc::clone(&charge),
            };
            let _ = catch_unwind(AssertUnwindSafe(move || run(handle)));
            scheduler.complete(session, QueryCost(charge.load(Ordering::SeqCst)));
        });
    }

    /// Releases a finished job's cost and dispatches every queue entry the
    /// freed budget now covers (skipping — not dropping — entries whose
    /// session is at its in-flight cap, and shedding entries whose deadline
    /// passed).
    fn complete(self: &Arc<Self>, session: u64, cost: QueryCost) {
        let (dispatch, expired) = {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            state.release(session, cost);
            self.drain_locked(&mut state)
        };
        self.run_drained(dispatch, expired);
    }

    /// Sheds every queued entry whose deadline has passed.  Called
    /// periodically by the event loop so queued requests time out even when
    /// no completion happens to drain the queue.  Returns how many were
    /// shed.
    pub fn sweep_expired(self: &Arc<Self>) -> usize {
        let (dispatch, expired) = {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            self.drain_locked(&mut state)
        };
        let count = expired.len();
        self.run_drained(dispatch, expired);
        count
    }

    /// Drops queued entries of a closed session (their responses have
    /// nowhere to go); in-flight jobs finish normally and release their
    /// cost on completion.
    pub fn session_closed(self: &Arc<Self>, session: u64) {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        state.queue.retain(|entry| entry.session != session);
        state.queued_by_session.remove(&session);
    }

    /// Scans the queue under the lock: expired entries out, dispatchable
    /// entries charged and collected.  An entry that does not fit the
    /// remaining budget stops the scan (strict FIFO — cheap latecomers
    /// must not starve an expensive queue head); an entry blocked only by
    /// its session's in-flight cap is skipped.
    fn drain_locked(&self, state: &mut State) -> (Vec<(u64, QueryCost, Job)>, Vec<ExpireJob>) {
        let now = Instant::now();
        let mut dispatch = Vec::new();
        let mut expired = Vec::new();
        let mut index = 0;
        while index < state.queue.len() {
            let entry = &state.queue[index];
            if entry.deadline.is_some_and(|deadline| now >= deadline) {
                let entry = state.queue.remove(index).expect("index in bounds");
                state.drop_queued_count(entry.session);
                state.expired_total += 1;
                expired.push(entry.on_expire);
                continue;
            }
            if state.inflight + entry.cost > self.config.budget {
                break;
            }
            if state.session_at_inflight_cap(entry.session, self.config.max_inflight_per_session) {
                index += 1;
                continue;
            }
            let entry = state.queue.remove(index).expect("index in bounds");
            state.drop_queued_count(entry.session);
            state.charge(entry.session, entry.cost);
            dispatch.push((entry.session, entry.cost, entry.run));
        }
        (dispatch, expired)
    }

    /// Runs the results of a drain outside the lock.
    fn run_drained(
        self: &Arc<Self>,
        dispatch: Vec<(u64, QueryCost, Job)>,
        expired: Vec<ExpireJob>,
    ) {
        for on_expire in expired {
            let _ = catch_unwind(AssertUnwindSafe(on_expire));
        }
        for (session, cost, run) in dispatch {
            self.spawn(session, cost, run);
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Scheduler")
            .field("config", &self.config)
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    fn scheduler(config: SchedulerConfig) -> Arc<Scheduler> {
        Scheduler::new(Arc::new(WorkerPool::new(2)), config)
    }

    /// Submits a job that blocks until `release` receives, so tests can
    /// hold budget deterministically.
    fn blocking_job(
        sched: &Arc<Scheduler>,
        session: u64,
        cost: u64,
    ) -> (mpsc::Sender<()>, mpsc::Receiver<()>) {
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        sched
            .submit(
                session,
                QueryCost(cost),
                None,
                move |_| {
                    let _ = started_tx.send(());
                    let _ = release_rx.recv();
                },
                || {},
            )
            .expect("submission admitted");
        (release_tx, started_rx)
    }

    #[test]
    fn budget_bounds_concurrent_cost() {
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(10),
            ..SchedulerConfig::default()
        });
        let (release_a, started_a) = blocking_job(&sched, 1, 6);
        started_a.recv_timeout(Duration::from_secs(5)).unwrap();
        // 6 + 6 > 10: the second job must queue, not run.
        let (release_b, started_b) = blocking_job(&sched, 2, 6);
        assert!(started_b.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(sched.stats().queued, 1);
        assert_eq!(sched.stats().inflight, QueryCost(6));
        // Completion frees the budget and dispatches the queued job.
        release_a.send(()).unwrap();
        started_b.recv_timeout(Duration::from_secs(5)).unwrap();
        release_b.send(()).unwrap();
        while sched.stats().inflight != QueryCost(0) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn oversized_jobs_are_rejected_outright() {
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(10),
            ..SchedulerConfig::default()
        });
        let err = sched
            .submit(1, QueryCost(11), None, |_| {}, || {})
            .unwrap_err();
        assert_eq!(
            err,
            Rejection::CostExceedsBudget {
                cost: QueryCost(11),
                budget: QueryCost(10),
            }
        );
    }

    #[test]
    fn full_queue_sheds() {
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(5),
            queue_capacity: 2,
            max_pending_per_session: 100,
            ..SchedulerConfig::default()
        });
        let (release, started) = blocking_job(&sched, 1, 5);
        started.recv_timeout(Duration::from_secs(5)).unwrap();
        // Budget is held: the next two queue, the third sheds.
        for session in 2..4 {
            sched
                .submit(session, QueryCost(1), None, |_| {}, || {})
                .expect("queued");
        }
        let err = sched
            .submit(4, QueryCost(1), None, |_| {}, || {})
            .unwrap_err();
        assert_eq!(
            err,
            Rejection::QueueFull {
                queued: 2,
                capacity: 2,
            }
        );
        release.send(()).unwrap();
    }

    #[test]
    fn session_inflight_cap_lets_other_sessions_pass() {
        // One worker-sized budget per job; the hog session may run at most
        // one job at a time, so its queued backlog must not block the
        // victim queued behind it.
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(100),
            queue_capacity: 32,
            max_inflight_per_session: 1,
            max_pending_per_session: 32,
        });
        let hog_done = Arc::new(AtomicUsize::new(0));
        let (hog_release, hog_started) = blocking_job(&sched, 1, 1);
        hog_started.recv_timeout(Duration::from_secs(5)).unwrap();
        // The hog pipelines a backlog; all of it queues behind its own cap.
        for _ in 0..4 {
            let hog_done = Arc::clone(&hog_done);
            sched
                .submit(
                    1,
                    QueryCost(1),
                    None,
                    move |_| {
                        hog_done.fetch_add(1, Ordering::SeqCst);
                    },
                    || {},
                )
                .expect("hog backlog queues");
        }
        assert_eq!(sched.stats().queued, 4);
        // The victim arrives after the hog's backlog but passes it: its
        // session is under cap and the budget has room.
        let (victim_tx, victim_rx) = mpsc::channel::<()>();
        sched
            .submit(
                2,
                QueryCost(1),
                None,
                move |_| {
                    let _ = victim_tx.send(());
                },
                || {},
            )
            .expect("victim admitted");
        victim_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("victim served while the hog's backlog waits");
        assert_eq!(hog_done.load(Ordering::SeqCst), 0);
        // Once the hog's running job finishes its backlog drains serially.
        hog_release.send(()).unwrap();
        while hog_done.load(Ordering::SeqCst) < 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn session_pending_cap_rejects_floods() {
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(1),
            queue_capacity: 100,
            max_inflight_per_session: 1,
            max_pending_per_session: 3,
        });
        let (release, started) = blocking_job(&sched, 1, 1);
        started.recv_timeout(Duration::from_secs(5)).unwrap();
        for _ in 0..2 {
            sched.submit(1, QueryCost(1), None, |_| {}, || {}).unwrap();
        }
        let err = sched
            .submit(1, QueryCost(1), None, |_| {}, || {})
            .unwrap_err();
        assert_eq!(err, Rejection::SessionLimit { pending: 3, cap: 3 });
        // Another session is unaffected by the flooder's cap.
        sched.submit(2, QueryCost(1), None, |_| {}, || {}).unwrap();
        release.send(()).unwrap();
    }

    #[test]
    fn queued_entries_expire_on_sweep_and_on_drain() {
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(1),
            queue_capacity: 10,
            ..SchedulerConfig::default()
        });
        let (release, started) = blocking_job(&sched, 1, 1);
        started.recv_timeout(Duration::from_secs(5)).unwrap();
        let expired = Arc::new(AtomicUsize::new(0));
        let ran = Arc::new(AtomicUsize::new(0));
        let already_past = Instant::now() - Duration::from_millis(1);
        for _ in 0..2 {
            let expired = Arc::clone(&expired);
            let ran = Arc::clone(&ran);
            sched
                .submit(
                    2,
                    QueryCost(1),
                    Some(already_past),
                    move |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    },
                    move || {
                        expired.fetch_add(1, Ordering::SeqCst);
                    },
                )
                .expect("queued despite expired deadline");
        }
        // The periodic sweep sheds both expired entries at once.
        let swept = sched.sweep_expired();
        assert_eq!(swept, 2);
        assert_eq!(expired.load(Ordering::SeqCst), 2);
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(sched.stats().expired_total, 2);

        // Mid-queue expiry on the completion-drain path too.
        let expired_b = Arc::clone(&expired);
        sched
            .submit(
                2,
                QueryCost(1),
                Some(already_past),
                |_| {},
                move || {
                    expired_b.fetch_add(1, Ordering::SeqCst);
                },
            )
            .unwrap();
        release.send(()).unwrap();
        while expired.load(Ordering::SeqCst) < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn closed_sessions_drop_their_queue_entries() {
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(1),
            queue_capacity: 10,
            ..SchedulerConfig::default()
        });
        let (release, started) = blocking_job(&sched, 1, 1);
        started.recv_timeout(Duration::from_secs(5)).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        for session in [2u64, 3, 2] {
            let ran = Arc::clone(&ran);
            sched
                .submit(
                    session,
                    QueryCost(1),
                    None,
                    move |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    },
                    || {},
                )
                .unwrap();
        }
        sched.session_closed(2);
        assert_eq!(sched.stats().queued, 1);
        release.send(()).unwrap();
        // Only session 3's entry survives to run.
        while ran.load(Ordering::SeqCst) < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicking_jobs_release_their_budget() {
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(2),
            ..SchedulerConfig::default()
        });
        sched
            .submit(1, QueryCost(2), None, |_| panic!("query exploded"), || {})
            .unwrap();
        // The full budget must come back, or this submission never runs.
        let (tx, rx) = mpsc::channel::<()>();
        for _ in 0..200 {
            if sched.stats().inflight == QueryCost(0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        sched
            .submit(
                1,
                QueryCost(2),
                None,
                move |_| {
                    let _ = tx.send(());
                },
                || {},
            )
            .unwrap();
        rx.recv_timeout(Duration::from_secs(5))
            .expect("budget leaked by a panicking job");
    }

    #[test]
    fn mid_flight_refunds_free_budget_for_queued_jobs() {
        let sched = scheduler(SchedulerConfig {
            budget: QueryCost(10),
            ..SchedulerConfig::default()
        });
        // A job admitted at cost 9 that will refund down to 2 mid-flight.
        let (refund_tx, refund_rx) = mpsc::channel::<()>();
        let (finish_tx, finish_rx) = mpsc::channel::<()>();
        let (refunded_tx, refunded_rx) = mpsc::channel::<u64>();
        sched
            .submit(
                1,
                QueryCost(9),
                None,
                move |charge: ChargeHandle| {
                    assert_eq!(charge.held(), QueryCost(9));
                    let _ = refund_rx.recv();
                    let freed = charge.refund_to(QueryCost(2));
                    assert_eq!(charge.held(), QueryCost(2));
                    // Raising the charge back up is refused.
                    assert_eq!(charge.refund_to(QueryCost(5)), 0);
                    let _ = refunded_tx.send(freed);
                    let _ = finish_rx.recv();
                },
                || {},
            )
            .unwrap();
        // A 6-unit job from another session does not fit behind 9/10.
        let (queued_tx, queued_rx) = mpsc::channel::<()>();
        sched
            .submit(
                2,
                QueryCost(6),
                None,
                move |_| {
                    let _ = queued_tx.send(());
                },
                || {},
            )
            .unwrap();
        assert!(queued_rx.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(sched.stats().queued, 1);
        // The refund drops in-flight cost to 2, which dispatches the queued
        // job while the refunding job is still running.
        refund_tx.send(()).unwrap();
        assert_eq!(refunded_rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        queued_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("refund did not release budget to the queue");
        // Completion releases only the refined charge — nothing leaks and
        // nothing is double-released.
        finish_tx.send(()).unwrap();
        for _ in 0..500 {
            if sched.stats().inflight == QueryCost(0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(sched.stats().inflight, QueryCost(0));
    }
}
