//! The admission-control cost unit.
//!
//! Following the mitsuha scheduler's `JobCost` idiom, cost is a plain
//! additive scalar: every admitted query holds a [`QueryCost`] worth of the
//! server's concurrent-cost budget for as long as it is in flight, and the
//! budget is a [`QueryCost`] too.  The scalar comes from
//! [`CostEstimate::units`] — the compiled plan's candidate-pair count plus
//! the sampled training work, in 1024-pair chunks — so a query over a
//! 100k-row log weighs ~orders of magnitude more than one over a 1k-row
//! log, and the budget translates directly into "how much concurrent scan
//! work this box tolerates".

use perfxplain_core::CostEstimate;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An additive admission-control cost (also the type of the budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct QueryCost(pub u64);

impl QueryCost {
    /// The raw unit count.
    pub fn units(self) -> u64 {
        self.0
    }
}

impl From<&CostEstimate> for QueryCost {
    fn from(estimate: &CostEstimate) -> Self {
        QueryCost(estimate.units())
    }
}

impl Add for QueryCost {
    type Output = QueryCost;
    fn add(self, rhs: QueryCost) -> QueryCost {
        QueryCost(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for QueryCost {
    fn add_assign(&mut self, rhs: QueryCost) {
        *self = *self + rhs;
    }
}

impl Sub for QueryCost {
    type Output = QueryCost;
    fn sub(self, rhs: QueryCost) -> QueryCost {
        QueryCost(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for QueryCost {
    fn sub_assign(&mut self, rhs: QueryCost) {
        *self = *self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic_saturates() {
        let mut held = QueryCost(10);
        held += QueryCost(5);
        assert_eq!(held, QueryCost(15));
        held -= QueryCost(20);
        assert_eq!(held, QueryCost(0));
        assert_eq!(QueryCost(u64::MAX) + QueryCost(1), QueryCost(u64::MAX));
        assert!(QueryCost(3) < QueryCost(4));
    }
}
