//! The non-blocking TCP event loop.
//!
//! One thread owns the listener and every connection, all in non-blocking
//! mode: it accepts, reads frames, hands parsed requests to the
//! [`Scheduler`], receives finished responses over an mpsc channel from
//! the pool workers, and flushes write buffers — no thread per connection,
//! no tokio.  Worker threads never touch sockets; the event loop never
//! touches queries.  Per-connection memory is bounded in both directions:
//! a line longer than [`ServerConfig::max_frame_bytes`] gets a typed error
//! and the connection is dropped, and a client that stops reading while
//! more than [`ServerConfig::max_write_buffer`] bytes of responses are
//! pending is disconnected (slow-consumer shedding) rather than buffered
//! without bound.

use crate::cost::QueryCost;
use crate::protocol::{
    self, WireRequest, WireResponse, ERR_BAD_FRAME, ERR_COST_EXCEEDS_BUDGET, ERR_DEADLINE,
    ERR_SESSION_LIMIT, ERR_SHED_QUEUE_FULL,
};
use crate::scheduler::{ChargeHandle, Rejection, Scheduler, SchedulerConfig};
use perfxplain_core::pool::WorkerPool;
use perfxplain_core::{CancelToken, CostProbe, ExecutionRecord, QueryRequest, XplainService};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Server configuration: where to listen and how much concurrent work to
/// accept.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (the bound address is on
    /// the [`ServerHandle`]).
    pub addr: String,
    /// Worker threads answering queries (the pool bound).
    pub workers: usize,
    /// Admission-control limits (budget, queue, per-session caps).
    pub scheduler: SchedulerConfig,
    /// Deadline applied to requests that don't carry their own
    /// `timeout_ms`; `None` means no default deadline.
    pub default_timeout: Option<Duration>,
    /// Maximum request-line length in bytes; longer frames get a typed
    /// error and the connection is closed.
    pub max_frame_bytes: usize,
    /// Maximum buffered response bytes per connection before the client is
    /// treated as a slow consumer and dropped.
    pub max_write_buffer: usize,
    /// How long a graceful shutdown ([`ServerHandle::drain`] or the
    /// `shutdown` admin frame) waits for queued and in-flight requests to
    /// finish before the loop exits anyway.
    pub drain_timeout: Duration,
    /// Accept the `shutdown` admin frame from non-loopback peers.  Off by
    /// default: on an otherwise query/append-only protocol, letting any
    /// reachable client drain and terminate the process is a remote
    /// denial-of-service.  Loopback connections may always shut the
    /// server down (that is how the CLI's own tooling does it).
    pub allow_remote_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: perfxplain_core::shard::hardware_threads(),
            scheduler: SchedulerConfig::default(),
            default_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: 1 << 20,
            max_write_buffer: 4 << 20,
            drain_timeout: Duration::from_secs(5),
            allow_remote_shutdown: false,
        }
    }
}

/// Monotonic counters kept by the event loop, readable from any thread.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub sessions_accepted: AtomicU64,
    /// Frames received (parseable or not).
    pub requests: AtomicU64,
    /// Requests admitted by the scheduler (dispatched or queued).
    pub admitted: AtomicU64,
    /// Success responses sent.
    pub answered: AtomicU64,
    /// Typed error responses other than admission rejections and
    /// cancellations.
    pub errors: AtomicU64,
    /// Admission rejections (queue full / cost / session limit).
    pub shed: AtomicU64,
    /// Requests whose deadline passed while queued.
    pub expired: AtomicU64,
    /// Requests cancelled (or past deadline) mid-execution.
    pub cancelled: AtomicU64,
    /// Budget units refunded mid-flight after queries measured their
    /// actual related-pair work below the admission estimate.
    pub refunded_units: AtomicU64,
    /// Record batches appended over the wire.
    pub appends: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub sessions_accepted: u64,
    /// Frames received.
    pub requests: u64,
    /// Requests admitted by the scheduler.
    pub admitted: u64,
    /// Success responses sent.
    pub answered: u64,
    /// Non-admission, non-cancellation typed errors sent.
    pub errors: u64,
    /// Admission rejections sent.
    pub shed: u64,
    /// Queued-deadline expirations sent.
    pub expired: u64,
    /// Mid-execution cancellations/deadline hits sent.
    pub cancelled: u64,
    /// Budget units refunded mid-flight.
    pub refunded_units: u64,
    /// Record batches appended over the wire.
    pub appends: u64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_accepted: self.sessions_accepted.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            refunded_units: self.refunded_units.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
        }
    }
}

/// A running server: the bound address, live counters, and shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops the event loop and joins it.  In-flight queries finish on the
    /// pool but their responses are not delivered.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop();
        self.stats.snapshot()
    }

    /// Gracefully shuts down: stop accepting connections, let queued and
    /// in-flight requests finish (bounded by
    /// [`ServerConfig::drain_timeout`]), flush their responses, then stop.
    /// Blocks until the loop exits.  The `shutdown` admin frame triggers
    /// the same path from the wire.
    pub fn drain(mut self) -> StatsSnapshot {
        self.drain.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        self.stats.snapshot()
    }

    /// Whether the event loop has exited (e.g. a client sent the
    /// `shutdown` admin frame and the drain completed).
    pub fn is_finished(&self) -> bool {
        self.join.as_ref().is_none_or(|join| join.is_finished())
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One client connection's event-loop state.
struct Session {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Close after the write buffer drains (protocol violation already
    /// answered with a typed error).
    close_after_flush: bool,
    /// Whether the peer connected over a loopback address — admin frames
    /// like `shutdown` are restricted to loopback unless
    /// [`ServerConfig::allow_remote_shutdown`] opts out.
    peer_loopback: bool,
}

/// Binds the listener and spawns the event-loop thread.  Returns as soon as
/// the port is bound, so callers can connect immediately.
pub fn spawn(service: Arc<XplainService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let drain = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let loop_shutdown = Arc::clone(&shutdown);
    let loop_drain = Arc::clone(&drain);
    let loop_stats = Arc::clone(&stats);
    let join = std::thread::Builder::new()
        .name("pxserve-loop".to_string())
        .spawn(move || {
            event_loop(
                listener,
                service,
                config,
                &loop_shutdown,
                &loop_drain,
                &loop_stats,
            )
        })?;
    Ok(ServerHandle {
        addr,
        shutdown,
        drain,
        stats,
        join: Some(join),
    })
}

fn event_loop(
    listener: TcpListener,
    service: Arc<XplainService>,
    config: ServerConfig,
    shutdown: &AtomicBool,
    drain: &Arc<AtomicBool>,
    stats: &Arc<ServerStats>,
) {
    let pool = Arc::new(WorkerPool::new(config.workers));
    let scheduler = Scheduler::new(pool, config.scheduler.clone());
    // Pool workers send finished response lines here; only the event loop
    // writes to sockets.
    let (completions_tx, completions_rx) = mpsc::channel::<(u64, String)>();
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut next_session = 1u64;
    let started = Instant::now();
    let mut last_sweep = Instant::now();
    let mut drain_deadline: Option<Instant> = None;

    while !shutdown.load(Ordering::Relaxed) {
        let mut progressed = false;
        let draining = drain.load(Ordering::Relaxed);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + config.drain_timeout);
        }

        // Accept every pending connection (a draining server stops
        // accepting — existing sessions are served to completion).  The
        // "server.accept" failpoint models a transiently failing accept(2):
        // any injected fault skips this tick's accepts (pending connections
        // stay in the backlog and are picked up next time around).
        if !draining {
            loop {
                if perfxplain_core::failpoints::trigger("server.accept").is_some() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        sessions.insert(
                            next_session,
                            Session {
                                stream,
                                read_buf: Vec::new(),
                                write_buf: Vec::new(),
                                close_after_flush: false,
                                peer_loopback: peer.ip().is_loopback(),
                            },
                        );
                        next_session += 1;
                        stats.sessions_accepted.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Read frames from every session.
        let mut closed: Vec<u64> = Vec::new();
        for (&id, session) in sessions.iter_mut() {
            if session.close_after_flush {
                continue;
            }
            match read_available(&mut session.stream, &mut session.read_buf) {
                ReadOutcome::Closed => {
                    closed.push(id);
                    continue;
                }
                ReadOutcome::Progress => progressed = true,
                ReadOutcome::Idle => {}
            }
            if session.read_buf.len() > config.max_frame_bytes && !session.read_buf.contains(&b'\n')
            {
                let response = WireResponse::error(
                    None,
                    400,
                    ERR_BAD_FRAME,
                    format!("request line exceeds {} bytes", config.max_frame_bytes),
                );
                session
                    .write_buf
                    .extend_from_slice(protocol::encode_response_line(&response).as_bytes());
                session.close_after_flush = true;
                stats.errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            while let Some(newline) = session.read_buf.iter().position(|&b| b == b'\n') {
                let frame: Vec<u8> = session.read_buf.drain(..=newline).collect();
                let frame = trim_frame(&frame);
                if frame.is_empty() {
                    continue;
                }
                progressed = true;
                stats.requests.fetch_add(1, Ordering::Relaxed);
                if let Some(immediate) = handle_frame(
                    id,
                    frame,
                    &service,
                    &scheduler,
                    &completions_tx,
                    stats,
                    &config,
                    started,
                    drain,
                    session.peer_loopback,
                ) {
                    session
                        .write_buf
                        .extend_from_slice(protocol::encode_response_line(&immediate).as_bytes());
                }
            }
        }

        // Collect finished responses from the workers.
        while let Ok((session_id, line)) = completions_rx.try_recv() {
            progressed = true;
            if let Some(session) = sessions.get_mut(&session_id) {
                session.write_buf.extend_from_slice(line.as_bytes());
            }
        }

        // Flush write buffers; enforce the slow-consumer bound.
        for (&id, session) in sessions.iter_mut() {
            if session.write_buf.len() > config.max_write_buffer {
                closed.push(id);
                continue;
            }
            if session.write_buf.is_empty() {
                continue;
            }
            // The "server.write" failpoint models a transiently failing
            // send(2): a transient kind leaves the buffer for the next
            // flush, anything else closes the connection like a real
            // write error would.
            if let Some(failure) = perfxplain_core::failpoints::trigger("server.write") {
                match failure.into_io_error("server.write").kind() {
                    ErrorKind::WouldBlock | ErrorKind::Interrupted | ErrorKind::TimedOut => {}
                    _ => closed.push(id),
                }
                continue;
            }
            match session.stream.write(&session.write_buf) {
                Ok(0) => closed.push(id),
                Ok(written) => {
                    session.write_buf.drain(..written);
                    progressed = true;
                    if session.write_buf.is_empty() && session.close_after_flush {
                        closed.push(id);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => closed.push(id),
            }
        }

        for id in closed {
            if sessions.remove(&id).is_some() {
                scheduler.session_closed(id);
            }
        }

        // Time out queued requests even when no completion drains the
        // queue.
        if last_sweep.elapsed() >= Duration::from_millis(5) {
            let swept = scheduler.sweep_expired();
            if swept > 0 {
                stats.expired.fetch_add(swept as u64, Ordering::Relaxed);
                progressed = true;
            }
            last_sweep = Instant::now();
        }

        // A draining loop exits once nothing is queued, running, or
        // buffered — or once the bounded drain deadline passes.
        if draining {
            let sched = scheduler.stats();
            let idle = sched.queued == 0
                && sched.inflight.units() == 0
                && sessions.values().all(|s| s.write_buf.is_empty());
            if idle || drain_deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                break;
            }
        }

        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Final flush: a worker may have finished between this tick's
    // completion sweep and the idle check — give already-computed
    // responses a short, bounded window to reach their sockets.
    if drain.load(Ordering::Relaxed) && !shutdown.load(Ordering::Relaxed) {
        let deadline = Instant::now() + Duration::from_millis(250);
        loop {
            while let Ok((session_id, line)) = completions_rx.try_recv() {
                if let Some(session) = sessions.get_mut(&session_id) {
                    session.write_buf.extend_from_slice(line.as_bytes());
                }
            }
            let mut pending = false;
            for session in sessions.values_mut() {
                if session.write_buf.is_empty() {
                    continue;
                }
                match session.stream.write(&session.write_buf) {
                    Ok(written) if written > 0 => {
                        session.write_buf.drain(..written);
                    }
                    _ => {}
                }
                pending |= !session.write_buf.is_empty();
            }
            if (!pending && scheduler.stats().inflight.units() == 0) || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

enum ReadOutcome {
    Progress,
    Idle,
    Closed,
}

fn read_available(stream: &mut TcpStream, buf: &mut Vec<u8>) -> ReadOutcome {
    let mut chunk = [0u8; 16 * 1024];
    let mut outcome = ReadOutcome::Idle;
    loop {
        // The "server.read" failpoint models a transiently failing
        // recv(2): transient kinds defer to the next tick (bytes stay in
        // the socket buffer), anything else drops the connection like a
        // real read error would.
        if let Some(failure) = perfxplain_core::failpoints::trigger("server.read") {
            match failure.into_io_error("server.read").kind() {
                ErrorKind::WouldBlock | ErrorKind::Interrupted | ErrorKind::TimedOut => {
                    return outcome
                }
                _ => return ReadOutcome::Closed,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                outcome = ReadOutcome::Progress;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return outcome,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Closed,
        }
    }
}

fn trim_frame(frame: &[u8]) -> &[u8] {
    let mut frame = frame;
    while let [rest @ .., last] = frame {
        if *last == b'\n' || *last == b'\r' || last.is_ascii_whitespace() {
            frame = rest;
        } else {
            break;
        }
    }
    frame
}

/// Parses one frame and either submits it to the scheduler (response will
/// arrive via the completion channel) or returns an immediate response
/// (status probes, parse errors, admission rejections, estimation
/// failures).
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    session_id: u64,
    frame: &[u8],
    service: &Arc<XplainService>,
    scheduler: &Arc<Scheduler>,
    completions: &mpsc::Sender<(u64, String)>,
    stats: &Arc<ServerStats>,
    config: &ServerConfig,
    started: Instant,
    drain: &Arc<AtomicBool>,
    peer_loopback: bool,
) -> Option<WireResponse> {
    let wire = match protocol::decode_request(frame) {
        Ok(wire) => wire,
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return Some(WireResponse::error(
                None,
                400,
                ERR_BAD_FRAME,
                format!("unparseable request: {e}"),
            ));
        }
    };
    let id = wire.id;
    // Status probes are answered by the event loop itself: no admission
    // charge, no worker, no view — they must keep working while the query
    // path is saturated or shedding.
    match wire.target.as_deref() {
        None => {}
        Some("status") => {
            let sched = scheduler.stats();
            let snapshot = stats.snapshot();
            let views = service.view_stats();
            let journal = service.journal_stats();
            return Some(WireResponse {
                id,
                status: "ok".to_string(),
                code: 200,
                generation: Some(service.generation()),
                uptime_ms: Some(started.elapsed().as_millis() as u64),
                admitted: Some(snapshot.admitted),
                shed: Some(snapshot.shed),
                expired: Some(snapshot.expired),
                cancelled: Some(snapshot.cancelled),
                queue_depth: Some(sched.queued as u64),
                budget_in_use: Some(sched.inflight.units()),
                budget_total: Some(config.scheduler.budget.units()),
                refunded_units: Some(snapshot.refunded_units),
                base_rows: Some(views.base_rows),
                tail_rows: Some(views.tail_rows),
                delta_refreshes: Some(views.delta_refreshes),
                full_rebuilds: Some(views.full_rebuilds),
                compactions: Some(views.compactions),
                last_compaction_unix_ms: Some(views.last_compaction_unix_ms),
                journal_bytes: journal.map(|j| j.bytes),
                journal_frames_appended: journal.map(|j| j.frames_appended),
                journal_frames_replayed: journal.map(|j| j.frames_replayed),
                journal_frames_truncated: journal.map(|j| j.frames_truncated),
                journal_fsyncs: journal.map(|j| j.fsyncs),
                journal_last_rotation_generation: journal.map(|j| j.last_rotation_generation),
                ..WireResponse::default()
            });
        }
        // The shutdown admin frame starts a graceful drain: this response
        // is acknowledged first (it flushes during the drain), the
        // listener stops accepting, queued and in-flight requests finish
        // under the bounded drain deadline, and the loop exits — the host
        // process (see the CLI's `serve`) then runs its final checkpoint
        // and journal fsync.  Only loopback peers may use it unless the
        // server opted into remote shutdown.
        Some("shutdown") => {
            if !peer_loopback && !config.allow_remote_shutdown {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return Some(WireResponse::error(
                    id,
                    403,
                    protocol::ERR_FORBIDDEN,
                    "shutdown is restricted to loopback connections \
                     (enable allow_remote_shutdown to accept it remotely)",
                ));
            }
            drain.store(true, Ordering::Relaxed);
            return Some(WireResponse {
                id,
                status: "ok".to_string(),
                code: 200,
                message: Some("draining: no new connections; in-flight requests finish".into()),
                ..WireResponse::default()
            });
        }
        // Appends are handled inline by the event loop too: the hand-off
        // into the log is a short lock-and-extend (no view is rebuilt — the
        // next query pays the O(tail) delta refresh), so routing them
        // through admission control would cost more than the work itself.
        Some("append") => {
            let Some(records_json) = wire.records.as_deref() else {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return Some(WireResponse::error(
                    id,
                    400,
                    ERR_BAD_FRAME,
                    "append request has no \"records\" field",
                ));
            };
            let records: Vec<ExecutionRecord> = match serde_json::from_str(records_json) {
                Ok(records) => records,
                Err(e) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    return Some(WireResponse::error(
                        id,
                        400,
                        ERR_BAD_FRAME,
                        format!("unparseable \"records\" array: {e}"),
                    ));
                }
            };
            // Journal-first: a journaling service only acks after the
            // batch is framed on disk, and `durable` tells the client
            // whether it was fsynced under the journal's policy.
            let outcome = match service.append(records) {
                Ok(outcome) => outcome,
                Err(e) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    return Some(WireResponse::from_core_error(id, &e));
                }
            };
            stats.appends.fetch_add(1, Ordering::Relaxed);
            return Some(WireResponse {
                id,
                status: "ok".to_string(),
                code: 200,
                generation: Some(outcome.generation),
                appended: Some(outcome.appended as u64),
                durable: Some(outcome.durable),
                ..WireResponse::default()
            });
        }
        Some(other) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return Some(WireResponse::error(
                id,
                400,
                ERR_BAD_FRAME,
                format!(
                    "unknown target '{other}' (omit it for a query, or use \"status\" / \
                     \"append\" / \"shutdown\")"
                ),
            ));
        }
    }
    let Some(query_text) = wire.query.clone() else {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        return Some(WireResponse::error(
            id,
            400,
            ERR_BAD_FRAME,
            "request has no \"query\" field",
        ));
    };

    let deadline = wire
        .timeout_ms
        .map(Duration::from_millis)
        .or(config.default_timeout)
        .map(|timeout| Instant::now() + timeout);
    let request = build_query_request(&query_text, &wire, service, deadline);

    // Admission-time cost estimate from the plan statistics: no view is
    // built, no log features are scanned.
    let estimate = match service.estimate_cost(&request) {
        Ok(estimate) => estimate,
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return Some(WireResponse::from_core_error(id, &e));
        }
    };
    let cost = crate::cost::QueryCost::from(&estimate);

    let run = {
        let service = Arc::clone(service);
        let completions = completions.clone();
        let stats = Arc::clone(stats);
        move |charge: ChargeHandle| {
            // Once the view is built and the actual related-pair count is
            // measured, re-price the query and hand the estimate/actual
            // difference back to the scheduler so queued requests stop
            // waiting on budget this query will never use.
            let probe_stats = Arc::clone(&stats);
            let request = request.with_cost_probe(CostProbe::new(move |related_pairs| {
                let refined = QueryCost(estimate.refined_units(related_pairs));
                let refunded = charge.refund_to(refined);
                if refunded > 0 {
                    probe_stats
                        .refunded_units
                        .fetch_add(refunded, Ordering::Relaxed);
                }
            }));
            let response = match service.explain(&request) {
                Ok(outcome) => {
                    stats.answered.fetch_add(1, Ordering::Relaxed);
                    let refined = estimate
                        .units()
                        .min(estimate.refined_units(outcome.related_pairs));
                    WireResponse::ok(id, &outcome, refined)
                }
                Err(e) => {
                    // Mid-execution cancellations and deadline hits are
                    // accounted separately from real errors: they describe
                    // the client's patience, not the server's health.
                    let counter = match &e {
                        perfxplain_core::CoreError::Cancelled
                        | perfxplain_core::CoreError::DeadlineExceeded => &stats.cancelled,
                        _ => &stats.errors,
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    WireResponse::from_core_error(id, &e)
                }
            };
            let _ = completions.send((session_id, protocol::encode_response_line(&response)));
        }
    };
    let on_expire = {
        let completions = completions.clone();
        move || {
            let response = WireResponse::error(
                id,
                408,
                ERR_DEADLINE,
                "deadline passed while the request was queued",
            );
            let _ = completions.send((session_id, protocol::encode_response_line(&response)));
        }
    };

    match scheduler.submit(session_id, cost, deadline, run, on_expire) {
        Ok(()) => {
            stats.admitted.fetch_add(1, Ordering::Relaxed);
            None
        }
        Err(rejection) => {
            stats.shed.fetch_add(1, Ordering::Relaxed);
            let response = match rejection {
                Rejection::QueueFull { queued, capacity } => WireResponse::error(
                    id,
                    429,
                    ERR_SHED_QUEUE_FULL,
                    format!("admission queue full ({queued}/{capacity}); retry later"),
                ),
                Rejection::CostExceedsBudget { cost, budget } => WireResponse::error(
                    id,
                    429,
                    ERR_COST_EXCEEDS_BUDGET,
                    format!(
                        "estimated cost {} exceeds the server budget {}",
                        cost.units(),
                        budget.units()
                    ),
                ),
                Rejection::SessionLimit { pending, cap } => WireResponse::error(
                    id,
                    429,
                    ERR_SESSION_LIMIT,
                    format!("session has {pending}/{cap} requests pending"),
                ),
            };
            Some(response)
        }
    }
}

/// Maps the wire request onto a [`QueryRequest`]: PXQL text, pair, config
/// overrides, flags, and the deadline-bearing cancel token.
fn build_query_request(
    query_text: &str,
    wire: &WireRequest,
    service: &XplainService,
    deadline: Option<Instant>,
) -> QueryRequest {
    let mut request = QueryRequest::text(query_text);
    if let (Some(left), Some(right)) = (&wire.left, &wire.right) {
        request = request.with_pair(left.clone(), right.clone());
    }
    if wire.width.is_some() || wire.sample_size.is_some() {
        let mut config = service.config().clone();
        if let Some(width) = wire.width {
            config = config.with_width(width as usize);
        }
        if let Some(sample_size) = wire.sample_size {
            config = config.with_sample_size(sample_size as usize);
        }
        request = request.with_config(config);
    }
    if wire.auto_despite.unwrap_or(false) {
        request = request.with_despite_extension();
    }
    if wire.narrate.unwrap_or(false) {
        request = request.with_narration();
    }
    if wire.assess.unwrap_or(false) {
        request = request.with_assessment();
    }
    if let Some(deadline) = deadline {
        request = request.with_cancel(CancelToken::with_deadline(deadline));
    }
    request
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfxplain_core::ExecutionLog;

    /// The `shutdown` admin frame is loopback-only by default: a remote
    /// peer gets a typed 403 and the drain flag stays clear, while a
    /// loopback peer — or a remote one once the server opted into
    /// `allow_remote_shutdown` — starts the drain.
    #[test]
    fn shutdown_frame_is_gated_to_loopback_unless_opted_in() {
        let service = Arc::new(XplainService::new(ExecutionLog::new()));
        let pool = Arc::new(WorkerPool::new(1));
        let scheduler = Scheduler::new(pool, SchedulerConfig::default());
        let (completions, _responses) = mpsc::channel();
        let stats = Arc::new(ServerStats::default());
        let config = ServerConfig::default();
        let drain = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let frame = br#"{"id":1,"target":"shutdown"}"#;
        let call = |config: &ServerConfig, peer_loopback: bool| {
            handle_frame(
                1,
                frame,
                &service,
                &scheduler,
                &completions,
                &stats,
                config,
                started,
                &drain,
                peer_loopback,
            )
            .expect("shutdown is answered immediately")
        };

        // Remote peer, default config: refused, the server keeps serving.
        let refused = call(&config, false);
        assert_eq!(refused.code, 403);
        assert_eq!(refused.error.as_deref(), Some(protocol::ERR_FORBIDDEN));
        assert!(!drain.load(Ordering::Relaxed));

        // Loopback peer: honored.
        let honored = call(&config, true);
        assert_eq!(honored.code, 200);
        assert!(drain.load(Ordering::Relaxed));

        // Remote peer on a server that opted into remote shutdown.
        drain.store(false, Ordering::Relaxed);
        let opted = ServerConfig {
            allow_remote_shutdown: true,
            ..ServerConfig::default()
        };
        let honored = call(&opted, false);
        assert_eq!(honored.code, 200);
        assert!(drain.load(Ordering::Relaxed));
    }
}
