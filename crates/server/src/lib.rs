//! PXQL network front-end: a non-blocking TCP server with cost-based
//! admission control.
//!
//! The [`XplainService`](perfxplain_core::XplainService) is `Sync` with
//! cached columnar views; this crate puts a wire protocol in front of it so
//! many clients can pose PXQL queries against one served log:
//!
//! * [`server`] — a single-threaded **non-blocking event loop** over std
//!   `TcpListener` (no async runtime): it owns every socket, frames the
//!   protocol, and never executes a query.
//! * [`scheduler`] — **cost-based admission control** in front of a
//!   bounded [`WorkerPool`](perfxplain_core::pool::WorkerPool): each
//!   request's cost is estimated from its compiled plan
//!   ([`XplainService::estimate_cost`](perfxplain_core::XplainService::estimate_cost))
//!   and charged against a configurable concurrent budget, with a bounded
//!   FIFO queue, per-session fairness caps, queued-deadline expiry, and
//!   typed `429` load shedding when the queue is full.
//! * [`protocol`] — the line-delimited JSON codec ([`WireRequest`] /
//!   [`WireResponse`]).
//! * [`client`] — a blocking client plus the open-loop many-client load
//!   driver behind the `serve_qps` benchmark and the CI smoke test.
//!
//! # Protocol reference
//!
//! The protocol is line-delimited JSON over TCP: the client writes one JSON
//! object per line, the server answers one JSON object per line.  Requests
//! may be pipelined; responses carry the request's `id` and may complete
//! out of order (admission decisions return immediately, query answers
//! return when a worker finishes).
//!
//! Request fields (all optional except `query`):
//!
//! ```text
//! {"id": 1,                         // echoed on the response
//!  "query": "DESPITE inputsize_compare = GT\nOBSERVED ...",
//!  "left": "job_0", "right": "job_2",   // pair of interest
//!  "width": 3, "sample_size": 2000,     // per-request config overrides
//!  "auto_despite": false,               // Section 6.4 despite extension
//!  "narrate": false, "assess": false,   // narration / quality scoring
//!  "timeout_ms": 5000}                  // per-request deadline
//! ```
//!
//! Success response (`status: "ok"`, code 200): `because` / `despite` as
//! rendered atom strings, optional `narration`, optional `precision` /
//! `generality` / `relevance`, plus `generation`, `view_reused`,
//! `related_pairs` (the measured training work) and `cost_units` — the
//! admission charge *refined* down to the measured work: queries are
//! admitted on the candidate-space upper bound, then refund the
//! estimate/actual difference to the budget mid-flight once the view is
//! built ([`ChargeHandle`](scheduler::ChargeHandle)).
//!
//! A request with `"target": "append"` carries a `records` field — a JSON
//! array of execution records, encoded as a string — and appends them to
//! the served log without restarting it.  The event loop answers inline
//! with the log's new `generation` and the `appended` count; cached
//! columnar views are *delta-maintained*
//! ([`XplainService::append`](perfxplain_core::XplainService::append)), so
//! the next query pays an O(tail) view refresh rather than a full
//! re-encode.  [`Client::append`] wraps the encoding.
//!
//! A request with `"target": "status"` (and no `query`) is a **status
//! probe**: the event loop answers it immediately — no admission charge,
//! no worker — so it keeps working while the query path is saturated.
//! The response carries `uptime_ms`, the served log `generation`, the
//! `admitted` / `shed` / `expired` / `cancelled` counters, the current
//! `queue_depth`, `budget_in_use` / `budget_total` in cost units, the
//! cumulative `refunded_units`, and the live-view delta stats
//! (`base_rows` / `tail_rows` / `delta_refreshes` / `full_rebuilds` /
//! `compactions` / `last_compaction_unix_ms`).
//!
//! Error responses (`status: "error"`) carry an HTTP-style `code`, a
//! machine-readable `error` kind and a human-readable `message`:
//!
//! | code | kind                   | meaning                                   |
//! |------|------------------------|-------------------------------------------|
//! | 400  | `bad_frame`            | unparseable JSON / missing query / oversized line |
//! | 400  | `pxql`                 | PXQL parse or bind failure                |
//! | 404  | `unknown_execution`    | pair id not in the served log             |
//! | 408  | `deadline`             | deadline passed (queued or mid-execution) |
//! | 422  | `precondition`         | query preconditions / not enough pairs    |
//! | 429  | `shed_queue_full`      | admission queue full — retry later        |
//! | 429  | `cost_exceeds_budget`  | plan cost above the whole server budget   |
//! | 429  | `session_limit`        | too many pending requests on this session |
//! | 499  | `cancelled`            | request cancelled                         |
//! | 500  | `internal`             | unexpected server-side failure            |
//!
//! A malformed frame never kills the connection (the server answers with
//! `bad_frame` and keeps reading), with one exception: a line longer than
//! [`ServerConfig::max_frame_bytes`] is answered and then the connection is
//! closed, because the rest of the oversized line cannot be re-framed.
//!
//! Under `--features failpoints` the event loop's socket paths carry the
//! `"server.accept"` / `"server.read"` / `"server.write"` fault-injection
//! sites (see [`perfxplain_core::failpoints`]): injected transient kinds
//! defer the operation to the next tick, anything else behaves like the
//! corresponding real socket error.  All three inline to no-ops when the
//! feature is off.
//!
//! # Quickstart
//!
//! ```no_run
//! use perfxplain_core::{ExecutionLog, XplainService};
//! use perfxplain_server::{spawn, Client, ServerConfig, WireRequest};
//! use std::sync::Arc;
//!
//! let service = Arc::new(XplainService::new(ExecutionLog::new()));
//! let handle = spawn(service, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(&handle.addr().to_string()).unwrap();
//! let response = client
//!     .call(&WireRequest {
//!         query: Some("OBSERVED duration_compare = SIM\n\
//!                      EXPECTED duration_compare = GT".to_string()),
//!         left: Some("job_0".to_string()),
//!         right: Some("job_1".to_string()),
//!         ..WireRequest::default()
//!     })
//!     .unwrap();
//! println!("{:?} {:?}", response.code, response.because);
//! ```

pub mod client;
pub mod cost;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::{default_request, run_load, AppendAck, Client, LoadReport};
pub use cost::QueryCost;
pub use protocol::{WireRequest, WireResponse};
pub use scheduler::{ChargeHandle, Rejection, Scheduler, SchedulerConfig, SchedulerStats};
pub use server::{spawn, ServerConfig, ServerHandle, ServerStats, StatsSnapshot};
