//! A blocking protocol client and the many-client load driver.
//!
//! [`Client`] is the one-connection building block (connect, send a
//! [`WireRequest`], read a [`WireResponse`] per line).  [`run_load`] drives
//! an open-loop, many-client workload: every connection runs on its own
//! thread issuing requests back to back, so with `c` connections the
//! server sees `c` concurrent request streams regardless of how fast it
//! answers — the arrival rate does not slow down when the server queues,
//! which is exactly the regime admission control exists for.  The driver
//! records per-request latency and tallies responses by kind, feeding both
//! the `serve_qps` benchmark scenario and the CI serve-smoke job.

use crate::protocol::{WireRequest, WireResponse};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A blocking line-protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Acknowledgement for a (possibly multi-frame) append drive.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendAck {
    /// Records the server accepted into the served log.
    pub appended: u64,
    /// The log generation after the last accepted batch.
    pub generation: u64,
    /// True only when *every* batch was acknowledged durable — fsynced to
    /// the server's append journal before the ack was sent.  False when the
    /// server runs without a journal or under a deferred fsync policy.
    pub durable: bool,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request frame without waiting for the response (pipelining).
    pub fn send(&mut self, request: &WireRequest) -> std::io::Result<()> {
        let mut line = serde_json::to_string(request)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        self.stream.write_all(line.as_bytes())
    }

    /// Sends a raw line verbatim (for protocol tests: malformed frames).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())
    }

    /// Reads the next response frame.
    pub fn recv(&mut self) -> std::io::Result<WireResponse> {
        let mut line = String::new();
        loop {
            line.clear();
            let read = self.reader.read_line(&mut line)?;
            if read == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        serde_json::from_str(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends one request and waits for its response.
    pub fn call(&mut self, request: &WireRequest) -> std::io::Result<WireResponse> {
        self.send(request)?;
        self.recv()
    }

    /// Appends a batch of execution records to the served log (the
    /// `"append"` target) and waits for the acknowledgement, which carries
    /// the log's new generation and the number of records accepted.
    pub fn append(
        &mut self,
        records: &[perfxplain_core::ExecutionRecord],
    ) -> std::io::Result<WireResponse> {
        let records = serde_json::to_string(records)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.call(&WireRequest {
            target: Some("append".to_string()),
            records: Some(records),
            ..WireRequest::default()
        })
    }

    /// [`Client::append`] for batches of any size: splits `records` into as
    /// many `append` requests as needed to keep every frame under
    /// `max_frame_bytes` (the server's line cap —
    /// [`ServerConfig::max_frame_bytes`](crate::ServerConfig), 1 MiB by
    /// default), sized by each record's actual serialized length.  Returns
    /// an [`AppendAck`] totalling the drive; a rejected batch surfaces the
    /// server's typed error as [`std::io::Error`].  A single record too
    /// large for one frame is sent anyway, so the server's own limit stays
    /// authoritative.
    pub fn append_batched(
        &mut self,
        records: &[perfxplain_core::ExecutionRecord],
        max_frame_bytes: usize,
    ) -> std::io::Result<AppendAck> {
        // Budget for the record array inside one frame: the line cap minus
        // generous headroom for the request envelope and JSON-string
        // escaping of the embedded array.
        let budget = max_frame_bytes.saturating_sub(1024) / 2;
        let mut total = AppendAck {
            durable: true,
            ..AppendAck::default()
        };
        let mut batches = 0u64;
        let mut batch_start = 0;
        let mut batch_bytes = 2; // "[]"
        for (i, record) in records.iter().enumerate() {
            let bytes = serde_json::to_string(record)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
                .len()
                + 1; // the separating comma
            if i > batch_start && batch_bytes + bytes > budget {
                let ack = self.append_checked(&records[batch_start..i])?;
                total.appended += ack.appended;
                total.generation = ack.generation;
                total.durable &= ack.durable;
                batches += 1;
                batch_start = i;
                batch_bytes = 2;
            }
            batch_bytes += bytes;
        }
        if batch_start < records.len() {
            let ack = self.append_checked(&records[batch_start..])?;
            total.appended += ack.appended;
            total.generation = ack.generation;
            total.durable &= ack.durable;
            batches += 1;
        }
        if batches == 0 {
            total.durable = false;
        }
        Ok(total)
    }

    /// One `append` call with a non-ok response turned into an error.
    fn append_checked(
        &mut self,
        records: &[perfxplain_core::ExecutionRecord],
    ) -> std::io::Result<AppendAck> {
        let response = self.append(records)?;
        if !response.is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "server rejected the append: {} ({})",
                    response.message.as_deref().unwrap_or("no message"),
                    response.error.as_deref().unwrap_or("unknown error"),
                ),
            ));
        }
        Ok(AppendAck {
            appended: response.appended.unwrap_or(0),
            generation: response.generation.unwrap_or(0),
            durable: response.durable.unwrap_or(false),
        })
    }

    /// Asks the server to drain and shut down (the `"shutdown"` admin
    /// frame): it stops accepting new connections, finishes queued and
    /// in-flight requests within its drain deadline, and exits.  Returns
    /// the acknowledgement; the connection is useless afterwards.  Servers
    /// honor the frame only from loopback peers unless they opted into
    /// `allow_remote_shutdown` — a remote client gets a 403 `forbidden`
    /// response and the server keeps serving.
    pub fn shutdown(&mut self) -> std::io::Result<WireResponse> {
        self.call(&WireRequest {
            target: Some("shutdown".to_string()),
            ..WireRequest::default()
        })
    }
}

/// Aggregate outcome of a [`run_load`] drive.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Success responses.
    pub ok: u64,
    /// Admission rejections (429: queue full / cost / session limit).
    pub shed: u64,
    /// Deadline expirations (408).
    pub deadline: u64,
    /// Other typed errors.
    pub errors: u64,
    /// Transport failures (connection dropped mid-request).
    pub transport_errors: u64,
    /// Wall-clock time of the whole drive.
    pub elapsed: Duration,
    /// Sustained completed responses per second over the drive.
    pub qps: f64,
    /// Median latency of completed responses, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

/// Latency percentile over a sorted sample (nearest-rank).
fn percentile_ms(sorted: &[Duration], fraction: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * fraction).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Drives `connections` concurrent client connections, each issuing
/// `requests_per_connection` requests back to back; `make_request` builds
/// the request for `(connection, sequence)`.  Per-request latency is
/// measured call-to-response; shed and expired responses count toward
/// totals but not latency percentiles (they return in microseconds and
/// would flatter the tail).
pub fn run_load(
    addr: &str,
    connections: usize,
    requests_per_connection: usize,
    make_request: impl Fn(usize, usize) -> WireRequest + Sync,
) -> std::io::Result<LoadReport> {
    let started = Instant::now();
    let per_connection: Vec<(Vec<Duration>, LoadReport)> = std::thread::scope(|scope| {
        let make_request = &make_request;
        let handles: Vec<_> = (0..connections)
            .map(|connection| {
                scope.spawn(move || -> std::io::Result<(Vec<Duration>, LoadReport)> {
                    let mut client = Client::connect(addr)?;
                    let mut latencies = Vec::with_capacity(requests_per_connection);
                    let mut report = LoadReport::default();
                    for sequence in 0..requests_per_connection {
                        let request = make_request(connection, sequence);
                        report.sent += 1;
                        let sent_at = Instant::now();
                        match client.call(&request) {
                            Ok(response) if response.is_ok() => {
                                report.ok += 1;
                                latencies.push(sent_at.elapsed());
                            }
                            Ok(response) if response.is_shed() => report.shed += 1,
                            Ok(response) if response.code == 408 => report.deadline += 1,
                            Ok(_) => report.errors += 1,
                            Err(_) => {
                                report.transport_errors += 1;
                                break;
                            }
                        }
                    }
                    Ok((latencies, report))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join().expect("load thread panicked") {
                Ok(result) => result,
                Err(_) => {
                    // A connection that failed outright still counts as a
                    // transport error rather than sinking the whole drive.
                    let mut report = LoadReport::default();
                    report.transport_errors += 1;
                    (Vec::new(), report)
                }
            })
            .collect()
    });

    let mut total = LoadReport::default();
    let mut latencies: Vec<Duration> = Vec::new();
    for (connection_latencies, report) in per_connection {
        total.sent += report.sent;
        total.ok += report.ok;
        total.shed += report.shed;
        total.deadline += report.deadline;
        total.errors += report.errors;
        total.transport_errors += report.transport_errors;
        latencies.extend(connection_latencies);
    }
    total.elapsed = started.elapsed();
    let completed = total.ok + total.shed + total.deadline + total.errors;
    total.qps = completed as f64 / total.elapsed.as_secs_f64().max(1e-9);
    latencies.sort();
    total.p50_ms = percentile_ms(&latencies, 0.50);
    total.p99_ms = percentile_ms(&latencies, 0.99);
    Ok(total)
}

/// Builds the canonical benchmark request against a
/// [`blocked_log`-style](crate) synthetic workload: "why do these two jobs
/// take the same time despite different input sizes".
pub fn default_request(left: &str, right: &str) -> WireRequest {
    WireRequest {
        query: Some(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT"
                .to_string(),
        ),
        left: Some(left.to_string()),
        right: Some(right.to_string()),
        ..WireRequest::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&sorted, 0.50), 50.0);
        assert_eq!(percentile_ms(&sorted, 0.99), 99.0);
        assert_eq!(percentile_ms(&sorted, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[Duration::from_millis(7)], 0.99), 7.0);
    }

    #[test]
    fn responses_without_protocol_access_are_transport_errors() {
        // Nothing is listening on this port: connect fails cleanly.
        let result = Client::connect("127.0.0.1:1");
        assert!(result.is_err());
    }

    #[test]
    fn default_request_is_well_formed() {
        let request = default_request("job_0", "job_2");
        let line = serde_json::to_string(&request).unwrap();
        let parsed = crate::protocol::decode_request(line.as_bytes()).unwrap();
        assert_eq!(parsed.left.as_deref(), Some("job_0"));
        assert!(parsed.query.unwrap().contains("DESPITE"));
    }
}
