//! Job configuration files (`job.xml`).
//!
//! Hadoop stores the effective configuration of every submitted job as an
//! XML file next to the job-history file; PerfXplain reads the configuration
//! parameters it cares about (block size, reduce task count, io.sort.factor,
//! the Pig script, …) from it.  This module renders and parses a minimal but
//! well-formed version of that format without any XML dependency.

use mrsim::JobTrace;
use std::collections::BTreeMap;

/// Configuration keys written for every job.
pub mod keys {
    /// HDFS block size in bytes (`dfs.block.size`).
    pub const BLOCK_SIZE: &str = "dfs.block.size";
    /// Number of reduce tasks (`mapred.reduce.tasks`).
    pub const REDUCE_TASKS: &str = "mapred.reduce.tasks";
    /// Merge fan-in (`io.sort.factor`).
    pub const IO_SORT_FACTOR: &str = "io.sort.factor";
    /// Job name (`mapred.job.name`).
    pub const JOB_NAME: &str = "mapred.job.name";
    /// The Pig script behind the job (`pig.script.name`).
    pub const PIG_SCRIPT: &str = "pig.script.name";
    /// Number of instances of the cluster (`perfxplain.cluster.instances`).
    pub const NUM_INSTANCES: &str = "perfxplain.cluster.instances";
    /// Reduce-tasks factor used to derive `mapred.reduce.tasks`.
    pub const REDUCE_TASKS_FACTOR: &str = "perfxplain.reduce.tasks.factor";
    /// Total input size in bytes.
    pub const INPUT_BYTES: &str = "perfxplain.input.bytes";
    /// Total input records.
    pub const INPUT_RECORDS: &str = "perfxplain.input.records";
    /// Map slots per instance.
    pub const MAP_SLOTS: &str = "mapred.tasktracker.map.tasks.maximum";
    /// Reduce slots per instance.
    pub const REDUCE_SLOTS: &str = "mapred.tasktracker.reduce.tasks.maximum";
}

fn escape_xml(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn unescape_xml(text: &str) -> String {
    text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

/// Renders a configuration map as a `job.xml` document.
pub fn render_conf(properties: &BTreeMap<String, String>) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n<configuration>\n");
    for (name, value) in properties {
        out.push_str(&format!(
            "  <property><name>{}</name><value>{}</value></property>\n",
            escape_xml(name),
            escape_xml(value)
        ));
    }
    out.push_str("</configuration>\n");
    out
}

/// Builds the configuration map of a simulated job and renders it.
pub fn render_job_conf(trace: &JobTrace) -> String {
    let mut properties = BTreeMap::new();
    properties.insert(
        keys::BLOCK_SIZE.to_string(),
        trace.spec.dfs_block_size.to_string(),
    );
    properties.insert(
        keys::REDUCE_TASKS.to_string(),
        trace
            .spec
            .num_reduce_tasks(trace.cluster.num_instances)
            .to_string(),
    );
    properties.insert(
        keys::IO_SORT_FACTOR.to_string(),
        trace.spec.io_sort_factor.to_string(),
    );
    properties.insert(keys::JOB_NAME.to_string(), trace.job_name.clone());
    properties.insert(
        keys::PIG_SCRIPT.to_string(),
        trace.spec.script.file_name().to_string(),
    );
    properties.insert(
        keys::NUM_INSTANCES.to_string(),
        trace.cluster.num_instances.to_string(),
    );
    properties.insert(
        keys::REDUCE_TASKS_FACTOR.to_string(),
        trace.spec.reduce_tasks_factor.to_string(),
    );
    properties.insert(
        keys::INPUT_BYTES.to_string(),
        trace.spec.input_bytes.to_string(),
    );
    properties.insert(
        keys::INPUT_RECORDS.to_string(),
        trace.spec.input_records.to_string(),
    );
    properties.insert(
        keys::MAP_SLOTS.to_string(),
        trace.cluster.map_slots_per_instance.to_string(),
    );
    properties.insert(
        keys::REDUCE_SLOTS.to_string(),
        trace.cluster.reduce_slots_per_instance.to_string(),
    );
    render_conf(&properties)
}

/// Parses a `job.xml` document back into a configuration map.  Unknown
/// markup is ignored; only `<property><name>…</name><value>…</value>`
/// elements are read.
pub fn parse_job_conf(xml: &str) -> BTreeMap<String, String> {
    let mut properties = BTreeMap::new();
    let mut rest = xml;
    while let Some(start) = rest.find("<property>") {
        let Some(end) = rest[start..].find("</property>") else {
            break;
        };
        let body = &rest[start + "<property>".len()..start + end];
        let name = extract(body, "name");
        let value = extract(body, "value");
        if let (Some(name), Some(value)) = (name, value) {
            properties.insert(name, value);
        }
        rest = &rest[start + end + "</property>".len()..];
    }
    properties
}

fn extract(body: &str, tag: &str) -> Option<String> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start = body.find(&open)? + open.len();
    let end = body[start..].find(&close)? + start;
    Some(unescape_xml(&body[start..end]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::{Cluster, ClusterSpec, JobSpec};

    fn trace() -> JobTrace {
        Cluster::new(ClusterSpec::with_instances(4), 9).run_job(JobSpec::default())
    }

    #[test]
    fn conf_round_trip() {
        let trace = trace();
        let xml = render_job_conf(&trace);
        assert!(xml.contains("<configuration>"));
        let parsed = parse_job_conf(&xml);
        assert_eq!(
            parsed.get(keys::BLOCK_SIZE).map(String::as_str),
            Some(trace.spec.dfs_block_size.to_string().as_str())
        );
        assert_eq!(
            parsed.get(keys::NUM_INSTANCES).map(String::as_str),
            Some("4")
        );
        assert_eq!(
            parsed.get(keys::PIG_SCRIPT).map(String::as_str),
            Some("simple-filter.pig")
        );
        assert_eq!(parsed.len(), 11);
    }

    #[test]
    fn xml_escaping_round_trips() {
        let mut properties = BTreeMap::new();
        properties.insert("weird".to_string(), "a<b & c>d".to_string());
        let xml = render_conf(&properties);
        assert!(!xml.contains("a<b"));
        let parsed = parse_job_conf(&xml);
        assert_eq!(parsed.get("weird").map(String::as_str), Some("a<b & c>d"));
    }

    #[test]
    fn malformed_documents_do_not_panic() {
        assert!(parse_job_conf("").is_empty());
        assert!(parse_job_conf("<configuration><property><name>x</name>").is_empty());
        let partial = parse_job_conf(
            "<property><name>ok</name><value>1</value></property><property>broken</property>",
        );
        assert_eq!(partial.len(), 1);
    }
}
