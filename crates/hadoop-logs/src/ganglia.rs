//! Ganglia metric dumps: rendering, parsing and windowed averaging.
//!
//! The paper runs Ganglia on every instance and samples each metric every
//! five seconds; PerfXplain computes, for every task, the average value of
//! every metric over the task's execution window on the instance the task
//! ran on, and percolates those averages up to jobs.
//!
//! The dump format used here is a plain CSV with one row per
//! `(timestamp, host, metric, value)`, similar to what `gmetad` exports.

use mrsim::GangliaSample;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed metric row.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Sample time in seconds.
    pub time: f64,
    /// Hostname of the instance.
    pub host: String,
    /// Metric name.
    pub metric: String,
    /// Metric value.
    pub value: f64,
}

/// Renders the samples of a job into the CSV dump format.
pub fn render_ganglia_csv(samples: &[GangliaSample]) -> String {
    let mut out = String::from("timestamp,host,metric,value\n");
    for sample in samples {
        for (metric, value) in &sample.metrics {
            let _ = writeln!(
                out,
                "{:.1},{},{},{}",
                sample.time, sample.hostname, metric, value
            );
        }
    }
    out
}

/// Parses a CSV dump.  Malformed rows are skipped (real monitoring dumps are
/// never pristine); the header row is optional.
pub fn parse_ganglia_csv(text: &str) -> Vec<MetricRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("timestamp") {
            continue;
        }
        let mut parts = line.splitn(4, ',');
        let (Some(time), Some(host), Some(metric), Some(value)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let (Ok(time), Ok(value)) = (time.parse::<f64>(), value.parse::<f64>()) else {
            continue;
        };
        rows.push(MetricRow {
            time,
            host: host.to_string(),
            metric: metric.to_string(),
            value,
        });
    }
    rows
}

/// Averages every metric of `host` over the window `[start, end]`.
///
/// Returns an empty map when no sample of that host falls inside the window
/// (the caller then typically widens the window to the nearest sample).
pub fn windowed_average(
    rows: &[MetricRow],
    host: &str,
    start: f64,
    end: f64,
) -> BTreeMap<String, f64> {
    let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for row in rows {
        if row.host == host && row.time >= start - 1e-9 && row.time <= end + 1e-9 {
            let entry = sums.entry(row.metric.clone()).or_insert((0.0, 0));
            entry.0 += row.value;
            entry.1 += 1;
        }
    }
    sums.into_iter()
        .map(|(metric, (sum, count))| (metric, sum / count as f64))
        .collect()
}

/// Like [`windowed_average`] but, when the window contains no sample (tasks
/// shorter than the sampling period), falls back to the sample closest to
/// the window's midpoint.
pub fn windowed_average_or_nearest(
    rows: &[MetricRow],
    host: &str,
    start: f64,
    end: f64,
) -> BTreeMap<String, f64> {
    let averages = windowed_average(rows, host, start, end);
    if !averages.is_empty() {
        return averages;
    }
    let midpoint = (start + end) / 2.0;
    let mut nearest_time: Option<f64> = None;
    for row in rows.iter().filter(|r| r.host == host) {
        let better = match nearest_time {
            None => true,
            Some(t) => (row.time - midpoint).abs() < (t - midpoint).abs(),
        };
        if better {
            nearest_time = Some(row.time);
        }
    }
    match nearest_time {
        Some(t) => rows
            .iter()
            .filter(|r| r.host == host && (r.time - t).abs() < 1e-9)
            .map(|r| (r.metric.clone(), r.value))
            .collect(),
        None => BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::{Cluster, ClusterSpec, JobSpec};

    fn samples() -> Vec<GangliaSample> {
        Cluster::new(ClusterSpec::with_instances(2), 3)
            .run_job(JobSpec::default())
            .ganglia
    }

    #[test]
    fn csv_round_trip() {
        let samples = samples();
        let csv = render_ganglia_csv(&samples);
        let rows = parse_ganglia_csv(&csv);
        // One row per (sample, metric).
        let expected: usize = samples.iter().map(|s| s.metrics.len()).sum();
        assert_eq!(rows.len(), expected);
        // Values survive the round trip.
        let first = &samples[0];
        let (metric, value) = first.metrics.iter().next().unwrap();
        let row = rows
            .iter()
            .find(|r| {
                r.host == first.hostname
                    && (r.time - first.time).abs() < 0.05
                    && &r.metric == metric
            })
            .unwrap();
        assert!((row.value - value).abs() < 1e-9 * value.abs().max(1.0));
    }

    #[test]
    fn malformed_rows_are_skipped() {
        let rows = parse_ganglia_csv(
            "timestamp,host,metric,value\n5.0,host-a,cpu_user,42.0\nnot,a,row\n,,,\nbad,host,cpu,NaNope\n",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].metric, "cpu_user");
    }

    #[test]
    fn windowed_average_selects_host_and_window() {
        let rows = vec![
            MetricRow {
                time: 0.0,
                host: "a".into(),
                metric: "cpu_user".into(),
                value: 10.0,
            },
            MetricRow {
                time: 5.0,
                host: "a".into(),
                metric: "cpu_user".into(),
                value: 30.0,
            },
            MetricRow {
                time: 10.0,
                host: "a".into(),
                metric: "cpu_user".into(),
                value: 90.0,
            },
            MetricRow {
                time: 5.0,
                host: "b".into(),
                metric: "cpu_user".into(),
                value: 1.0,
            },
        ];
        let avg = windowed_average(&rows, "a", 0.0, 5.0);
        assert!((avg["cpu_user"] - 20.0).abs() < 1e-9);
        assert!(windowed_average(&rows, "c", 0.0, 5.0).is_empty());
    }

    #[test]
    fn nearest_fallback_for_short_windows() {
        let rows = vec![
            MetricRow {
                time: 0.0,
                host: "a".into(),
                metric: "load_one".into(),
                value: 1.0,
            },
            MetricRow {
                time: 5.0,
                host: "a".into(),
                metric: "load_one".into(),
                value: 2.0,
            },
        ];
        // Window (1.2, 2.8) contains no sample; the closest is t=0 to the
        // midpoint 2.0? No: |0-2| = 2, |5-2| = 3, so t=0 wins.
        let avg = windowed_average_or_nearest(&rows, "a", 1.2, 2.8);
        assert_eq!(avg.get("load_one"), Some(&1.0));
        assert!(windowed_average_or_nearest(&rows, "zzz", 0.0, 1.0).is_empty());
    }
}
