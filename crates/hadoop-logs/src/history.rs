//! Rendering simulated job traces into the Hadoop 1.x job-history format.
//!
//! A history file is a sequence of records, one per line, of the form
//!
//! ```text
//! Job JOBID="job_202601_0001" JOBNAME="PigLatin:simple-filter.pig" SUBMIT_TIME="1323158533000" .
//! Task TASKID="task_202601_0001_m_000000" TASK_TYPE="MAP" START_TIME="1323158541000" .
//! MapAttempt TASK_TYPE="MAP" TASKID="…" TASK_ATTEMPT_ID="…" TASK_STATUS="SUCCESS" FINISH_TIME="…" COUNTERS="{…}" .
//! ```
//!
//! Every record is an event type followed by `KEY="value"` attributes and a
//! terminating ` .`.  Values escape embedded quotes.  Timestamps are in
//! milliseconds, as Hadoop writes them.

use crate::counters::render_counters;
use mrsim::{JobTrace, TaskKind, TaskTrace};
use std::fmt::Write as _;

/// Converts simulated seconds into Hadoop-style millisecond timestamps.
pub fn to_millis(seconds: f64) -> u64 {
    (seconds * 1000.0).round().max(0.0) as u64
}

fn escape_value(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_record(out: &mut String, event: &str, attrs: &[(&str, String)]) {
    out.push_str(event);
    for (key, value) in attrs {
        let _ = write!(out, " {key}=\"{}\"", escape_value(value));
    }
    out.push_str(" .\n");
}

fn attempt_records(out: &mut String, task: &TaskTrace) {
    let event = match task.kind {
        TaskKind::Map => "MapAttempt",
        TaskKind::Reduce => "ReduceAttempt",
    };
    // Attempt start record.
    write_record(
        out,
        event,
        &[
            ("TASK_TYPE", task.kind.as_history_str().to_string()),
            ("TASKID", task.task_id.clone()),
            ("TASK_ATTEMPT_ID", task.attempt_id.clone()),
            ("START_TIME", to_millis(task.start_time).to_string()),
            ("TRACKER_NAME", task.tracker_name.clone()),
            ("HTTP_PORT", "50060".to_string()),
        ],
    );
    // Attempt finish record.
    let mut attrs: Vec<(&str, String)> = vec![
        ("TASK_TYPE", task.kind.as_history_str().to_string()),
        ("TASKID", task.task_id.clone()),
        ("TASK_ATTEMPT_ID", task.attempt_id.clone()),
        ("TASK_STATUS", "SUCCESS".to_string()),
    ];
    if let Some(shuffle) = task.shuffle_finish_time {
        attrs.push(("SHUFFLE_FINISHED", to_millis(shuffle).to_string()));
    }
    if let Some(sort) = task.sort_finish_time {
        attrs.push(("SORT_FINISHED", to_millis(sort).to_string()));
    }
    attrs.push(("FINISH_TIME", to_millis(task.finish_time).to_string()));
    attrs.push((
        "HOSTNAME",
        task.tracker_name
            .trim_start_matches("tracker_")
            .split(':')
            .next()
            .unwrap_or("unknown")
            .to_string(),
    ));
    attrs.push(("COUNTERS", render_counters(&task.counters)));
    write_record(out, event, &attrs);

    // Task summary record.
    write_record(
        out,
        "Task",
        &[
            ("TASKID", task.task_id.clone()),
            ("TASK_TYPE", task.kind.as_history_str().to_string()),
            ("TASK_STATUS", "SUCCESS".to_string()),
            ("FINISH_TIME", to_millis(task.finish_time).to_string()),
            ("COUNTERS", render_counters(&task.counters)),
        ],
    );
}

/// Renders a full job-history file for a simulated job.
pub fn render_job_history(trace: &JobTrace) -> String {
    let mut out = String::new();
    write_record(&mut out, "Meta", &[("VERSION", "1".to_string())]);
    write_record(
        &mut out,
        "Job",
        &[
            ("JOBID", trace.job_id.clone()),
            ("JOBNAME", trace.job_name.clone()),
            ("USER", "perfxplain".to_string()),
            ("SUBMIT_TIME", to_millis(trace.submit_time).to_string()),
            ("JOBCONF", format!("hdfs:///jobs/{}/job.xml", trace.job_id)),
        ],
    );
    let num_maps = trace.map_tasks().count();
    let num_reduces = trace.reduce_tasks().count();
    write_record(
        &mut out,
        "Job",
        &[
            ("JOBID", trace.job_id.clone()),
            ("LAUNCH_TIME", to_millis(trace.launch_time).to_string()),
            ("TOTAL_MAPS", num_maps.to_string()),
            ("TOTAL_REDUCES", num_reduces.to_string()),
            ("JOB_STATUS", "PREP".to_string()),
        ],
    );

    for task in &trace.tasks {
        // Task start record.
        write_record(
            &mut out,
            "Task",
            &[
                ("TASKID", task.task_id.clone()),
                ("TASK_TYPE", task.kind.as_history_str().to_string()),
                ("START_TIME", to_millis(task.start_time).to_string()),
                ("SPLITS", String::new()),
            ],
        );
        attempt_records(&mut out, task);
    }

    write_record(
        &mut out,
        "Job",
        &[
            ("JOBID", trace.job_id.clone()),
            ("FINISH_TIME", to_millis(trace.finish_time).to_string()),
            ("JOB_STATUS", "SUCCESS".to_string()),
            ("FINISHED_MAPS", num_maps.to_string()),
            ("FINISHED_REDUCES", num_reduces.to_string()),
            ("COUNTERS", render_counters(&trace.counters)),
        ],
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::{Cluster, ClusterSpec, JobSpec};

    fn trace() -> JobTrace {
        Cluster::new(ClusterSpec::with_instances(2), 5).run_job(JobSpec::default())
    }

    #[test]
    fn history_contains_all_record_types() {
        let trace = trace();
        let history = render_job_history(&trace);
        assert!(history.contains("Meta VERSION=\"1\""));
        assert!(history.contains(&format!("JOBID=\"{}\"", trace.job_id)));
        assert!(history.contains("MapAttempt TASK_TYPE=\"MAP\""));
        assert!(history.contains("ReduceAttempt TASK_TYPE=\"REDUCE\""));
        assert!(history.contains("SHUFFLE_FINISHED="));
        assert!(history.contains("JOB_STATUS=\"SUCCESS\""));
        // Every line is terminated by " ." like real history files.
        assert!(history.lines().all(|l| l.ends_with(" .")));
    }

    #[test]
    fn record_counts_match_tasks() {
        let trace = trace();
        let history = render_job_history(&trace);
        let attempts = history
            .lines()
            .filter(|l| l.starts_with("MapAttempt") || l.starts_with("ReduceAttempt"))
            .count();
        // Two attempt records (start + finish) per task.
        assert_eq!(attempts, trace.tasks.len() * 2);
    }

    #[test]
    fn timestamps_are_milliseconds() {
        assert_eq!(to_millis(1.5), 1500);
        assert_eq!(to_millis(-3.0), 0);
        let trace = trace();
        let history = render_job_history(&trace);
        let submit = format!("SUBMIT_TIME=\"{}\"", to_millis(trace.submit_time));
        assert!(history.contains(&submit));
    }

    #[test]
    fn values_with_quotes_are_escaped() {
        let mut out = String::new();
        write_record(
            &mut out,
            "Test",
            &[("KEY", "a \"quoted\" value".to_string())],
        );
        assert!(out.contains("KEY=\"a \\\"quoted\\\" value\""));
    }
}
