//! Hadoop counter strings.
//!
//! Hadoop 1.x job-history files embed counters in a compact bracketed
//! notation:
//!
//! ```text
//! {(org\.apache\.hadoop\.mapred\.Task$Counter)(Map-Reduce Framework)
//!  [(MAP_INPUT_RECORDS)(Map input records)(67108864)]
//!  [(MAP_OUTPUT_BYTES)(Map output bytes)(57042534)]}
//! ```
//!
//! This module renders and parses that notation (single group; the group
//! names are fixed, the counter display names are derived from the counter
//! keys).

use std::collections::BTreeMap;

/// The counter group used for framework counters.
pub const FRAMEWORK_GROUP: &str = "org.apache.hadoop.mapred.Task$Counter";
/// The human-readable group name.
pub const FRAMEWORK_GROUP_DISPLAY: &str = "Map-Reduce Framework";

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '(' | ')' | '[' | ']' | '{' | '}' | '.' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    out
}

fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(next) = chars.next() {
                out.push(next);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Derives the display name Hadoop shows for a counter key
/// (`MAP_INPUT_RECORDS` → `Map input records`).
pub fn display_name(key: &str) -> String {
    let lower = key.to_ascii_lowercase().replace('_', " ");
    let mut chars = lower.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Renders a counter map into the bracketed history notation.
pub fn render_counters(counters: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    out.push('{');
    out.push_str(&format!(
        "({})({})",
        escape(FRAMEWORK_GROUP),
        escape(FRAMEWORK_GROUP_DISPLAY)
    ));
    for (key, value) in counters {
        out.push_str(&format!(
            "[({})({})({})]",
            escape(key),
            escape(&display_name(key)),
            value
        ));
    }
    out.push('}');
    out
}

/// Splits a bracketed/parenthesised section, honouring escapes.  Returns the
/// content between the opening delimiter at `start` and its matching closer,
/// plus the index just past the closer.
fn delimited(text: &[char], start: usize, open: char, close: char) -> Option<(String, usize)> {
    if text.get(start) != Some(&open) {
        return None;
    }
    let mut out = String::new();
    let mut i = start + 1;
    let mut depth = 1usize;
    while i < text.len() {
        let c = text[i];
        if c == '\\' {
            if let Some(&next) = text.get(i + 1) {
                out.push('\\');
                out.push(next);
                i += 2;
                continue;
            }
        }
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some((out, i + 1));
            }
        }
        out.push(c);
        i += 1;
    }
    None
}

/// Parses a counters string back into a map.  Unknown or malformed sections
/// are skipped rather than failing the whole parse, mirroring how tolerant
/// Hadoop log consumers have to be.
pub fn parse_counters(text: &str) -> BTreeMap<String, u64> {
    let mut counters = BTreeMap::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '[' {
            if let Some((body, next)) = delimited(&chars, i, '[', ']') {
                let inner: Vec<char> = body.chars().collect();
                // [(KEY)(Display)(value)]
                if let Some((key, after_key)) = delimited(&inner, 0, '(', ')') {
                    if let Some((_display, after_display)) = delimited(&inner, after_key, '(', ')')
                    {
                        if let Some((value, _)) = delimited(&inner, after_display, '(', ')') {
                            if let Ok(parsed) = unescape(&value).trim().parse::<u64>() {
                                counters.insert(unescape(&key), parsed);
                            }
                        }
                    }
                }
                i = next;
                continue;
            }
        }
        i += 1;
    }
    counters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeMap<String, u64> {
        BTreeMap::from([
            ("MAP_INPUT_RECORDS".to_string(), 67_108_864u64),
            ("MAP_OUTPUT_BYTES".to_string(), 57_042_534u64),
            ("SPILLED_RECORDS".to_string(), 0u64),
        ])
    }

    #[test]
    fn round_trip() {
        let counters = sample();
        let text = render_counters(&counters);
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("(MAP_INPUT_RECORDS)(Map input records)(67108864)"));
        let parsed = parse_counters(&text);
        assert_eq!(parsed, counters);
    }

    #[test]
    fn display_name_formatting() {
        assert_eq!(display_name("MAP_INPUT_RECORDS"), "Map input records");
        assert_eq!(display_name("HDFS_BYTES_READ"), "Hdfs bytes read");
        assert_eq!(display_name(""), "");
    }

    #[test]
    fn escaping_special_characters() {
        assert_eq!(escape("a.b(c)"), "a\\.b\\(c\\)");
        assert_eq!(unescape("a\\.b\\(c\\)"), "a.b(c)");
        // The group name contains dots and a dollar sign and must survive.
        let text = render_counters(&sample());
        assert!(text.contains("org\\.apache\\.hadoop"));
    }

    #[test]
    fn malformed_sections_are_skipped() {
        let parsed = parse_counters("{(g)(G)[(OK)(Ok)(5)][(BROKEN)(missing value)]}");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.get("OK"), Some(&5));
        assert!(parse_counters("garbage").is_empty());
        assert!(parse_counters("").is_empty());
    }

    #[test]
    fn empty_counter_map() {
        let text = render_counters(&BTreeMap::new());
        assert_eq!(parse_counters(&text), BTreeMap::new());
    }
}
