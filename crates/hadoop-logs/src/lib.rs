//! Hadoop-style job-history logs, job configuration files and Ganglia dumps:
//! writer, parser and the feature collector that turns them into a
//! PerfXplain execution log.
//!
//! The paper's PerfXplain prototype extracts "all details it can from the
//! MapReduce log file" plus Ganglia system metrics and records 36 features
//! per job and 64 per task.  This crate reproduces that pipeline end to end
//! against the simulator in `perfxplain-sim`:
//!
//! 1. [`history`] renders a simulated [`mrsim::JobTrace`] into the Hadoop
//!    1.x job-history line format (`Job JOBID="…" …`, `MapAttempt …`,
//!    `ReduceAttempt …` records with `COUNTERS="{…}"` strings) and
//!    [`conf`] renders the job configuration XML (`dfs.block.size`,
//!    `mapred.reduce.tasks`, `io.sort.factor`, …).
//! 2. [`parser`] parses those text artefacts back into structured events —
//!    this is the "hand-rolled Hadoop log parsing" the reproduction calls
//!    for; nothing is smuggled through the simulator's in-memory structs.
//! 3. [`ganglia`] writes and parses the monitoring dump (one CSV row per
//!    instance, metric and five-second tick) and computes windowed averages.
//! 4. [`collector`] joins history, configuration and monitoring data into
//!    [`perfxplain_core::ExecutionRecord`]s — roughly 40 features per job
//!    and 60+ per task — and assembles the [`perfxplain_core::ExecutionLog`]
//!    that PerfXplain learns from.

pub mod bundle;
pub mod collector;
pub mod conf;
pub mod counters;
pub mod ganglia;
pub mod history;
pub mod parser;

pub use bundle::JobLogBundle;
pub use collector::{
    collect_bundles, collect_bundles_sharded, collect_traces, collect_traces_sharded, LogCollector,
};
pub use conf::{parse_job_conf, render_job_conf};
pub use ganglia::{parse_ganglia_csv, render_ganglia_csv, windowed_average};
pub use history::render_job_history;
pub use parser::{parse_job_history, HistoryEvent, ParsedJob, ParsedTaskAttempt};
