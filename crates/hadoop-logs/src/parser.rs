//! Parsing Hadoop 1.x job-history files.
//!
//! The parser is hand-rolled and tolerant: unknown event types and unknown
//! attributes are preserved in the generic event representation, and a job is
//! reconstructed by folding the events in order (submit → launch → task
//! starts → attempt finishes → job finish), exactly the way PerfXplain's
//! prototype consumed Hadoop's log files.

use crate::counters::parse_counters;
use std::collections::BTreeMap;
use std::fmt;

/// One parsed history record: an event type plus its attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEvent {
    /// Event type (`Job`, `Task`, `MapAttempt`, `ReduceAttempt`, `Meta`, …).
    pub event: String,
    /// Attribute key/value pairs in file order.
    pub attrs: BTreeMap<String, String>,
}

impl HistoryEvent {
    /// Convenience accessor.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// Attribute parsed as a millisecond timestamp converted to seconds.
    pub fn get_time_secs(&self, key: &str) -> Option<f64> {
        self.get(key)?
            .parse::<u64>()
            .ok()
            .map(|ms| ms as f64 / 1000.0)
    }

    /// Attribute parsed as an unsigned integer.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse::<u64>().ok()
    }
}

/// Parse error for history files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for HistoryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for HistoryParseError {}

/// Parses one history line into an event.
fn parse_line(line: &str, line_no: usize) -> Result<Option<HistoryEvent>, HistoryParseError> {
    let line = line.trim_end();
    let line = line.strip_suffix(" .").unwrap_or(line);
    if line.trim().is_empty() {
        return Ok(None);
    }
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0usize;

    // Event type.
    let mut event = String::new();
    while i < chars.len() && !chars[i].is_whitespace() {
        event.push(chars[i]);
        i += 1;
    }
    if event.is_empty() {
        return Ok(None);
    }

    let mut attrs = BTreeMap::new();
    while i < chars.len() {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i >= chars.len() {
            break;
        }
        // KEY
        let mut key = String::new();
        while i < chars.len() && chars[i] != '=' {
            key.push(chars[i]);
            i += 1;
        }
        if i >= chars.len() {
            return Err(HistoryParseError {
                line: line_no,
                message: format!("attribute '{key}' has no value"),
            });
        }
        i += 1; // '='
        if chars.get(i) != Some(&'"') {
            return Err(HistoryParseError {
                line: line_no,
                message: format!("attribute '{key}' value is not quoted"),
            });
        }
        i += 1; // opening quote
        let mut value = String::new();
        let mut closed = false;
        while i < chars.len() {
            match chars[i] {
                '\\' => {
                    if let Some(&next) = chars.get(i + 1) {
                        value.push(next);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    closed = true;
                    i += 1;
                    break;
                }
                c => {
                    value.push(c);
                    i += 1;
                }
            }
        }
        if !closed {
            return Err(HistoryParseError {
                line: line_no,
                message: format!("attribute '{key}' value is not terminated"),
            });
        }
        attrs.insert(key.trim().to_string(), value);
    }
    Ok(Some(HistoryEvent { event, attrs }))
}

/// Parses a whole history file into its events.
pub fn parse_history_events(text: &str) -> Result<Vec<HistoryEvent>, HistoryParseError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if let Some(event) = parse_line(line, idx + 1)? {
            events.push(event);
        }
    }
    Ok(events)
}

/// One reconstructed task attempt.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedTaskAttempt {
    /// Task identifier.
    pub task_id: String,
    /// Attempt identifier.
    pub attempt_id: String,
    /// `MAP` or `REDUCE`.
    pub task_type: String,
    /// Tracker the attempt ran on.
    pub tracker_name: String,
    /// Hostname extracted from the finish record.
    pub hostname: String,
    /// Start time in seconds.
    pub start_time: f64,
    /// Finish time in seconds.
    pub finish_time: f64,
    /// Shuffle-finished time (reduce attempts only).
    pub shuffle_finished: Option<f64>,
    /// Sort-finished time (reduce attempts only).
    pub sort_finished: Option<f64>,
    /// Task counters.
    pub counters: BTreeMap<String, u64>,
}

impl ParsedTaskAttempt {
    /// Attempt duration in seconds.
    pub fn duration(&self) -> f64 {
        self.finish_time - self.start_time
    }

    /// Whether this is a map attempt.
    pub fn is_map(&self) -> bool {
        self.task_type == "MAP"
    }
}

/// A reconstructed job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedJob {
    /// Job identifier.
    pub job_id: String,
    /// Job name.
    pub job_name: String,
    /// Submit time in seconds.
    pub submit_time: f64,
    /// Launch time in seconds.
    pub launch_time: f64,
    /// Finish time in seconds.
    pub finish_time: f64,
    /// Total map tasks as reported in the launch record.
    pub total_maps: u64,
    /// Total reduce tasks as reported in the launch record.
    pub total_reduces: u64,
    /// Final job status.
    pub status: String,
    /// Job-level counters from the finish record.
    pub counters: BTreeMap<String, u64>,
    /// Successful task attempts.
    pub attempts: Vec<ParsedTaskAttempt>,
}

impl ParsedJob {
    /// Job duration (submit to finish) in seconds.
    pub fn duration(&self) -> f64 {
        self.finish_time - self.submit_time
    }

    /// The map attempts.
    pub fn map_attempts(&self) -> impl Iterator<Item = &ParsedTaskAttempt> {
        self.attempts.iter().filter(|a| a.is_map())
    }

    /// The reduce attempts.
    pub fn reduce_attempts(&self) -> impl Iterator<Item = &ParsedTaskAttempt> {
        self.attempts.iter().filter(|a| !a.is_map())
    }
}

/// Parses a history file and folds its events into a [`ParsedJob`].
pub fn parse_job_history(text: &str) -> Result<ParsedJob, HistoryParseError> {
    let events = parse_history_events(text)?;
    let mut job = ParsedJob::default();
    // Attempt records come in (start, finish) pairs keyed by attempt id.
    let mut open_attempts: BTreeMap<String, ParsedTaskAttempt> = BTreeMap::new();

    for event in events {
        match event.event.as_str() {
            "Job" => {
                if let Some(id) = event.get("JOBID") {
                    job.job_id = id.to_string();
                }
                if let Some(name) = event.get("JOBNAME") {
                    job.job_name = name.to_string();
                }
                if let Some(t) = event.get_time_secs("SUBMIT_TIME") {
                    job.submit_time = t;
                }
                if let Some(t) = event.get_time_secs("LAUNCH_TIME") {
                    job.launch_time = t;
                }
                if let Some(t) = event.get_time_secs("FINISH_TIME") {
                    job.finish_time = t;
                    if let Some(status) = event.get("JOB_STATUS") {
                        job.status = status.to_string();
                    }
                    if let Some(counters) = event.get("COUNTERS") {
                        job.counters = parse_counters(counters);
                    }
                }
                if let Some(maps) = event.get_u64("TOTAL_MAPS") {
                    job.total_maps = maps;
                }
                if let Some(reduces) = event.get_u64("TOTAL_REDUCES") {
                    job.total_reduces = reduces;
                }
            }
            "MapAttempt" | "ReduceAttempt" => {
                let Some(attempt_id) = event.get("TASK_ATTEMPT_ID") else {
                    continue;
                };
                let entry = open_attempts
                    .entry(attempt_id.to_string())
                    .or_insert_with(|| ParsedTaskAttempt {
                        attempt_id: attempt_id.to_string(),
                        ..ParsedTaskAttempt::default()
                    });
                if let Some(task_id) = event.get("TASKID") {
                    entry.task_id = task_id.to_string();
                }
                if let Some(task_type) = event.get("TASK_TYPE") {
                    entry.task_type = task_type.to_string();
                }
                if let Some(tracker) = event.get("TRACKER_NAME") {
                    entry.tracker_name = tracker.to_string();
                }
                if let Some(hostname) = event.get("HOSTNAME") {
                    entry.hostname = hostname.to_string();
                }
                if let Some(t) = event.get_time_secs("START_TIME") {
                    entry.start_time = t;
                }
                if let Some(t) = event.get_time_secs("SHUFFLE_FINISHED") {
                    entry.shuffle_finished = Some(t);
                }
                if let Some(t) = event.get_time_secs("SORT_FINISHED") {
                    entry.sort_finished = Some(t);
                }
                if let Some(t) = event.get_time_secs("FINISH_TIME") {
                    entry.finish_time = t;
                }
                if let Some(counters) = event.get("COUNTERS") {
                    entry.counters = parse_counters(counters);
                }
            }
            // Task start/summary records carry no information the attempts
            // do not, and Meta records are versioning only.
            _ => {}
        }
    }

    job.attempts = open_attempts.into_values().collect();
    // Order attempts by start time, then id, for deterministic downstream
    // feature extraction.
    job.attempts.sort_by(|a, b| {
        a.start_time
            .partial_cmp(&b.start_time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.attempt_id.cmp(&b.attempt_id))
    });
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::render_job_history;
    use mrsim::{Cluster, ClusterSpec, JobSpec};

    fn round_trip_job() -> (mrsim::JobTrace, ParsedJob) {
        let trace = Cluster::new(ClusterSpec::with_instances(2), 5).run_job(JobSpec::default());
        let history = render_job_history(&trace);
        let parsed = parse_job_history(&history).expect("parse");
        (trace, parsed)
    }

    #[test]
    fn round_trip_preserves_job_structure() {
        let (trace, parsed) = round_trip_job();
        assert_eq!(parsed.job_id, trace.job_id);
        assert_eq!(parsed.job_name, trace.job_name);
        assert_eq!(parsed.status, "SUCCESS");
        assert_eq!(parsed.attempts.len(), trace.tasks.len());
        assert_eq!(parsed.total_maps as usize, trace.map_tasks().count());
        assert_eq!(parsed.total_reduces as usize, trace.reduce_tasks().count());
        // Millisecond rounding keeps times within 1 ms.
        assert!((parsed.duration() - trace.duration()).abs() < 0.002);
        assert_eq!(parsed.counters, trace.counters);
    }

    #[test]
    fn round_trip_preserves_task_details() {
        let (trace, parsed) = round_trip_job();
        for task in &trace.tasks {
            let attempt = parsed
                .attempts
                .iter()
                .find(|a| a.attempt_id == task.attempt_id)
                .expect("attempt present");
            assert_eq!(attempt.task_id, task.task_id);
            assert_eq!(attempt.counters, task.counters);
            assert!((attempt.duration() - task.duration()).abs() < 0.002);
            assert_eq!(attempt.is_map(), task.kind == mrsim::TaskKind::Map);
            if !attempt.is_map() {
                assert!(attempt.shuffle_finished.is_some());
                assert!(attempt.sort_finished.is_some());
            }
            assert!(!attempt.hostname.is_empty());
        }
    }

    #[test]
    fn generic_event_parsing() {
        let events =
            parse_history_events("Meta VERSION=\"1\" .\nJob JOBID=\"job_1\" USER=\"alice\" .\n")
                .unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, "Meta");
        assert_eq!(events[1].get("USER"), Some("alice"));
        assert_eq!(events[1].get_u64("MISSING"), None);
    }

    #[test]
    fn escaped_quotes_in_values() {
        let events = parse_history_events("Job NAME=\"a \\\"quoted\\\" value\" .").unwrap();
        assert_eq!(events[0].get("NAME"), Some("a \"quoted\" value"));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = parse_history_events("Job JOBID=\"ok\" .\nJob BROKEN .").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let err = parse_history_events("Job KEY=unquoted .").unwrap_err();
        assert!(err.message.contains("not quoted"));
        let err = parse_history_events("Job KEY=\"unterminated").unwrap_err();
        assert!(err.message.contains("not terminated"));
    }

    #[test]
    fn empty_input_gives_default_job() {
        let job = parse_job_history("").unwrap();
        assert!(job.job_id.is_empty());
        assert!(job.attempts.is_empty());
    }
}
