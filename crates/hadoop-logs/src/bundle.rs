//! A job's on-disk log bundle: history file, configuration XML and Ganglia
//! dump.
//!
//! PerfXplain's input is "a log of past MapReduce job executions along with
//! their detailed configuration and performance metrics"; in a Hadoop
//! deployment that log materialises as a directory per job containing the
//! job-history file, the `job.xml` configuration and (here) the exported
//! monitoring data.  [`JobLogBundle`] models that directory, can be built
//! from a simulated trace, written to disk and read back.

use crate::conf::render_job_conf;
use crate::ganglia::render_ganglia_csv;
use crate::history::render_job_history;
use mrsim::JobTrace;
use std::fs;
use std::io;
use std::path::Path;

/// File name of the job-history file inside a bundle directory.
pub const HISTORY_FILE: &str = "job_history.log";
/// File name of the configuration file inside a bundle directory.
pub const CONF_FILE: &str = "job.xml";
/// File name of the Ganglia dump inside a bundle directory.
pub const GANGLIA_FILE: &str = "ganglia.csv";

/// The textual log artefacts of one job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JobLogBundle {
    /// Job identifier (also the directory name on disk).
    pub job_id: String,
    /// Hadoop job-history text.
    pub history: String,
    /// `job.xml` configuration text.
    pub conf_xml: String,
    /// Ganglia CSV dump covering the job's execution window.
    pub ganglia_csv: String,
}

impl JobLogBundle {
    /// Renders the bundle of a simulated job trace.
    pub fn from_trace(trace: &JobTrace) -> Self {
        JobLogBundle {
            job_id: trace.job_id.clone(),
            history: render_job_history(trace),
            conf_xml: render_job_conf(trace),
            ganglia_csv: render_ganglia_csv(&trace.ganglia),
        }
    }

    /// Writes the bundle into `<root>/<job_id>/`.
    pub fn write_to_dir(&self, root: &Path) -> io::Result<()> {
        let dir = root.join(&self.job_id);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join(HISTORY_FILE), &self.history)?;
        fs::write(dir.join(CONF_FILE), &self.conf_xml)?;
        fs::write(dir.join(GANGLIA_FILE), &self.ganglia_csv)?;
        Ok(())
    }

    /// Reads a bundle from `<dir>` (a directory previously produced by
    /// [`JobLogBundle::write_to_dir`]).
    pub fn read_from_dir(dir: &Path) -> io::Result<Self> {
        let job_id = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unknown_job")
            .to_string();
        Ok(JobLogBundle {
            job_id,
            history: fs::read_to_string(dir.join(HISTORY_FILE))?,
            conf_xml: fs::read_to_string(dir.join(CONF_FILE))?,
            ganglia_csv: fs::read_to_string(dir.join(GANGLIA_FILE))?,
        })
    }

    /// Content fingerprint of the bundle (job id + all three files,
    /// deterministic FxHash-64).  Incremental snapshot re-ingest compares
    /// these against the manifest to skip shards whose bundles have not
    /// changed — without parsing them.
    pub fn fingerprint(&self) -> u64 {
        perfxplain_core::snapshot::fingerprint_texts([
            self.job_id.as_str(),
            &self.history,
            &self.conf_xml,
            &self.ganglia_csv,
        ])
    }

    /// Reads every bundle directory under `root`, sorted by job id.
    pub fn read_all(root: &Path) -> io::Result<Vec<Self>> {
        let mut bundles = Vec::new();
        for entry in fs::read_dir(root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                let dir = entry.path();
                if dir.join(HISTORY_FILE).exists() {
                    bundles.push(JobLogBundle::read_from_dir(&dir)?);
                }
            }
        }
        bundles.sort_by(|a, b| a.job_id.cmp(&b.job_id));
        Ok(bundles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::{Cluster, ClusterSpec, JobSpec};
    use std::env;

    fn trace(seed: u64) -> JobTrace {
        Cluster::new(ClusterSpec::with_instances(2), seed).run_job(JobSpec::default())
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = env::temp_dir().join(format!(
            "perfxplain-bundle-test-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bundle_contains_all_artefacts() {
        let bundle = JobLogBundle::from_trace(&trace(1));
        assert!(bundle.history.contains("JOB_STATUS=\"SUCCESS\""));
        assert!(bundle.conf_xml.contains("dfs.block.size"));
        assert!(bundle
            .ganglia_csv
            .starts_with("timestamp,host,metric,value"));
    }

    #[test]
    fn filesystem_round_trip() {
        let root = temp_dir("roundtrip");
        let a = JobLogBundle::from_trace(&trace(1));
        let b = JobLogBundle::from_trace(&trace(2));
        a.write_to_dir(&root).unwrap();
        b.write_to_dir(&root).unwrap();

        let read = JobLogBundle::read_all(&root).unwrap();
        assert_eq!(read.len(), 2);
        assert!(read.iter().any(|r| r == &a));
        assert!(read.iter().any(|r| r == &b));

        let single = JobLogBundle::read_from_dir(&root.join(&a.job_id)).unwrap();
        assert_eq!(single, a);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn read_all_skips_unrelated_directories() {
        let root = temp_dir("skips");
        fs::create_dir_all(root.join("not-a-bundle")).unwrap();
        fs::write(root.join("stray-file.txt"), "hello").unwrap();
        let bundle = JobLogBundle::from_trace(&trace(3));
        bundle.write_to_dir(&root).unwrap();
        let read = JobLogBundle::read_all(&root).unwrap();
        assert_eq!(read.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_files_surface_io_errors() {
        let root = temp_dir("missing");
        assert!(JobLogBundle::read_from_dir(&root.join("absent")).is_err());
        let _ = fs::remove_dir_all(&root);
    }
}
