//! The feature collector: from raw log artefacts to a PerfXplain execution
//! log.
//!
//! For every job bundle the collector parses the history file, the
//! configuration XML and the Ganglia dump, then emits
//!
//! * one job record with configuration parameters, data characteristics,
//!   job-level Hadoop counters and job-averaged Ganglia metrics
//!   (≈ 40 features — the paper records 36), and
//! * one task record per attempt with the task's timing, counters, placement
//!   and task-window-averaged Ganglia metrics plus the configuration of the
//!   job it belongs to (≈ 60 features — the paper records 64).

use crate::bundle::JobLogBundle;
use crate::conf::{keys, parse_job_conf};
use crate::ganglia::{parse_ganglia_csv, windowed_average_or_nearest, MetricRow};
use crate::parser::{parse_job_history, HistoryParseError, ParsedJob, ParsedTaskAttempt};
use mrsim::JobTrace;
use perfxplain_core::{ExecutionLog, ExecutionRecord, DURATION_FEATURE};
use pxql::Value;
use std::collections::BTreeMap;

/// Ganglia metrics averaged into job records (prefixed `avg_`).
pub const JOB_GANGLIA_METRICS: &[&str] = &[
    "cpu_user",
    "cpu_system",
    "cpu_idle",
    "cpu_wio",
    "load_one",
    "load_five",
    "load_fifteen",
    "proc_run",
    "proc_total",
    "mem_free",
    "bytes_in",
    "bytes_out",
    "pkts_in",
    "pkts_out",
];

/// Ganglia metrics averaged into task records (prefixed `avg_`).  Tasks keep
/// the full metric set, as the paper's prototype does.
pub const TASK_GANGLIA_METRICS: &[&str] = &[
    "boottime",
    "cpu_num",
    "cpu_speed",
    "cpu_user",
    "cpu_system",
    "cpu_idle",
    "cpu_wio",
    "load_one",
    "load_five",
    "load_fifteen",
    "proc_run",
    "proc_total",
    "mem_free",
    "mem_cached",
    "mem_buffers",
    "swap_free",
    "bytes_in",
    "bytes_out",
    "pkts_in",
    "pkts_out",
    "disk_free",
];

/// Hadoop counters copied (lower-cased) onto job records.
const JOB_COUNTERS: &[&str] = &[
    "HDFS_BYTES_READ",
    "HDFS_BYTES_WRITTEN",
    "FILE_BYTES_READ",
    "FILE_BYTES_WRITTEN",
    "MAP_INPUT_RECORDS",
    "MAP_INPUT_BYTES",
    "MAP_OUTPUT_RECORDS",
    "MAP_OUTPUT_BYTES",
    "REDUCE_INPUT_RECORDS",
    "REDUCE_INPUT_GROUPS",
    "REDUCE_OUTPUT_RECORDS",
    "REDUCE_SHUFFLE_BYTES",
    "SPILLED_RECORDS",
    "TOTAL_LAUNCHED_MAPS",
    "TOTAL_LAUNCHED_REDUCES",
];

/// Hadoop counters copied (lower-cased) onto task records.
const TASK_COUNTERS: &[&str] = &[
    "HDFS_BYTES_READ",
    "HDFS_BYTES_WRITTEN",
    "FILE_BYTES_READ",
    "FILE_BYTES_WRITTEN",
    "MAP_INPUT_RECORDS",
    "MAP_INPUT_BYTES",
    "MAP_OUTPUT_RECORDS",
    "MAP_OUTPUT_BYTES",
    "REDUCE_INPUT_RECORDS",
    "REDUCE_INPUT_GROUPS",
    "REDUCE_OUTPUT_RECORDS",
    "REDUCE_SHUFFLE_BYTES",
    "SPILLED_RECORDS",
    "COMBINE_INPUT_RECORDS",
    "COMBINE_OUTPUT_RECORDS",
];

/// The feature collector.
#[derive(Debug, Clone, Default)]
pub struct LogCollector {
    /// Whether Ganglia averages are collected (on by default; disabling them
    /// reproduces a deployment without cluster monitoring).
    pub include_ganglia: bool,
}

impl LogCollector {
    /// Creates a collector with the default configuration.
    pub fn new() -> Self {
        LogCollector {
            include_ganglia: true,
        }
    }

    /// Creates a collector that ignores the Ganglia dumps.
    pub fn without_ganglia() -> Self {
        LogCollector {
            include_ganglia: false,
        }
    }

    /// Collects one bundle into job + task records appended to `log`.
    pub fn collect_bundle(
        &self,
        bundle: &JobLogBundle,
        log: &mut ExecutionLog,
    ) -> Result<(), HistoryParseError> {
        let job = parse_job_history(&bundle.history)?;
        let conf = parse_job_conf(&bundle.conf_xml);
        let rows = if self.include_ganglia {
            parse_ganglia_csv(&bundle.ganglia_csv)
        } else {
            Vec::new()
        };

        log.push(self.job_record(&job, &conf, &rows));
        for attempt in &job.attempts {
            log.push(self.task_record(&job, attempt, &conf, &rows));
        }
        Ok(())
    }

    fn conf_num(conf: &BTreeMap<String, String>, key: &str) -> Value {
        conf.get(key)
            .and_then(|v| v.parse::<f64>().ok())
            .map(Value::Num)
            .unwrap_or(Value::Null)
    }

    fn conf_str(conf: &BTreeMap<String, String>, key: &str) -> Value {
        conf.get(key)
            .map(|v| Value::Str(v.clone()))
            .unwrap_or(Value::Null)
    }

    fn job_record(
        &self,
        job: &ParsedJob,
        conf: &BTreeMap<String, String>,
        rows: &[MetricRow],
    ) -> ExecutionRecord {
        let mut record = ExecutionRecord::job(&job.job_id);
        record.set_feature("jobname", job.job_name.as_str());
        record.set_feature("pigscript", Self::conf_str(conf, keys::PIG_SCRIPT));
        record.set_feature("numinstances", Self::conf_num(conf, keys::NUM_INSTANCES));
        record.set_feature("blocksize", Self::conf_num(conf, keys::BLOCK_SIZE));
        record.set_feature("numreducetasks", Self::conf_num(conf, keys::REDUCE_TASKS));
        record.set_feature(
            "reducetasksfactor",
            Self::conf_num(conf, keys::REDUCE_TASKS_FACTOR),
        );
        record.set_feature("iosortfactor", Self::conf_num(conf, keys::IO_SORT_FACTOR));
        record.set_feature("inputsize", Self::conf_num(conf, keys::INPUT_BYTES));
        record.set_feature("inputrecords", Self::conf_num(conf, keys::INPUT_RECORDS));
        record.set_feature("mapslots", Self::conf_num(conf, keys::MAP_SLOTS));
        record.set_feature("reduceslots", Self::conf_num(conf, keys::REDUCE_SLOTS));
        record.set_feature("nummaptasks", job.total_maps as f64);
        record.set_feature("submit_time", job.submit_time);
        record.set_feature("launch_time", job.launch_time);
        record.set_feature("finish_time", job.finish_time);
        record.set_feature(DURATION_FEATURE, job.duration());

        for counter in JOB_COUNTERS {
            if let Some(&value) = job.counters.get(*counter) {
                record.set_feature(counter.to_ascii_lowercase(), value as f64);
            }
        }

        if self.include_ganglia && !rows.is_empty() {
            // Average every metric across the tasks of the job (each task
            // contributes the average over its own window on its own host),
            // exactly how the paper percolates monitoring data up to jobs.
            let mut sums: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
            for attempt in &job.attempts {
                let averages = windowed_average_or_nearest(
                    rows,
                    &attempt.hostname,
                    attempt.start_time,
                    attempt.finish_time,
                );
                for metric in JOB_GANGLIA_METRICS {
                    if let Some(&value) = averages.get(*metric) {
                        let entry = sums.entry(metric).or_insert((0.0, 0));
                        entry.0 += value;
                        entry.1 += 1;
                    }
                }
            }
            for (metric, (sum, count)) in sums {
                if count > 0 {
                    record.set_feature(format!("avg_{metric}"), sum / count as f64);
                }
            }
        }
        record
    }

    fn task_record(
        &self,
        job: &ParsedJob,
        attempt: &ParsedTaskAttempt,
        conf: &BTreeMap<String, String>,
        rows: &[MetricRow],
    ) -> ExecutionRecord {
        let mut record = ExecutionRecord::task(&attempt.task_id, &job.job_id);
        record.set_feature("jobid", job.job_id.as_str());
        record.set_feature("tasktype", attempt.task_type.as_str());
        record.set_feature("tracker_name", attempt.tracker_name.as_str());
        record.set_feature("hostname", attempt.hostname.as_str());
        record.set_feature("start_time", attempt.start_time);
        record.set_feature("finish_time", attempt.finish_time);
        record.set_feature(DURATION_FEATURE, attempt.duration());

        if let Some(shuffle) = attempt.shuffle_finished {
            record.set_feature("shuffletime", shuffle - attempt.start_time);
        }
        if let (Some(shuffle), Some(sort)) = (attempt.shuffle_finished, attempt.sort_finished) {
            record.set_feature("sorttime", sort - shuffle);
        }
        if let Some(sort) = attempt.sort_finished {
            record.set_feature("taskfinishtime", attempt.finish_time - sort);
        }

        // The amount of data the task processed: HDFS input for map tasks,
        // shuffled bytes for reduce tasks.  The task-level PXQL queries of
        // the paper compare tasks on this `inputsize` feature.
        let inputsize = if attempt.is_map() {
            attempt.counters.get("HDFS_BYTES_READ").copied()
        } else {
            attempt.counters.get("REDUCE_SHUFFLE_BYTES").copied()
        };
        if let Some(bytes) = inputsize {
            record.set_feature("inputsize", bytes as f64);
        }

        for counter in TASK_COUNTERS {
            if let Some(&value) = attempt.counters.get(*counter) {
                record.set_feature(counter.to_ascii_lowercase(), value as f64);
            }
        }

        // Configuration of the owning job.
        record.set_feature("pigscript", Self::conf_str(conf, keys::PIG_SCRIPT));
        record.set_feature("numinstances", Self::conf_num(conf, keys::NUM_INSTANCES));
        record.set_feature("blocksize", Self::conf_num(conf, keys::BLOCK_SIZE));
        record.set_feature("iosortfactor", Self::conf_num(conf, keys::IO_SORT_FACTOR));
        record.set_feature("numreducetasks", Self::conf_num(conf, keys::REDUCE_TASKS));

        if self.include_ganglia && !rows.is_empty() {
            let averages = windowed_average_or_nearest(
                rows,
                &attempt.hostname,
                attempt.start_time,
                attempt.finish_time,
            );
            for metric in TASK_GANGLIA_METRICS {
                if let Some(&value) = averages.get(*metric) {
                    record.set_feature(format!("avg_{metric}"), value);
                }
            }
        }
        record
    }
}

/// Collects a set of bundles into a fresh execution log.
pub fn collect_bundles(bundles: &[JobLogBundle]) -> Result<ExecutionLog, HistoryParseError> {
    let collector = LogCollector::new();
    let mut log = ExecutionLog::new();
    for bundle in bundles {
        collector.collect_bundle(bundle, &mut log)?;
    }
    log.rebuild_catalogs();
    Ok(log)
}

/// Collects a set of bundles by splitting them into `num_shards` contiguous
/// batches parsed concurrently (history + configuration + Ganglia parsing is
/// CPU-bound), each batch becoming an [`ExecutionLog`] shard merged via
/// [`ExecutionLog::from_shards`].  The resulting log — record order,
/// catalogs and all — equals [`collect_bundles`] over the same bundles; any
/// parse error is surfaced, the earliest-shard one first.
pub fn collect_bundles_sharded(
    bundles: &[JobLogBundle],
    num_shards: usize,
) -> Result<ExecutionLog, HistoryParseError> {
    if num_shards <= 1 || bundles.len() <= 1 {
        return collect_bundles(bundles);
    }
    let shards: Result<Vec<ExecutionLog>, HistoryParseError> =
        perfxplain_core::shard::map_chunks(bundles, num_shards, |chunk| {
            let collector = LogCollector::new();
            let mut shard = ExecutionLog::new();
            for bundle in chunk {
                collector.collect_bundle(bundle, &mut shard)?;
            }
            shard.rebuild_catalogs();
            Ok(shard)
        })
        .into_iter()
        .collect();
    Ok(ExecutionLog::from_shards(shards?))
}

/// Renders simulated traces to their textual log bundles and collects them.
/// This is the honest end-to-end path: everything PerfXplain sees has gone
/// through the Hadoop log text formats and back.
pub fn collect_traces(traces: &[JobTrace]) -> Result<ExecutionLog, HistoryParseError> {
    let bundles: Vec<JobLogBundle> = traces.iter().map(JobLogBundle::from_trace).collect();
    collect_bundles(&bundles)
}

/// Sharded [`collect_traces`]: rendering *and* parsing both fan out, one
/// thread per shard of traces.  Produces the same log as [`collect_traces`].
pub fn collect_traces_sharded(
    traces: &[JobTrace],
    num_shards: usize,
) -> Result<ExecutionLog, HistoryParseError> {
    if num_shards <= 1 || traces.len() <= 1 {
        return collect_traces(traces);
    }
    let shards: Result<Vec<ExecutionLog>, HistoryParseError> =
        perfxplain_core::shard::map_chunks(traces, num_shards, |chunk| {
            let collector = LogCollector::new();
            let mut shard = ExecutionLog::new();
            for trace in chunk {
                let bundle = JobLogBundle::from_trace(trace);
                collector.collect_bundle(&bundle, &mut shard)?;
            }
            shard.rebuild_catalogs();
            Ok(shard)
        })
        .into_iter()
        .collect();
    Ok(ExecutionLog::from_shards(shards?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::{Cluster, ClusterSpec, JobSpec, PigScript, GB, MB};
    use perfxplain_core::ExecutionKind;

    fn traces() -> Vec<JobTrace> {
        let mut traces = Vec::new();
        for (i, instances) in [2usize, 4, 8].into_iter().enumerate() {
            let mut cluster = Cluster::new(ClusterSpec::with_instances(instances), 100 + i as u64);
            traces.push(cluster.run_job(JobSpec {
                name: format!("collector-test-{i}"),
                script: if i % 2 == 0 {
                    PigScript::SimpleFilter
                } else {
                    PigScript::SimpleGroupBy
                },
                input_bytes: GB + i as u64 * 300 * MB,
                input_records: 10_000_000,
                dfs_block_size: 256 * MB,
                reduce_tasks_factor: 1.0,
                io_sort_factor: 10,
                submit_time: 0.0,
            }));
        }
        traces
    }

    #[test]
    fn collects_jobs_and_tasks_with_rich_features() {
        let traces = traces();
        let log = collect_traces(&traces).unwrap();
        assert_eq!(log.jobs().count(), 3);
        let total_tasks: usize = traces.iter().map(|t| t.tasks.len()).sum();
        assert_eq!(log.tasks().count(), total_tasks);

        // Job features: configuration, counters, monitoring averages.
        let job_catalog = log.job_catalog();
        for feature in [
            "pigscript",
            "numinstances",
            "blocksize",
            "iosortfactor",
            "inputsize",
            "nummaptasks",
            "hdfs_bytes_read",
            "map_output_records",
            "avg_cpu_user",
            "avg_load_five",
            "duration",
        ] {
            assert!(
                job_catalog.get(feature).is_some(),
                "missing job feature {feature}"
            );
        }
        assert!(
            job_catalog.len() >= 36,
            "only {} job features",
            job_catalog.len()
        );

        // Task features.
        let task_catalog = log.task_catalog();
        for feature in [
            "jobid",
            "tasktype",
            "tracker_name",
            "hostname",
            "inputsize",
            "map_input_records",
            "avg_load_one",
            "avg_bytes_in",
            "duration",
        ] {
            assert!(
                task_catalog.get(feature).is_some(),
                "missing task feature {feature}"
            );
        }
        assert!(
            task_catalog.len() >= 40,
            "only {} task features",
            task_catalog.len()
        );
    }

    #[test]
    fn job_features_match_the_simulated_configuration() {
        let traces = traces();
        let log = collect_traces(&traces).unwrap();
        let job = log.get(&traces[0].job_id).unwrap();
        assert_eq!(job.kind, ExecutionKind::Job);
        assert_eq!(
            job.feature("pigscript"),
            Value::Str("simple-filter.pig".to_string())
        );
        assert_eq!(job.feature("numinstances"), Value::Num(2.0));
        assert_eq!(
            job.feature("blocksize"),
            Value::Num(traces[0].spec.dfs_block_size as f64)
        );
        // Duration survives the millisecond round trip to within 2 ms.
        let duration = job.duration().unwrap();
        assert!((duration - traces[0].duration()).abs() < 0.002);
    }

    #[test]
    fn task_records_point_at_their_job_and_have_monitoring_data() {
        let traces = traces();
        let log = collect_traces(&traces).unwrap();
        let trace = &traces[2];
        let task = &trace.tasks[0];
        let record = log.get(&task.task_id).unwrap();
        assert_eq!(record.kind, ExecutionKind::Task);
        assert_eq!(record.parent_job.as_deref(), Some(trace.job_id.as_str()));
        assert_eq!(record.feature("jobid"), Value::Str(trace.job_id.clone()));
        // The monitoring averages reflect actual load: cpu_user within 0..100.
        let cpu = record.feature("avg_cpu_user").as_num().unwrap();
        assert!((0.0..=100.0).contains(&cpu));
        assert!(record.feature("avg_load_five").as_num().unwrap() >= 0.0);
    }

    #[test]
    fn collector_without_ganglia_omits_averages() {
        let traces = traces();
        let bundles: Vec<JobLogBundle> = traces.iter().map(JobLogBundle::from_trace).collect();
        let collector = LogCollector::without_ganglia();
        let mut log = ExecutionLog::new();
        for bundle in &bundles {
            collector.collect_bundle(bundle, &mut log).unwrap();
        }
        log.rebuild_catalogs();
        assert!(log.job_catalog().get("avg_cpu_user").is_none());
        assert!(log.job_catalog().get("blocksize").is_some());
    }

    #[test]
    fn corrupt_history_is_an_error() {
        let traces = traces();
        let mut bundle = JobLogBundle::from_trace(&traces[0]);
        bundle.history = "Job KEY=unquoted .".to_string();
        assert!(collect_bundles(&[bundle]).is_err());
    }

    #[test]
    fn sharded_collection_equals_the_serial_path() {
        let traces = traces();
        let bundles: Vec<JobLogBundle> = traces.iter().map(JobLogBundle::from_trace).collect();
        let serial = collect_bundles(&bundles).unwrap();
        for shards in [1, 2, 3, 8] {
            assert_eq!(
                collect_bundles_sharded(&bundles, shards).unwrap(),
                serial,
                "{shards} shards diverge"
            );
            assert_eq!(collect_traces_sharded(&traces, shards).unwrap(), serial);
        }
    }

    #[test]
    fn sharded_collection_surfaces_parse_errors() {
        let traces = traces();
        let mut bundles: Vec<JobLogBundle> = traces.iter().map(JobLogBundle::from_trace).collect();
        bundles[2].history = "Job KEY=unquoted .".to_string();
        assert!(collect_bundles_sharded(&bundles, 3).is_err());
    }
}
