//! Ablation benches for the design choices called out in Sections 4.2/4.3
//! of the paper: score normalisation, the precision/generality weight,
//! balanced sampling and the training-sample size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfxplain_bench::experiments::ablations;
use perfxplain_bench::ExperimentContext;
use perfxplain_core::PerfXplain;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut ctx = ExperimentContext::quick(0xAB1A);
    ctx.runs = 2;

    for result in ablations(&ctx, &ctx.job_query) {
        println!(
            "ablation {:<32} precision={:.2} generality={:.2}",
            result.name, result.precision.mean, result.generality.mean
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let variants = [
        ("paper_defaults", ctx.config.clone()),
        (
            "no_normalisation",
            ctx.config.clone().with_normalize_scores(false),
        ),
        (
            "unbalanced_sampling",
            ctx.config.clone().with_balanced_sampling(false),
        ),
        ("sample_size_200", ctx.config.clone().with_sample_size(200)),
    ];
    for (name, config) in variants {
        let engine = PerfXplain::new(config.with_width(3));
        group.bench_with_input(BenchmarkId::new("explain", name), &name, |b, _| {
            b.iter(|| {
                engine
                    .explain(black_box(&ctx.log), &ctx.job_query.bound)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
