//! Figures 3(a) and 3(b): precision vs explanation width for the three
//! explanation-generation techniques, on the task-level query
//! (*WhyLastTaskFaster*) and the job-level query
//! (*WhySlowerDespiteSameNumInstances*).
//!
//! The bench measures the cost of one generate-and-evaluate round per
//! technique; the full multi-run figure is produced by the `reproduce`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfxplain_bench::experiments::precision_vs_width;
use perfxplain_bench::ExperimentContext;
use perfxplain_core::eval::{related_pairs_for_evaluation, split_log};
use perfxplain_core::{generate_explanation, Technique};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let ctx = ExperimentContext::quick(3163);

    // Print the regenerated (quick-scale) series once so that bench output
    // doubles as a sanity check of the figure's shape.
    for (figure, binding) in [("fig3a", &ctx.task_query), ("fig3b", &ctx.job_query)] {
        let series = precision_vs_width(&ctx, binding);
        for s in &series {
            let line: Vec<String> = s
                .points
                .iter()
                .map(|p| format!("w{}={:.2}", p.width, p.precision.mean))
                .collect();
            println!("{figure} {}: {}", s.technique, line.join(" "));
        }
    }

    let mut group = c.benchmark_group("fig3_precision");
    group.sample_size(10);
    for (name, binding) in [
        ("WhyLastTaskFaster", &ctx.task_query),
        ("WhySlowerDespiteSameNumInstances", &ctx.job_query),
    ] {
        let (train, test) = split_log(&ctx.log, &binding.bound, 0.5, 7);
        let test_set = related_pairs_for_evaluation(&test, &binding.bound, &ctx.config);
        for technique in Technique::all() {
            group.bench_with_input(
                BenchmarkId::new(name, technique.to_string()),
                &technique,
                |b, &technique| {
                    b.iter(|| {
                        let explanation = generate_explanation(
                            technique,
                            black_box(&train),
                            &binding.bound,
                            &ctx.config,
                        )
                        .expect("explanation");
                        perfxplain_core::metrics::precision(&test_set, &explanation).value
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
