//! Micro-benchmarks of the substrate layers: the cluster simulator, the
//! Hadoop history/Ganglia writers and parsers, the feature collector, the
//! pair-feature constructor and the core ML primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hadoop_logs::{parse_job_history, render_job_history, JobLogBundle, LogCollector};
use mlcore::{balanced_sample, best_split_for_attribute, AttrValue, Attribute, Dataset};
use mrsim::{Cluster, ClusterSpec, JobSpec, PigScript, GB, MB};
use perfxplain_core::{compute_pair_features, ExecutionLog};
use std::hint::black_box;

fn job_trace(instances: usize, seed: u64) -> mrsim::JobTrace {
    let mut cluster = Cluster::new(ClusterSpec::with_instances(instances), seed);
    cluster.run_job(JobSpec {
        name: "bench".to_string(),
        script: PigScript::SimpleGroupBy,
        input_bytes: (1.3 * GB as f64) as u64,
        input_records: 13_000_000,
        dfs_block_size: 64 * MB,
        reduce_tasks_factor: 1.5,
        io_sort_factor: 10,
        submit_time: 0.0,
    })
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/simulator");
    group.sample_size(20);
    for instances in [2usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("run_job", format!("{instances}_instances")),
            &instances,
            |b, &instances| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    job_trace(black_box(instances), seed)
                })
            },
        );
    }
    group.finish();
}

fn bench_hadoop_logs(c: &mut Criterion) {
    let trace = job_trace(8, 1);
    let history = render_job_history(&trace);
    let bundle = JobLogBundle::from_trace(&trace);

    let mut group = c.benchmark_group("substrate/hadoop_logs");
    group.sample_size(20);
    group.bench_function("render_job_history", |b| {
        b.iter(|| render_job_history(black_box(&trace)))
    });
    group.bench_function("parse_job_history", |b| {
        b.iter(|| parse_job_history(black_box(&history)).unwrap())
    });
    group.bench_function("collect_bundle", |b| {
        let collector = LogCollector::new();
        b.iter(|| {
            let mut log = ExecutionLog::new();
            collector
                .collect_bundle(black_box(&bundle), &mut log)
                .unwrap();
            log
        })
    });
    group.finish();
}

fn bench_core_primitives(c: &mut Criterion) {
    // Pair-feature construction over a realistic task catalog.
    let trace = job_trace(8, 2);
    let log = hadoop_logs::collect_traces(&[trace]).unwrap();
    let tasks: Vec<_> = log.tasks().collect();
    let catalog = log.task_catalog();

    let mut group = c.benchmark_group("substrate/core_primitives");
    group.sample_size(30);
    group.bench_function("compute_pair_features_task", |b| {
        b.iter(|| compute_pair_features(black_box(catalog), tasks[0], tasks[1], 0.1))
    });

    // Balanced sampling over a skewed label vector.
    let labels: Vec<bool> = (0..50_000).map(|i| i % 20 != 0).collect();
    group.bench_function("balanced_sample_50k", |b| {
        b.iter(|| balanced_sample(black_box(&labels), 2_000, 7))
    });

    // Information-gain split search over a numeric attribute.
    let mut dataset = Dataset::new(vec![Attribute::numeric("x")]);
    for i in 0..2_000 {
        let x = (i % 997) as f64;
        dataset.push(vec![AttrValue::Num(x)], x > 500.0);
    }
    let indices: Vec<usize> = (0..dataset.len()).collect();
    group.bench_function("best_split_2000_rows", |b| {
        b.iter(|| best_split_for_attribute(black_box(&dataset), &indices, 0).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_hadoop_logs,
    bench_core_primitives
);
criterion_main!(benches);
