//! Figure 4(b): the precision / generality trade-off of the three
//! techniques.  The same data as Figure 3(b) is used; this bench reports the
//! generality side and measures the cost of computing both metrics over the
//! related pairs of a test log.

use criterion::{criterion_group, criterion_main, Criterion};
use perfxplain_bench::experiments::precision_vs_width;
use perfxplain_bench::ExperimentContext;
use perfxplain_core::eval::{related_pairs_for_evaluation, split_log};
use perfxplain_core::{generate_explanation, metrics, Technique};
use std::hint::black_box;

fn bench_fig4b(c: &mut Criterion) {
    let mut ctx = ExperimentContext::quick(1642);
    ctx.runs = 2;

    let series = precision_vs_width(&ctx, &ctx.job_query);
    for s in &series {
        for p in &s.points {
            if p.width > 0 && p.precision.samples > 0 {
                println!(
                    "fig4b {} w{}: generality={:.2} precision={:.2}",
                    s.technique, p.width, p.generality.mean, p.precision.mean
                );
            }
        }
    }

    let (train, test) = split_log(&ctx.log, &ctx.job_query.bound, 0.5, 3);
    let test_set = related_pairs_for_evaluation(&test, &ctx.job_query.bound, &ctx.config);
    let explanation = generate_explanation(
        Technique::PerfXplain,
        &train,
        &ctx.job_query.bound,
        &ctx.config,
    )
    .expect("explanation");

    let mut group = c.benchmark_group("fig4b_tradeoff");
    group.sample_size(20);
    group.bench_function("precision_and_generality_on_test_pairs", |b| {
        b.iter(|| {
            let p = metrics::precision(black_box(&test_set), &explanation).value;
            let g = metrics::generality(black_box(&test_set), &explanation).value;
            (p, g)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4b);
criterion_main!(benches);
