//! Figure 4(c): PerfXplain's precision when the feature vocabulary is
//! restricted to level 1 (isSame only), level 2 (+compare/diff) or level 3
//! (all pair features).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfxplain_bench::experiments::feature_levels;
use perfxplain_bench::ExperimentContext;
use perfxplain_core::{FeatureLevel, PerfXplain};
use std::hint::black_box;

fn bench_fig4c(c: &mut Criterion) {
    let mut ctx = ExperimentContext::quick(1643);
    ctx.runs = 2;

    let series = feature_levels(&ctx, &ctx.job_query);
    for s in &series {
        let line: Vec<String> = s
            .points
            .iter()
            .map(|p| format!("w{}={:.2}", p.width, p.precision.mean))
            .collect();
        println!("fig4c {}: {}", s.level, line.join(" "));
    }

    let mut group = c.benchmark_group("fig4c_feature_levels");
    group.sample_size(10);
    for level in FeatureLevel::all() {
        let config = ctx.config.clone().with_feature_level(level).with_width(3);
        let engine = PerfXplain::new(config);
        group.bench_with_input(
            BenchmarkId::new("explain", format!("{level}")),
            &level,
            |b, _| {
                b.iter(|| {
                    engine
                        .explain(black_box(&ctx.log), &ctx.job_query.bound)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4c);
criterion_main!(benches);
