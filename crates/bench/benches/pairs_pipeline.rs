//! Pair-classification throughput benchmark and perf-trajectory emitter.
//!
//! Measures the streaming columnar training pipeline against the legacy
//! map-based pair classification at log sizes n ∈ {100, 1k, 10k}, the
//! `service_reuse` scenario (k queries against one cached [`XplainService`]
//! view vs k cold `explain` calls), the sharded ingest+encode scenarios at
//! n ∈ {100k, 1M} (sharded vs single-shot wall time, shards ∈ {1, 2, 4, 8}),
//! the blocked-enumeration scenario at n = 100k and the `explain_latency`
//! scenario (per-query phase breakdown plus the retained naive trainer vs
//! the sweep trainer on the identical training dataset, n ∈ {20k, 100k}),
//! the `serve_qps` scenario (an open-loop many-client drive against the
//! in-process network front-end under a deliberately tight admission
//! budget: qps, latency percentiles and shed counts), the `live_ingest`
//! scenario (sustained append batches against a served log at
//! n ∈ {100k, 1M}: delta view refresh vs the full re-encode a non-delta
//! cache would pay),
//! and writes `BENCH_pairs.json` (pairs/sec, candidate-memory footprint,
//! speedups, the parallel-enumeration threshold) so future PRs can track
//! the trend.  Run with `cargo bench --bench pairs_pipeline`.

use perfxplain_core::columnar::{ColumnarLog, CompiledQuery};
use perfxplain_core::training::{collect_related_pairs_in, PARALLEL_ENUMERATION_THRESHOLD};
use perfxplain_core::{
    BoundQuery, ExecutionKind, ExecutionLog, ExecutionRecord, ExplainConfig, FsyncPolicy,
    PerfXplain, QueryRequest, XplainService,
};
use serde::Serialize;
use std::time::Instant;

/// One measured point of the trajectory.
#[derive(Debug, Serialize)]
struct PairsBenchPoint {
    /// Number of log records.
    n: usize,
    /// Whether `max_candidate_pairs` was lifted for this point.  Uncapped
    /// points classify every enumerated pair on both paths, so their
    /// throughput numbers are a like-for-like comparison; the capped point
    /// measures streaming enumeration (hash-skip included) under the
    /// default production cap.
    capped: bool,
    /// Ordered candidate pairs enumerated (the full n·(n-1) space).
    enumerated: u64,
    /// Related pairs found.
    related: usize,
    /// Streaming columnar path: enumerated candidate pairs per second
    /// (equal to classified pairs per second when uncapped).
    streaming_pairs_per_sec: f64,
    /// Legacy map-based path: classified candidate pairs per second over
    /// the same uncapped candidate space (absent for sizes where the
    /// legacy path is prohibitively slow).
    map_based_pairs_per_sec: Option<f64>,
    /// Streaming ÷ map-based throughput (like-for-like: both uncapped).
    speedup: Option<f64>,
    /// Bytes the streaming path holds for candidate state: just the related
    /// pairs (24 B each) — bounded by the cap, independent of n².
    streaming_candidate_bytes: u64,
    /// Bytes the eager path would have materialised: n·(n-1) index pairs at
    /// 16 B each.
    eager_candidate_bytes: u64,
}

/// The `service_reuse` scenario: answering k queries against one cached
/// [`XplainService`] view vs k cold `PerfXplain::explain` calls (each of
/// which re-encodes the log).
#[derive(Debug, Serialize)]
struct ServiceReusePoint {
    /// Number of log records.
    n: usize,
    /// Raw features per record.
    features: usize,
    /// Queries answered (distinct pairs of interest).
    k: usize,
    /// Mean per-query wall time of the cold path (fresh view per call), ms.
    cold_ms_per_query: f64,
    /// Wall time of the service's first query (cache miss: builds the
    /// view), ms.
    service_first_query_ms: f64,
    /// Mean per-query wall time of queries 2..k on the warm service, ms.
    warm_ms_per_query: f64,
    /// cold ÷ warm: the payoff of reusing the cached view.
    speedup: f64,
}

/// One sharded ingest+encode measurement: a synthetic n-record log ingested
/// (`extend_parallel` over `shards` record batches) and encoded
/// (`ColumnarLog::build_sharded` with `shards` segments).  `shards = 1` is
/// the single-shot baseline the speedups are relative to.
#[derive(Debug, Serialize)]
struct ShardedEncodePoint {
    /// Number of log records.
    n: usize,
    /// Raw features per record.
    features: usize,
    /// Shard count (1 = single-shot baseline).
    shards: usize,
    /// Wall time of the sharded ingest (record batches → catalogs), ms.
    ingest_ms: f64,
    /// Wall time of the sharded columnar encode, ms.
    encode_ms: f64,
    /// Single-shot encode time ÷ this encode time.
    encode_speedup_vs_single: f64,
}

/// The `cold_start` scenario: time-to-first-queryable-view from a JSON log
/// (parse + re-encode, what every start paid before the snapshot store)
/// vs from a segmented binary snapshot (open + assemble stored columns).
#[derive(Debug, Serialize)]
struct ColdStartPoint {
    /// Number of log records.
    n: usize,
    /// Raw features per record.
    features: usize,
    /// Segments the snapshot was written with.
    shards: usize,
    /// Size of the JSON representation, bytes.
    json_bytes: u64,
    /// Total size of the snapshot directory (segments + manifest), bytes.
    snapshot_bytes: u64,
    /// JSON path: `ExecutionLog::from_json` + `ColumnarLog::build_auto`
    /// (parse, catalog rebuild, full re-encode), ms.
    json_parse_ms: f64,
    /// Snapshot path: `snapshot::open` (read + fingerprint-verify +
    /// decode) + `Snapshot::into_views` (adopt the decoded columns,
    /// no re-encode, no copy), ms.
    snapshot_open_ms: f64,
    /// json ÷ snapshot: the payoff of opening binary columns instead of
    /// re-parsing JSON.
    speedup: f64,
    /// Peak additional resident bytes during the snapshot open: the VmHWM
    /// delta of a freshly spawned probe process that does nothing but open
    /// the snapshot and adopt the views (0 when spawning or /proc is
    /// unavailable).
    peak_open_bytes: u64,
    /// Resident bytes the probe retains once the views are assembled (VmRSS
    /// delta over its pre-open baseline; 0 when unavailable).  Peak ≈
    /// resident means the open allocates no transient copies beyond the
    /// final views.
    open_resident_bytes: u64,
}

/// The `explain_latency` scenario: phase breakdown of one warm blocked
/// query on a trainer-heavy log (numeric group-level metrics give the
/// split-search dataset high-cardinality continuous base features), plus
/// the old-vs-new trainer comparison on the exact same training dataset —
/// the naive evaluator rescans all rows per candidate (O(d·n) per
/// attribute), the sweep sorts once (O(n log n)).
#[derive(Debug, Serialize)]
struct ExplainLatencyPoint {
    /// Number of log records.
    n: usize,
    /// Raw features per record.
    features: usize,
    /// Rows of the split-search dataset (the balanced training sample).
    training_rows: usize,
    /// Attributes of the split-search dataset (derived pair features).
    training_attrs: usize,
    /// Enumerate + classify + sample the related pairs, ms.
    enumerate_ms: f64,
    /// Encode the sampled pairs into the split-search dataset, ms.
    featurize_ms: f64,
    /// Columnar Relief over the training dataset, ms.
    relief_ms: f64,
    /// Sweep-trained reference decision tree over the training dataset, ms.
    tree_ms: f64,
    /// The retained naive Relief on the same dataset, ms.
    naive_relief_ms: f64,
    /// The retained naive-split tree fit on the same dataset, ms.
    naive_tree_ms: f64,
    /// (naive relief + naive tree) ÷ (columnar relief + sweep tree): the
    /// old-vs-new trainer ratio.
    trainer_speedup: f64,
    /// One full warm `explain` (verify + train + greedy clause growth)
    /// against the cached view, ms.
    explain_ms: f64,
}

/// The blocked-enumeration scenario: a despite clause with
/// `pigscript_isSame = T` restricts candidates to within-script groups, so
/// a 100k-record log enumerates ~n·(group-1) pairs instead of n².
#[derive(Debug, Serialize)]
struct BlockedEnumerationPoint {
    /// Number of log records.
    n: usize,
    /// Records per blocking group.
    group_size: usize,
    /// Candidates actually enumerated (within groups).
    enumerated: u64,
    /// The full n·(n-1) space blocking avoided.
    unblocked_space: u64,
    /// Related pairs found.
    related: usize,
    /// Enumeration + classification wall time, ms.
    elapsed_ms: f64,
}

/// The `serve_qps` scenario: an open-loop many-client workload against the
/// in-process network front-end.  Every connection issues requests back to
/// back, so the server sees a constant `connections`-deep request stream;
/// the admission budget is sized to roughly half that depth, so the run
/// exercises queueing *and* load shedding, not just the happy path.
#[derive(Debug, Serialize)]
struct ServeQpsPoint {
    /// Number of log records served.
    n: usize,
    /// Concurrent client connections.
    connections: usize,
    /// Back-to-back requests per connection.
    requests_per_connection: usize,
    /// Worker threads answering queries.
    workers: usize,
    /// Admission budget in cost units.
    budget_units: u64,
    /// Cost units one request is charged.
    request_units: u64,
    /// Requests sent.
    sent: u64,
    /// Success responses.
    ok: u64,
    /// Admission rejections (429).
    shed: u64,
    /// Deadline expirations (408).
    deadline: u64,
    /// Completed responses per second over the drive.
    qps: f64,
    /// Median latency of successful responses, ms.
    p50_ms: f64,
    /// 99th-percentile latency of successful responses, ms.
    p99_ms: f64,
}

/// The `live_ingest` scenario: sustained appends against a served log.
/// Each round appends a batch through [`XplainService::append`], refreshes
/// the cached view (the delta path: splice the batch into an append tail,
/// O(tail)), and answers one query against the refreshed view.  The
/// recorded baseline is what a non-delta cache would pay after *every*
/// append: a from-scratch re-encode of the whole log.
#[derive(Debug, Serialize)]
struct LiveIngestPoint {
    /// Number of log records served before the first append.
    n: usize,
    /// Raw features per record.
    features: usize,
    /// Records per append batch.
    batch: usize,
    /// Append+query rounds driven.
    rounds: usize,
    /// From-scratch re-encode of the n-record log (what every append would
    /// cost without delta maintenance), ms.
    full_rebuild_ms: f64,
    /// Mean view refresh after an append batch (the delta splice), ms.
    delta_refresh_ms: f64,
    /// full_rebuild ÷ delta_refresh: the payoff of delta maintenance.
    refresh_speedup: f64,
    /// Records ingested per second over the sustained loop (append +
    /// delta refresh, the full ingest cost a serving process pays).
    appends_per_sec: f64,
    /// Mean query latency against the freshly refreshed view, ms.
    mean_query_ms: f64,
    /// Tail rows held by the cached view after the loop (un-compacted).
    tail_rows: u64,
    /// Delta refreshes the service performed.
    delta_refreshes: u64,
    /// Full rebuilds the service performed (the initial build only —
    /// every append must stay on the delta path).
    full_rebuilds: u64,
    /// The append-journal fsync policy in force, or `None` when the point
    /// was measured un-journaled (PR 9 semantics: acks are in-memory only).
    fsync: Option<String>,
}

#[derive(Debug, Serialize)]
struct PairsBenchReport {
    description: String,
    /// Hardware threads the sharded/parallel numbers were measured with —
    /// on a single-core machine every sharded speedup degenerates to ~1x.
    hardware_threads: usize,
    /// Record count above which pair enumeration fans out by default (the
    /// `parallel`/`serial` features force-override this).
    parallel_enumeration_threshold: usize,
    points: Vec<PairsBenchPoint>,
    service_reuse: ServiceReusePoint,
    sharded_encode: Vec<ShardedEncodePoint>,
    cold_start: Vec<ColdStartPoint>,
    blocked_enumeration: BlockedEnumerationPoint,
    explain_latency: Vec<ExplainLatencyPoint>,
    serve_qps: ServeQpsPoint,
    live_ingest: Vec<LiveIngestPoint>,
}

/// A synthetic log shaped like the paper's workload: two duration regimes
/// driven by block size, several numeric and nominal features.
fn synthetic_log(n: usize) -> ExecutionLog {
    let mut log = ExecutionLog::new();
    for i in 0..n {
        let big_blocks = i % 2 == 0;
        let input = [1.0e9, 4.0e9, 32.0e9][i % 3];
        let duration = if big_blocks {
            600.0 + (i % 13) as f64
        } else {
            input / 5.0e7 + (i % 7) as f64
        };
        log.push(
            ExecutionRecord::job(format!("job_{i}"))
                .with_feature("inputsize", input)
                .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                .with_feature("numinstances", [2.0, 8.0, 16.0][(i / 2) % 3])
                .with_feature("iosortfactor", 10.0 + (i % 3) as f64)
                .with_feature("pigscript", ["a.pig", "b.pig"][i % 2])
                .with_feature("duration", duration),
        );
    }
    log.rebuild_catalogs();
    log
}

fn query() -> BoundQuery {
    let q = pxql::parse_query(
        "DESPITE inputsize_compare = GT\n\
         OBSERVED duration_compare = SIM\n\
         EXPECTED duration_compare = GT",
    )
    .unwrap();
    BoundQuery::new(q, "job_0", "job_1")
}

/// The legacy hot path: a `BTreeMap<String, Value>` of selected pair
/// features rebuilt per candidate (what `collect_related_pairs` did before
/// the columnar pipeline).
fn run_map_based(log: &ExecutionLog, bound: &BoundQuery, config: &ExplainConfig) -> (u64, usize) {
    let records: Vec<&ExecutionRecord> = log.jobs().collect();
    let mut candidates = 0u64;
    let mut related = 0usize;
    for i in 0..records.len() {
        for j in 0..records.len() {
            if i == j {
                continue;
            }
            candidates += 1;
            let label = bound.classify_records(log, records[i], records[j], config.sim_threshold);
            if label.is_related() {
                related += 1;
            }
        }
    }
    (candidates, related)
}

fn measure(n: usize, measure_legacy: bool) -> PairsBenchPoint {
    let log = synthetic_log(n);
    let bound = query();
    // Like-for-like comparison points lift the cap so both paths classify
    // every enumerated pair; the large-n point keeps the production cap to
    // measure streaming enumeration (hash-skip included) and bounded
    // memory.
    let mut config = ExplainConfig::default();
    let capped = !measure_legacy;
    if !capped {
        config.max_candidate_pairs = usize::MAX;
    }

    // Streaming columnar path: encode once, then enumerate + classify.
    let view = ColumnarLog::build(&log, ExecutionKind::Job);
    // Warm up the compiled query path once.
    let _ = CompiledQuery::compile(&bound, &view, config.sim_threshold);
    let start = Instant::now();
    let related = collect_related_pairs_in(&view, &bound, &log, &config);
    let streaming_elapsed = start.elapsed().as_secs_f64();

    let total_candidates = (n as u64) * (n as u64 - 1);
    let streaming_pairs_per_sec = total_candidates as f64 / streaming_elapsed.max(1e-9);

    let map_based_pairs_per_sec = if measure_legacy {
        let start = Instant::now();
        let (legacy_candidates, _) = run_map_based(&log, &bound, &config);
        let elapsed = start.elapsed().as_secs_f64();
        Some(legacy_candidates as f64 / elapsed.max(1e-9))
    } else {
        None
    };

    PairsBenchPoint {
        n,
        capped,
        enumerated: total_candidates,
        related: related.len(),
        streaming_pairs_per_sec,
        speedup: map_based_pairs_per_sec.map(|m| streaming_pairs_per_sec / m),
        map_based_pairs_per_sec,
        streaming_candidate_bytes: related.len() as u64
            * std::mem::size_of::<perfxplain_core::training::RelatedPair>() as u64,
        eager_candidate_bytes: total_candidates * 16,
    }
}

/// k distinct bound queries over [`perfxplain_bench::blocked_log`]: same
/// query shape, a different pair of interest (and script group) each time.
fn service_queries(k: usize, group_size: usize) -> Vec<BoundQuery> {
    (0..k)
        .map(|q| {
            let query = pxql::parse_query(perfxplain_bench::BLOCKED_QUERY).unwrap();
            // Members 0 and 2 of each group are big-block jobs: larger
            // input, plateaued (similar) duration — a valid pair of
            // interest.
            let base = q * group_size;
            BoundQuery::new(query, format!("job_{}", base + 2), format!("job_{base}"))
        })
        .collect()
}

fn measure_service_reuse(n: usize, extra_features: usize, k: usize) -> ServiceReusePoint {
    let group_size = 10;
    let log = perfxplain_bench::blocked_log(n, group_size, extra_features);
    let features = log.job_catalog().len();
    let config = ExplainConfig::default().with_sample_size(200);
    let queries = service_queries(k, group_size);

    // Cold path: the stateless API re-encodes the log on every call.
    let engine = PerfXplain::new(config.clone());
    let cold_start = Instant::now();
    for bound in &queries {
        engine.explain(&log, bound).expect("cold explain succeeds");
    }
    let cold_ms_per_query = cold_start.elapsed().as_secs_f64() * 1e3 / k as f64;

    // Warm path: one service, k queries; the first builds the cached view,
    // the rest reuse it.
    let service = XplainService::with_config(log, config);
    let first_start = Instant::now();
    let first = service
        .explain(&QueryRequest::bound(queries[0].clone()))
        .expect("service explain succeeds");
    let service_first_query_ms = first_start.elapsed().as_secs_f64() * 1e3;
    assert!(!first.view_reused);
    let warm_start = Instant::now();
    for bound in &queries[1..] {
        let outcome = service
            .explain(&QueryRequest::bound(bound.clone()))
            .expect("service explain succeeds");
        assert!(outcome.view_reused, "warm query missed the view cache");
    }
    let warm_ms_per_query = warm_start.elapsed().as_secs_f64() * 1e3 / (k - 1) as f64;

    ServiceReusePoint {
        n,
        features,
        k,
        cold_ms_per_query,
        service_first_query_ms,
        warm_ms_per_query,
        speedup: cold_ms_per_query / warm_ms_per_query,
    }
}

/// The record batch behind one `synthetic_log(n)` record index, without the
/// log wrapper (so ingest scenarios can shard the batches freely).
fn synthetic_records(n: usize) -> Vec<ExecutionRecord> {
    synthetic_log(n).records().to_vec()
}

/// Measures sharded ingest+encode at one (n, shards) point.  `shards = 1`
/// ingests serially (push + rebuild) and encodes single-shot — that is the
/// baseline the sharded points are compared against.
fn measure_sharded_encode(
    records: &[ExecutionRecord],
    shards: usize,
    single_encode_ms: Option<f64>,
) -> ShardedEncodePoint {
    let n = records.len();

    let ingest_started = Instant::now();
    let log = if shards <= 1 {
        let mut log = ExecutionLog::new();
        for record in records {
            log.push(record.clone());
        }
        log.rebuild_catalogs();
        log
    } else {
        let chunk_size = n.div_ceil(shards).max(1);
        let batches: Vec<Vec<ExecutionRecord>> =
            records.chunks(chunk_size).map(<[_]>::to_vec).collect();
        let mut log = ExecutionLog::new();
        log.extend_parallel(batches);
        log
    };
    let ingest_ms = ingest_started.elapsed().as_secs_f64() * 1e3;

    let encode_started = Instant::now();
    let view = ColumnarLog::build_sharded(&log, ExecutionKind::Job, shards);
    let encode_ms = encode_started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(view.num_rows(), n);

    ShardedEncodePoint {
        n,
        features: log.job_catalog().len(),
        shards,
        ingest_ms,
        encode_ms,
        encode_speedup_vs_single: single_encode_ms.unwrap_or(encode_ms) / encode_ms,
    }
}

/// Sweeps shards ∈ {1, 2, 4, 8} at one log size.
fn measure_sharded_encode_sweep(n: usize, points: &mut Vec<ShardedEncodePoint>) {
    let records = synthetic_records(n);
    // One untimed pass first: the very first ingest+encode at a new size
    // pays page faults and allocator growth that later passes reuse, which
    // would otherwise inflate every sharded point against the single-shot
    // baseline measured first.
    let _ = measure_sharded_encode(&records, 1, None);
    let mut single_encode_ms = None;
    for shards in [1usize, 2, 4, 8] {
        let point = measure_sharded_encode(&records, shards, single_encode_ms);
        println!(
            "encode n = {:>8}, {} shard(s): ingest {:>8.1} ms, encode {:>8.1} ms ({:.2}x vs single-shot)",
            point.n, point.shards, point.ingest_ms, point.encode_ms, point.encode_speedup_vs_single,
        );
        if shards == 1 {
            single_encode_ms = Some(point.encode_ms);
        }
        points.push(point);
    }
}

/// Measures the `cold_start` scenario at one log size: JSON re-parse vs
/// snapshot open, both driven to the same end state (a log + a queryable
/// job view).
fn measure_cold_start(n: usize) -> ColdStartPoint {
    use perfxplain_core::snapshot;

    let log = synthetic_log(n);
    let features = log.job_catalog().len();
    let json = log.to_json().expect("log serializes");
    let shards = perfxplain_core::shard::hardware_threads();
    let dir = std::env::temp_dir().join(format!("pxbench_cold_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    snapshot::persist(&log, &dir, shards).expect("snapshot persists");
    let snapshot_bytes: u64 = std::fs::read_dir(&dir)
        .expect("snapshot dir lists")
        .map(|e| e.expect("entry").metadata().expect("metadata").len())
        .sum();
    drop(log);

    // Tier 1: cold JSON ingest — parse, rebuild catalogs, re-encode.
    let started = Instant::now();
    let parsed = ExecutionLog::from_json(&json).expect("JSON parses");
    let json_view = ColumnarLog::build_auto(&parsed, ExecutionKind::Job);
    let json_parse_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(json_view.num_rows(), n);
    drop((parsed, json_view));

    // Peak open memory is the VmHWM delta inside a freshly spawned probe
    // process: this process's high-water mark (and its allocator's
    // retained pages) were already raised by tier 1, so an in-process
    // delta would read 0 no matter what the open allocated.  Only the
    // memory numbers come from the probe — its wall clock also pays the
    // page faults of a virgin address space, which the tier-1 timing
    // above did not, so timing is measured in-process below, like-for-like.
    let (peak_open_bytes, open_resident_bytes) = match spawn_open_probe(&dir) {
        Some((_, peak, resident, rows)) => {
            assert_eq!(rows, n, "the open probe saw a different row count");
            (peak, resident)
        }
        None => (0, 0),
    };

    // Tier 2: snapshot open — read + verify + decode columns, then adopt
    // them into the views (no re-encode, no copy).
    let started = Instant::now();
    let snap = snapshot::open(&dir).expect("snapshot opens");
    let views = snap.into_views();
    let snapshot_open_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(views.job.num_rows(), n);
    assert_eq!(views.log.len(), n);
    drop(views);

    std::fs::remove_dir_all(&dir).expect("snapshot dir cleans up");
    ColdStartPoint {
        n,
        features,
        shards,
        json_bytes: json.len() as u64,
        snapshot_bytes,
        json_parse_ms,
        snapshot_open_ms,
        speedup: json_parse_ms / snapshot_open_ms.max(1e-9),
        peak_open_bytes,
        open_resident_bytes,
    }
}

/// Environment variable that switches the bench binary into the
/// cold-start open probe: its value is the snapshot directory to open.
const OPEN_PROBE_ENV: &str = "PXBENCH_OPEN_PROBE";

/// Re-runs this binary as an open probe against `dir` and parses its
/// report.  Returns `(open_ms, peak_bytes, resident_bytes, rows)`, or
/// `None` where spawning or /proc is unavailable.
fn spawn_open_probe(dir: &std::path::Path) -> Option<(f64, u64, u64, usize)> {
    let exe = std::env::current_exe().ok()?;
    let output = std::process::Command::new(exe)
        .env(OPEN_PROBE_ENV, dir)
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&output.stdout);
    let mut fields = text.split_whitespace();
    let open_ms = fields.next()?.parse().ok()?;
    let peak = fields.next()?.parse().ok()?;
    let resident = fields.next()?.parse().ok()?;
    let rows = fields.next()?.parse().ok()?;
    if peak == 0 {
        return None;
    }
    Some((open_ms, peak, resident, rows))
}

/// The child half of [`spawn_open_probe`]: opens the snapshot, adopts the
/// views, and prints `open_ms peak_bytes resident_bytes rows` — measured
/// from a fresh address space, so the VmHWM delta is the open's own peak.
fn run_open_probe(dir: &std::path::Path) {
    use perfxplain_core::snapshot;

    reset_peak_rss();
    let baseline_rss = vm_rss_bytes();
    let started = Instant::now();
    let snap = snapshot::open(dir).expect("snapshot opens");
    let views = snap.into_views();
    let open_ms = started.elapsed().as_secs_f64() * 1e3;
    let peak = vm_hwm_bytes().saturating_sub(baseline_rss);
    let resident = vm_rss_bytes().saturating_sub(baseline_rss);
    println!("{open_ms} {peak} {resident} {}", views.log.len());
    drop(views);
}

/// Resets the kernel's peak-RSS watermark (VmHWM) to the current RSS so a
/// subsequent [`vm_hwm_bytes`] reads the peak of just the measured region.
/// Best-effort: a no-op where /proc/self/clear_refs is unavailable.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Current resident set size in bytes (0 where /proc is unavailable).
fn vm_rss_bytes() -> u64 {
    proc_status_bytes("VmRSS:")
}

/// Peak resident set size in bytes since the last [`reset_peak_rss`]
/// (0 where /proc is unavailable).
fn vm_hwm_bytes() -> u64 {
    proc_status_bytes("VmHWM:")
}

fn proc_status_bytes(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|line| line.starts_with(field))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Measures the `explain_latency` scenario at one log size: phase breakdown
/// of one warm blocked query, plus old-vs-new trainer wall time on the
/// identical training dataset — with the outputs cross-checked (Relief
/// weights bit-identical, tree shapes equal), so the speedup recorded here
/// is between two implementations proven to agree.
fn measure_explain_latency(n: usize) -> ExplainLatencyPoint {
    use mlcore::{relief_weights, DecisionTree, ReliefConfig, TreeConfig};
    use perfxplain_core::bridge::DatasetBridge;
    use perfxplain_core::pairs::PairCatalog;
    use perfxplain_core::training::prepare_encoded_training_in;
    use std::sync::Arc;

    let group_size = 10;
    // Three numeric group-level metrics: within-group pairs agree on them,
    // so the training dataset carries continuous base features with one
    // distinct value per sampled group — the candidate-heavy regime.
    let log = perfxplain_bench::blocked_log_with_group_metrics(n, group_size, 1, 3);
    let features = log.job_catalog().len();
    let config = ExplainConfig::default();
    let bound = service_queries(1, group_size).remove(0);
    let view = Arc::new(ColumnarLog::build_auto(&log, ExecutionKind::Job));

    // One full warm explain: what a cached service pays per query.
    let engine = PerfXplain::new(config.clone());
    let started = Instant::now();
    engine
        .explain_in(&log, view.clone(), &bound)
        .expect("warm explain succeeds");
    let explain_ms = started.elapsed().as_secs_f64() * 1e3;

    // Phase breakdown on the same view.
    let started = Instant::now();
    let encoded =
        prepare_encoded_training_in(&log, view, &bound, &config).expect("training prepares");
    let enumerate_ms = started.elapsed().as_secs_f64() * 1e3;

    let catalog = PairCatalog::from_raw(log.job_catalog())
        .restrict_to_groups(config.feature_level.allowed_groups());
    let excluded = perfxplain_core::query::excluded_raw_features(&bound, &config);
    let poi = encoded.poi_rows(&bound).expect("poi rows exist");
    let started = Instant::now();
    let bridge =
        DatasetBridge::encode_from_view(&encoded, poi, &catalog, &excluded, config.sim_threshold);
    let featurize_ms = started.elapsed().as_secs_f64() * 1e3;
    let dataset = bridge.dataset();

    let relief_config = ReliefConfig {
        iterations: config.relief_iterations,
        seed: config.seed,
    };
    let started = Instant::now();
    let weights = relief_weights(dataset, relief_config);
    let relief_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let tree = DecisionTree::fit(dataset, TreeConfig::default());
    let tree_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let naive_weights = mlcore::oracle::relief_weights(dataset, relief_config);
    let naive_relief_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let naive_tree = mlcore::oracle::fit(dataset, TreeConfig::default());
    let naive_tree_ms = started.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        weights, naive_weights,
        "columnar Relief diverged from the oracle"
    );
    assert_eq!(
        tree.root(),
        naive_tree.root(),
        "sweep-trained tree diverged from the oracle"
    );

    ExplainLatencyPoint {
        n,
        features,
        training_rows: dataset.len(),
        training_attrs: dataset.num_attributes(),
        enumerate_ms,
        featurize_ms,
        relief_ms,
        tree_ms,
        naive_relief_ms,
        naive_tree_ms,
        trainer_speedup: (naive_relief_ms + naive_tree_ms) / (relief_ms + tree_ms).max(1e-9),
        explain_ms,
    }
}

/// Measures the `serve_qps` scenario: spawns the network front-end over a
/// `synthetic_log(n)` in-process, sizes the admission budget to admit
/// roughly half the concurrent connections, and drives an open-loop
/// workload through real loopback sockets.
fn measure_serve_qps(
    n: usize,
    connections: usize,
    requests_per_connection: usize,
) -> ServeQpsPoint {
    use perfxplain_server::{
        default_request, run_load, spawn, QueryCost, SchedulerConfig, ServerConfig,
    };
    use std::sync::Arc;

    let service = Arc::new(XplainService::new(synthetic_log(n)));
    let request_units = QueryCost::from(
        &service
            .estimate_cost(
                &QueryRequest::text(default_request("job_2", "job_0").query.unwrap())
                    .with_pair("job_2", "job_0"),
            )
            .expect("the bench query is estimable"),
    )
    .units();
    // Budget for half the connection depth, a queue for a quarter of it:
    // the drive keeps every admission path busy (run, queue, shed).
    let workers = perfxplain_core::shard::hardware_threads();
    let budget_units = request_units * (connections as u64).div_ceil(2);
    let config = ServerConfig {
        workers,
        scheduler: SchedulerConfig {
            budget: QueryCost(budget_units),
            queue_capacity: (connections / 4).max(1),
            max_inflight_per_session: 2,
            max_pending_per_session: 8,
        },
        ..ServerConfig::default()
    };
    let handle = spawn(service, config).expect("bench server binds");
    let addr = handle.addr().to_string();

    let report = run_load(&addr, connections, requests_per_connection, |c, s| {
        let mut request = default_request("job_2", "job_0");
        request.id = Some((c * requests_per_connection + s) as u64);
        request
    })
    .expect("bench load drive completes");
    assert_eq!(report.transport_errors, 0, "bench drive lost connections");
    assert!(report.ok > 0, "bench drive answered nothing: {report:?}");
    handle.shutdown();

    ServeQpsPoint {
        n,
        connections,
        requests_per_connection,
        workers,
        budget_units,
        request_units,
        sent: report.sent,
        ok: report.ok,
        shed: report.shed,
        deadline: report.deadline,
        qps: report.qps,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
    }
}

/// Measures the `live_ingest` scenario at one log size.  The append
/// batches are the continuation of the same [`perfxplain_bench::blocked_log`]
/// the service was started with — identical feature names, so every batch
/// stays on the delta path (a changed catalog would force a rebuild).
/// With `journal` set, the service is persisted to a scratch snapshot and
/// every append first frames the batch into the write-ahead journal under
/// that fsync policy — the durability tax on the measured ingest loop.
fn measure_live_ingest(
    n: usize,
    batch: usize,
    rounds: usize,
    journal: Option<FsyncPolicy>,
) -> LiveIngestPoint {
    let group_size = 10;
    // One generator call covers the base log and every append batch: slice
    // the first n records into the served log and feed the rest in batches.
    let all = perfxplain_bench::blocked_log(n + batch * rounds, group_size, 2)
        .records()
        .to_vec();
    let mut log = ExecutionLog::new();
    for record in &all[..n] {
        log.push(record.clone());
    }
    log.rebuild_catalogs();
    let features = log.job_catalog().len();
    let service = XplainService::with_config(log, ExplainConfig::default().with_sample_size(200));
    let journal_dir = journal.map(|policy| {
        let dir = std::env::temp_dir().join(format!(
            "pxbench_live_ingest_{}_{n}_{policy}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("journal scratch dir");
        service.persist(&dir).expect("journal anchor persist");
        service
            .enable_journal(&dir, policy)
            .expect("journal enables on the persisted dir");
        dir
    });
    let bound = service_queries(1, group_size).remove(0);

    // Warm: the first query pays the one full view build of this scenario.
    service
        .explain(&QueryRequest::bound(bound.clone()))
        .expect("live-ingest warm query succeeds");

    // Baseline: what a non-delta cache would pay to refresh after any
    // append — a from-scratch encode of the current log.
    let snapshot = service.snapshot();
    let started = Instant::now();
    let rebuilt = ColumnarLog::build_auto(&snapshot, ExecutionKind::Job);
    let full_rebuild_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rebuilt.num_rows(), n);
    drop((snapshot, rebuilt));

    // The sustained loop: append, refresh (delta), serve.
    let mut ingest_secs = 0.0;
    let mut delta_ms_total = 0.0;
    let mut query_ms_total = 0.0;
    for round in 0..rounds {
        let from = n + round * batch;
        let records = all[from..from + batch].to_vec();
        let started = Instant::now();
        service.append(records).expect("append failed");
        let append_secs = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let view = service.view(ExecutionKind::Job);
        let delta_secs = started.elapsed().as_secs_f64();
        assert_eq!(view.num_rows(), from + batch);
        assert!(view.tail_rows() > 0, "append fell off the delta path");
        ingest_secs += append_secs + delta_secs;
        delta_ms_total += delta_secs * 1e3;

        let started = Instant::now();
        service
            .explain(&QueryRequest::bound(bound.clone()))
            .expect("live-ingest query succeeds");
        query_ms_total += started.elapsed().as_secs_f64() * 1e3;
    }

    let stats = service.view_stats();
    assert_eq!(
        stats.full_rebuilds, 1,
        "an append forced a full rebuild: {stats:?}"
    );
    let delta_refresh_ms = delta_ms_total / rounds as f64;
    if let Some(dir) = &journal_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    LiveIngestPoint {
        n,
        features,
        batch,
        rounds,
        full_rebuild_ms,
        delta_refresh_ms,
        refresh_speedup: full_rebuild_ms / delta_refresh_ms.max(1e-9),
        appends_per_sec: (batch * rounds) as f64 / ingest_secs.max(1e-9),
        mean_query_ms: query_ms_total / rounds as f64,
        tail_rows: stats.tail_rows,
        delta_refreshes: stats.delta_refreshes,
        full_rebuilds: stats.full_rebuilds,
        fsync: journal.map(|policy| policy.to_string()),
    }
}

/// The blocked-enumeration scenario at n = 100k: candidates restricted to
/// within-pigscript groups by the despite clause.
fn measure_blocked_enumeration(n: usize, group_size: usize) -> BlockedEnumerationPoint {
    let log = perfxplain_bench::blocked_log(n, group_size, 4);
    let bound = service_queries(1, group_size).remove(0);
    let config = ExplainConfig::default();
    let view = ColumnarLog::build_auto(&log, ExecutionKind::Job);
    let groups = n.div_ceil(group_size) as u64;
    let enumerated = groups * (group_size as u64) * (group_size as u64 - 1);

    let started = Instant::now();
    let related = collect_related_pairs_in(&view, &bound, &log, &config);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    BlockedEnumerationPoint {
        n,
        group_size,
        enumerated,
        unblocked_space: (n as u64) * (n as u64 - 1),
        related: related.len(),
        elapsed_ms,
    }
}

fn main() {
    if let Ok(dir) = std::env::var(OPEN_PROBE_ENV) {
        run_open_probe(std::path::Path::new(&dir));
        return;
    }

    let mut points = Vec::new();
    for &(n, measure_legacy) in &[(100usize, true), (1_000, true), (10_000, false)] {
        let point = measure(n, measure_legacy);
        println!(
            "n = {:>6}: streaming {:>12.0} pairs/s{}  candidate mem {} B (eager would be {} B)",
            point.n,
            point.streaming_pairs_per_sec,
            match point.speedup {
                Some(s) => format!(", map-based speedup {s:.1}x"),
                None => String::new(),
            },
            point.streaming_candidate_bytes,
            point.eager_candidate_bytes,
        );
        points.push(point);
    }

    let service_reuse = measure_service_reuse(20_000, 30, 8);
    println!(
        "service_reuse: n = {}, {} features, k = {}: cold {:.2} ms/query, first service \
         query {:.2} ms, warm {:.2} ms/query — {:.1}x from view reuse",
        service_reuse.n,
        service_reuse.features,
        service_reuse.k,
        service_reuse.cold_ms_per_query,
        service_reuse.service_first_query_ms,
        service_reuse.warm_ms_per_query,
        service_reuse.speedup,
    );

    let mut sharded_encode = Vec::new();
    for n in [100_000usize, 1_000_000] {
        measure_sharded_encode_sweep(n, &mut sharded_encode);
    }

    let mut cold_start = Vec::new();
    for n in [100_000usize, 1_000_000] {
        let point = measure_cold_start(n);
        println!(
            "cold_start n = {:>8}: JSON re-parse {:>8.1} ms ({} B) vs snapshot open \
             {:>8.1} ms ({} B) — {:.1}x; open peak {} B, resident {} B",
            point.n,
            point.json_parse_ms,
            point.json_bytes,
            point.snapshot_open_ms,
            point.snapshot_bytes,
            point.speedup,
            point.peak_open_bytes,
            point.open_resident_bytes,
        );
        cold_start.push(point);
    }

    let mut explain_latency = Vec::new();
    for n in [20_000usize, 100_000] {
        let point = measure_explain_latency(n);
        println!(
            "explain_latency n = {:>7} ({} rows × {} attrs): enumerate {:.1} ms, featurize \
             {:.1} ms, relief {:.1} ms (naive {:.1} ms), tree {:.1} ms (naive {:.1} ms) — \
             trainer {:.1}x, warm explain {:.1} ms",
            point.n,
            point.training_rows,
            point.training_attrs,
            point.enumerate_ms,
            point.featurize_ms,
            point.relief_ms,
            point.naive_relief_ms,
            point.tree_ms,
            point.naive_tree_ms,
            point.trainer_speedup,
            point.explain_ms,
        );
        explain_latency.push(point);
    }

    let serve_qps = measure_serve_qps(2_000, 8, 12);
    println!(
        "serve_qps: n = {}, {} connections x {} requests (budget {} units, request {} units): \
         {} ok / {} shed / {} expired of {} sent — {:.1} qps, p50 {:.1} ms, p99 {:.1} ms",
        serve_qps.n,
        serve_qps.connections,
        serve_qps.requests_per_connection,
        serve_qps.budget_units,
        serve_qps.request_units,
        serve_qps.ok,
        serve_qps.shed,
        serve_qps.deadline,
        serve_qps.sent,
        serve_qps.qps,
        serve_qps.p50_ms,
        serve_qps.p99_ms,
    );

    let mut live_ingest = Vec::new();
    let live_ingest_shapes: [(usize, Option<FsyncPolicy>); 5] = [
        (100_000, None),
        (1_000_000, None),
        // The durability tax at n = 100k: fsync per ack, amortized fsync,
        // and journal-only (fsync deferred to checkpoints — the policy
        // that should stay within 10% of the un-journaled point above).
        (100_000, Some(FsyncPolicy::Always)),
        (100_000, Some(FsyncPolicy::EveryN(8))),
        (100_000, Some(FsyncPolicy::OnCheckpoint)),
    ];
    for (n, journal) in live_ingest_shapes {
        let point = measure_live_ingest(n, 64, 8, journal);
        println!(
            "live_ingest n = {:>8} (fsync {:>12}): full rebuild {:>8.1} ms vs delta \
             refresh {:>6.2} ms ({:.0}x), {:.0} appends/s sustained, query {:.1} ms warm, \
             {} tail rows ({} delta refreshes, {} full rebuild)",
            point.n,
            point.fsync.as_deref().unwrap_or("off"),
            point.full_rebuild_ms,
            point.delta_refresh_ms,
            point.refresh_speedup,
            point.appends_per_sec,
            point.mean_query_ms,
            point.tail_rows,
            point.delta_refreshes,
            point.full_rebuilds,
        );
        live_ingest.push(point);
    }

    let blocked_enumeration = measure_blocked_enumeration(100_000, 10);
    println!(
        "blocked enumeration: n = {}, groups of {}: {} candidates (vs {} unblocked) in \
         {:.1} ms, {} related",
        blocked_enumeration.n,
        blocked_enumeration.group_size,
        blocked_enumeration.enumerated,
        blocked_enumeration.unblocked_space,
        blocked_enumeration.elapsed_ms,
        blocked_enumeration.related,
    );

    let report = PairsBenchReport {
        description: "Pair-classification throughput of the streaming columnar pipeline vs \
                      the legacy map-based path (uncapped points are like-for-like: both \
                      paths classify every enumerated pair; the capped point measures \
                      streaming enumeration under the production cap).  Candidate memory is \
                      the state held during enumeration — streaming holds only related \
                      pairs.  service_reuse answers k blocked queries through one \
                      XplainService (cached columnar view) vs k cold explain calls that \
                      re-encode the log each time.  sharded_encode ingests and encodes \
                      n-record logs as independent shards merged by dictionary remapping \
                      (bit-identical to the single-shot build); speedups scale with \
                      hardware_threads and degenerate to ~1x on one core.  cold_start \
                      compares time-to-first-queryable-view from JSON (parse + catalog \
                      rebuild + full re-encode) against opening a segmented binary \
                      snapshot (read + fingerprint-verify + decode stored columns, no \
                      re-encode).  blocked_enumeration classifies a despite-blocked query \
                      over 100k records.  explain_latency breaks one warm blocked query \
                      into phases (enumerate+sample / featurize / relief / tree) on a \
                      trainer-heavy log (numeric group-level metrics give the training \
                      dataset high-cardinality continuous base features) and times the \
                      retained naive trainer (O(d·n) candidate rescans, row-at-a-time \
                      Relief) against the sweep trainer (single-sort O(n log n) splits, \
                      columnar Relief) on the identical dataset, outputs cross-checked \
                      equal.  serve_qps drives an open-loop many-client workload through \
                      the network front-end over loopback sockets with the admission \
                      budget sized to half the connection depth, so queueing and typed \
                      load shedding are both on the measured path; latency percentiles \
                      cover successful responses only.  live_ingest drives sustained \
                      append batches through XplainService::append while serving \
                      queries: each batch is spliced into the cached view's append \
                      tail (O(tail) delta refresh), measured against the from-scratch \
                      re-encode a non-delta cache would pay after every append; \
                      journaled points (fsync = always / every:8 / oncheckpoint) add \
                      the write-ahead append journal to the measured loop, so the \
                      appends_per_sec deltas are the price of each durability tier.  \
                      Pair enumeration fans out over threads by default above \
                      parallel_enumeration_threshold records."
            .to_string(),
        hardware_threads: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        parallel_enumeration_threshold: PARALLEL_ENUMERATION_THRESHOLD,
        points,
        service_reuse,
        sharded_encode,
        cold_start,
        blocked_enumeration,
        explain_latency,
        serve_qps,
        live_ingest,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // Write to the workspace root (identified by ROADMAP.md) whether run
    // from the root or via `cargo bench`, whose CWD is the bench crate.
    let path = if std::path::Path::new("ROADMAP.md").exists() {
        "BENCH_pairs.json"
    } else if std::path::Path::new("../../ROADMAP.md").exists() {
        "../../BENCH_pairs.json"
    } else {
        "BENCH_pairs.json"
    };
    std::fs::write(path, &json).expect("BENCH_pairs.json written");
    println!("wrote {path}");
}
