//! Figure 3(c): explaining a pair of `simple-filter.pig` jobs when the log
//! contains only `simple-groupby.pig` jobs.

use criterion::{criterion_group, criterion_main, Criterion};
use perfxplain_bench::experiments::different_job_log;
use perfxplain_bench::ExperimentContext;
use std::hint::black_box;

fn bench_fig3c(c: &mut Criterion) {
    let mut ctx = ExperimentContext::quick(1633);
    ctx.runs = 1;
    ctx.widths = vec![0, 1, 2, 3];

    let series = different_job_log(&ctx);
    for s in &series {
        let line: Vec<String> = s
            .points
            .iter()
            .map(|p| format!("w{}={:.2}", p.width, p.precision.mean))
            .collect();
        println!("fig3c {}: {}", s.technique, line.join(" "));
    }

    let mut group = c.benchmark_group("fig3c_different_job");
    group.sample_size(10);
    group.bench_function("all_techniques", |b| {
        b.iter(|| different_job_log(black_box(&ctx)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3c);
criterion_main!(benches);
