//! Table 2: the workload substrate itself — running the parameter-grid sweep
//! on the simulator and collecting the Hadoop/Ganglia logs into an execution
//! log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hadoop_logs::collect_traces;
use std::hint::black_box;
use workload::{GridSpec, SweepOptions};

fn bench_table2(c: &mut Criterion) {
    // Print the measured grid summary for a strided sweep once.
    let options = SweepOptions::default().with_stride(12).with_parallelism(4);
    let sweep = workload::grid::run_sweep(&GridSpec::paper_table2(), &options);
    println!(
        "table2: ran {} of 540 configurations; mean job duration {:.0} s",
        sweep.traces.len(),
        sweep.traces.iter().map(|t| t.duration()).sum::<f64>() / sweep.traces.len() as f64
    );

    let mut group = c.benchmark_group("table2_workload");
    group.sample_size(10);

    group.bench_function("simulate_one_grid_configuration", |b| {
        let grid = GridSpec::reduced();
        let configs = grid.configurations();
        let excite = workload::ExciteSpec::default().generate();
        let mut i = 0usize;
        b.iter(|| {
            let config = &configs[i % configs.len()];
            i += 1;
            let mut cluster = mrsim::Cluster::new(
                mrsim::ClusterSpec::with_instances(config.instances),
                i as u64,
            );
            cluster.run_job(black_box(config.job_spec(&excite)))
        })
    });

    // Collecting (render + parse + featurise) a handful of traces.
    let few: Vec<mrsim::JobTrace> = sweep.traces.iter().take(4).cloned().collect();
    group.bench_with_input(
        BenchmarkId::new("collect_traces", few.len()),
        &few,
        |b, few| b.iter(|| collect_traces(black_box(few)).unwrap()),
    );
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
