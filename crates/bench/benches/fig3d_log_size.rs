//! Figure 3(d): width-3 precision as a function of the training-log size
//! (10% … 50% of the jobs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfxplain_bench::experiments::log_size_sweep;
use perfxplain_bench::ExperimentContext;
use perfxplain_core::eval::{related_pairs_for_evaluation, split_log};
use perfxplain_core::{generate_explanation, Technique};
use std::hint::black_box;

fn bench_fig3d(c: &mut Criterion) {
    let mut ctx = ExperimentContext::quick(1634);
    ctx.runs = 2;

    let series = log_size_sweep(&ctx, &ctx.job_query, &[0.1, 0.3, 0.5]);
    for s in &series {
        let line: Vec<String> = s
            .points
            .iter()
            .map(|(f, agg)| format!("{:.0}%={:.2}", f * 100.0, agg.mean))
            .collect();
        println!("fig3d {}: {}", s.technique, line.join(" "));
    }

    let mut group = c.benchmark_group("fig3d_log_size");
    group.sample_size(10);
    for fraction in [0.1f64, 0.5] {
        let (train, test) = split_log(&ctx.log, &ctx.job_query.bound, fraction, 11);
        let test_set = related_pairs_for_evaluation(&test, &ctx.job_query.bound, &ctx.config);
        group.bench_with_input(
            BenchmarkId::new("perfxplain_width3", format!("{:.0}%", fraction * 100.0)),
            &fraction,
            |b, _| {
                b.iter(|| {
                    let explanation = generate_explanation(
                        Technique::PerfXplain,
                        black_box(&train),
                        &ctx.job_query.bound,
                        &ctx.config,
                    );
                    explanation
                        .ok()
                        .and_then(|e| perfxplain_core::metrics::precision(&test_set, &e).value)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3d);
criterion_main!(benches);
