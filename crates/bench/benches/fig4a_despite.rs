//! Figure 4(a): relevance of PerfXplain-generated despite clauses as a
//! function of their width, for both queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfxplain_bench::experiments::despite_relevance;
use perfxplain_bench::ExperimentContext;
use perfxplain_core::PerfXplain;
use std::hint::black_box;

fn bench_fig4a(c: &mut Criterion) {
    let mut ctx = ExperimentContext::quick(1641);
    ctx.runs = 2;

    for binding in [&ctx.task_query, &ctx.job_query] {
        let result = despite_relevance(&ctx, binding);
        let line: Vec<String> = result
            .series
            .iter()
            .map(|p| format!("w{}={:.2}", p.width, p.relevance.mean))
            .collect();
        println!("fig4a {}: {}", result.query, line.join(" "));
    }

    let mut group = c.benchmark_group("fig4a_despite_generation");
    group.sample_size(10);
    for (name, binding) in [
        ("WhyLastTaskFaster", &ctx.task_query),
        ("WhySlowerDespiteSameNumInstances", &ctx.job_query),
    ] {
        // Benchmark the despite-clause generation on an under-specified
        // version of the query (empty DESPITE clause).
        let mut bound = binding.bound.clone();
        bound.query = bound
            .query
            .clone()
            .with_despite(pxql::Predicate::always_true());
        let engine = PerfXplain::new(ctx.config.clone());
        group.bench_with_input(
            BenchmarkId::new("generate_despite", name),
            &bound,
            |b, bound| b.iter(|| engine.generate_despite(black_box(&ctx.log), bound).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4a);
criterion_main!(benches);
