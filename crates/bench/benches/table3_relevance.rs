//! Table 3: relevance of the two PXQL queries with an empty despite clause
//! versus with a PerfXplain-generated despite clause.

use criterion::{criterion_group, criterion_main, Criterion};
use perfxplain_bench::experiments::despite_relevance;
use perfxplain_bench::ExperimentContext;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut ctx = ExperimentContext::quick(7333);
    ctx.runs = 2;

    for binding in [&ctx.task_query, &ctx.job_query] {
        let result = despite_relevance(&ctx, binding);
        println!(
            "table3 {}: relevance before={:.2} after={:.2}",
            result.query, result.before.mean, result.after.mean
        );
    }

    let mut group = c.benchmark_group("table3_relevance");
    group.sample_size(10);
    group.bench_function("despite_relevance_job_query", |b| {
        b.iter(|| despite_relevance(black_box(&ctx), &ctx.job_query))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
