//! The benchmark and reproduction harness.
//!
//! Every table and figure of the paper's evaluation (Section 6) has a
//! corresponding experiment function here and a Criterion bench target in
//! `benches/`; the `reproduce` binary prints the regenerated tables/series:
//!
//! | paper artefact | experiment | bench target |
//! |---|---|---|
//! | Table 2 (parameter grid) | [`experiments::table2_summary`] | `table2_workload` |
//! | Table 3 (despite-clause relevance before/after) | [`experiments::despite_relevance`] | `table3_relevance` |
//! | Figure 3(a) precision vs width, WhyLastTaskFaster | [`experiments::precision_vs_width`] | `fig3_precision` |
//! | Figure 3(b) precision vs width, WhySlowerDespiteSameNumInstances | [`experiments::precision_vs_width`] | `fig3_precision` |
//! | Figure 3(c) different-job log | [`experiments::different_job_log`] | `fig3c_different_job` |
//! | Figure 3(d) precision vs log size | [`experiments::log_size_sweep`] | `fig3d_log_size` |
//! | Figure 4(a) relevance of generated despite clauses | [`experiments::despite_relevance`] | `fig4a_despite` |
//! | Figure 4(b) precision/generality trade-off | [`experiments::precision_vs_width`] | `fig4b_tradeoff` |
//! | Figure 4(c) feature levels | [`experiments::feature_levels`] | `fig4c_feature_levels` |
//! | design-choice ablations (beyond the paper) | [`experiments::ablations`] | `ablations` |
//! | substrate micro-benchmarks | — | `substrate` |
//!
//! Absolute numbers differ from the paper (its substrate was EC2, ours is a
//! simulator), but the comparisons the paper draws — which technique wins,
//! how precision reacts to width, log size and feature level, how much a
//! generated despite clause lifts relevance — are reproduced and recorded in
//! `EXPERIMENTS.md`.

pub mod context;
pub mod experiments;
pub mod synthetic;
pub mod table;

pub use context::ExperimentContext;
pub use experiments::{
    AblationResult, DespiteRelevance, LevelSeries, LogSizeSeries, RelevancePoint, TechniqueSeries,
    WidthPoint,
};
pub use synthetic::{blocked_log, blocked_log_with_group_metrics, BLOCKED_QUERY};
pub use table::{fmt_aggregate, render_table};
