//! Plain-text table rendering for the `reproduce` binary and the benches.

/// Renders a titled, column-aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            } else {
                widths.push(cell.len());
            }
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
    out.push_str(&"=".repeat(title.len().max(total)));
    out.push('\n');

    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, width) in widths.iter().enumerate() {
            if i > 0 {
                line.push_str(" | ");
            }
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            line.push_str(&format!("{cell:<width$}"));
        }
        line.trim_end().to_string()
    };

    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(total.max(title.len())));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Formats an aggregate as `mean ± stddev`.
pub fn fmt_aggregate(agg: &perfxplain_core::Aggregate) -> String {
    if agg.samples == 0 {
        "n/a".to_string()
    } else {
        format!("{:.2} ± {:.2}", agg.mean, agg.stddev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfxplain_core::Aggregate;

    #[test]
    fn table_is_aligned_and_complete() {
        let text = render_table(
            "Figure X",
            &["width", "precision"],
            &[
                vec!["0".to_string(), "0.50".to_string()],
                vec!["3".to_string(), "0.93".to_string()],
            ],
        );
        assert!(text.starts_with("Figure X\n"));
        assert!(text.contains("width | precision"));
        assert!(text.lines().count() >= 6);
        assert!(text.contains("3     | 0.93"));
    }

    #[test]
    fn aggregates_format_with_uncertainty() {
        let agg = Aggregate {
            mean: 0.875,
            stddev: 0.0321,
            samples: 10,
        };
        assert_eq!(fmt_aggregate(&agg), "0.88 ± 0.03");
        assert_eq!(fmt_aggregate(&Aggregate::default()), "n/a");
    }
}
