//! The shared experiment context: an execution log, the paper's two bound
//! queries and the evaluation configuration.

use perfxplain_core::ExecutionLog;
use perfxplain_core::ExplainConfig;
use workload::{
    build_execution_log, why_last_task_faster, why_slower_despite_same_num_instances, LogPreset,
    QueryBinding,
};

/// Everything the experiments need.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The execution log (simulated sweep, collected through the Hadoop log
    /// substrate).
    pub log: ExecutionLog,
    /// The *WhySlowerDespiteSameNumInstances* query, bound to a pair of
    /// interest in `log`.
    pub job_query: QueryBinding,
    /// The *WhyLastTaskFaster* query, bound to a pair of interest in `log`.
    pub task_query: QueryBinding,
    /// Base explanation-engine configuration (per-run seeds are derived from
    /// it).
    pub config: ExplainConfig,
    /// Number of repeated train/test rounds per experiment point.
    pub runs: usize,
    /// Explanation widths evaluated by the width sweeps.
    pub widths: Vec<usize>,
}

impl ExperimentContext {
    /// Prepares a context from a workload preset.
    ///
    /// # Panics
    /// Panics when the generated log does not exhibit the two phenomena the
    /// queries ask about — which does not happen for the shipped presets and
    /// seeds.
    pub fn prepare(preset: LogPreset, seed: u64, runs: usize) -> Self {
        let log = build_execution_log(preset, seed);
        let job_query = why_slower_despite_same_num_instances(&log)
            .expect("the sweep contains a slower job with the same instance count and script");
        let task_query =
            why_last_task_faster(&log).expect("the sweep contains the last-task-faster pattern");
        ExperimentContext {
            log,
            job_query,
            task_query,
            config: ExplainConfig::default(),
            runs,
            widths: (0..=5).collect(),
        }
    }

    /// The configuration used by the paper's figures (the `Small` preset —
    /// comparable coverage to the full grid — with ten repetitions, as in
    /// the paper's 2-fold × 10 methodology).
    pub fn paper_scale(seed: u64) -> Self {
        ExperimentContext::prepare(LogPreset::Small, seed, 10)
    }

    /// A deliberately small context used by the Criterion benches and smoke
    /// tests: tiny log, three repetitions, smaller training samples.
    pub fn quick(seed: u64) -> Self {
        let mut ctx = ExperimentContext::prepare(LogPreset::Tiny, seed, 3);
        ctx.config = ctx.config.with_sample_size(400);
        ctx.widths = (0..=3).collect();
        ctx
    }

    /// Maximum width evaluated by the width sweeps.
    pub fn max_width(&self) -> usize {
        self.widths.iter().copied().max().unwrap_or(0)
    }

    /// The per-run seed for round `run`.
    pub fn run_seed(&self, run: usize) -> u64 {
        self.config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(run as u64 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_is_usable() {
        let ctx = ExperimentContext::quick(5);
        assert!(ctx.log.jobs().count() > 10);
        assert_eq!(ctx.runs, 3);
        assert_eq!(ctx.max_width(), 3);
        assert_ne!(ctx.run_seed(0), ctx.run_seed(1));
        assert_eq!(ctx.job_query.name, "WhySlowerDespiteSameNumInstances");
        assert_eq!(ctx.task_query.name, "WhyLastTaskFaster");
    }
}
