//! Shared synthetic workloads.
//!
//! The blocked debugging-session log is used by the `pairs_pipeline` bench
//! (view-reuse and blocked-enumeration scenarios), the `smoke_100k` CI
//! binary and the sharded-encode concurrency test — one generator, so the
//! three consumers can never drift apart.

use perfxplain_core::{ExecutionLog, ExecutionRecord};

/// A log shaped like an interactive debugging session's: a nominal
/// `pigscript` that the canonical queries block on (one script per
/// `group_size` consecutive jobs, giving small per-script candidate
/// groups), plus `extra_features` counter/Ganglia-style numeric columns to
/// widen the records.  Within each script group, big-block jobs plateau at
/// ~600 s (observed pairs) while small-block jobs scale with their input
/// (expected pairs), so the canonical despite-blocked query is answerable
/// for every group.
pub fn blocked_log(n: usize, group_size: usize, extra_features: usize) -> ExecutionLog {
    blocked_log_with_group_metrics(n, group_size, extra_features, 0)
}

/// [`blocked_log`] plus `group_metrics` **numeric group-level** features:
/// continuous values constant within a blocking group and distinct across
/// groups.  Within-group training pairs agree on them, so the split-search
/// dataset gains high-cardinality numeric *base* features — one distinct
/// value per sampled group — which is exactly the regime where candidate
/// threshold search dominates per-query explanation latency (O(d·n) for the
/// naive evaluator, O(n log n) for the sweep).  The `explain_latency` bench
/// scenario and the `explain_smoke` CI binary both drive this shape.
pub fn blocked_log_with_group_metrics(
    n: usize,
    group_size: usize,
    extra_features: usize,
    group_metrics: usize,
) -> ExecutionLog {
    let mut log = ExecutionLog::new();
    for i in 0..n {
        let position = i % group_size;
        let group = i / group_size;
        let big_blocks = position.is_multiple_of(2);
        let input = (1 + position) as f64 * 1.0e9;
        let duration = if big_blocks {
            600.0 + (i % 7) as f64
        } else {
            input / 5.0e7 + (i % 5) as f64
        };
        let mut record = ExecutionRecord::job(format!("job_{i}"))
            .with_feature("pigscript", format!("script_{group}.pig"))
            .with_feature("inputsize", input)
            .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
            .with_feature("duration", duration);
        for w in 0..extra_features {
            record.set_feature(format!("metric_{w:02}"), ((i * 31 + w * 7) % 997) as f64);
        }
        for g in 0..group_metrics {
            record.set_feature(
                format!("groupmetric_{g:02}"),
                (group * 31 + g * 7) as f64 * 0.37,
            );
        }
        log.push(record);
    }
    log.rebuild_catalogs();
    log
}

/// The canonical despite-blocked PXQL query text over [`blocked_log`]
/// (pair of interest supplied separately: members 0 and 2 of any group are
/// big-block jobs — larger input, plateaued duration).
pub const BLOCKED_QUERY: &str = "DESPITE pigscript_isSame = T AND inputsize_compare = GT\n\
                                 OBSERVED duration_compare = SIM\n\
                                 EXPECTED duration_compare = GT";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_log_groups_and_widens_as_asked() {
        let log = blocked_log(25, 5, 3);
        assert_eq!(log.jobs().count(), 25);
        // 4 base features + 3 metrics.
        assert_eq!(log.job_catalog().len(), 7);
        let first = log.get("job_0").unwrap();
        let grouped = log.get("job_4").unwrap();
        let next_group = log.get("job_5").unwrap();
        assert_eq!(first.feature("pigscript"), grouped.feature("pigscript"));
        assert_ne!(first.feature("pigscript"), next_group.feature("pigscript"));
    }

    #[test]
    fn group_metrics_are_constant_within_and_distinct_across_groups() {
        let log = blocked_log_with_group_metrics(20, 5, 0, 2);
        assert_eq!(log.job_catalog().len(), 6);
        let first = log.get("job_0").unwrap();
        let grouped = log.get("job_4").unwrap();
        let next_group = log.get("job_5").unwrap();
        for g in ["groupmetric_00", "groupmetric_01"] {
            assert_eq!(first.feature(g), grouped.feature(g));
            assert_ne!(first.feature(g), next_group.feature(g));
        }
    }
}
