//! The experiments behind every table and figure of the paper's evaluation,
//! plus the design-choice ablations.
//!
//! All experiments follow the paper's methodology (Section 6.1): the log is
//! split into a training log and a test log by assigning each job (and its
//! tasks) to the training side with a given probability, explanations are
//! generated from the training log only, and their quality metrics are
//! measured over the related pairs of the test log.  Every experiment point
//! is repeated `runs` times with different split/sampling seeds and reported
//! as mean ± standard deviation.

use crate::context::ExperimentContext;
use perfxplain_core::eval::{related_pairs_for_evaluation, split_log};
use perfxplain_core::{
    generate_explanation, metrics, Aggregate, BoundQuery, ExecutionLog, ExplainConfig, Explanation,
    FeatureLevel, PerfXplain, Technique, TrainingSet,
};
use pxql::{parse_query, Predicate};
use workload::QueryBinding;

// ---------------------------------------------------------------------------
// Shared result types
// ---------------------------------------------------------------------------

/// Precision and generality of a technique at one explanation width.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthPoint {
    /// Explanation width (number of atomic predicates in the because
    /// clause).
    pub width: usize,
    /// Precision over the test log's related pairs.
    pub precision: Aggregate,
    /// Generality over the test log's related pairs.
    pub generality: Aggregate,
}

/// A per-technique series of width points (one line of Figure 3(a)/(b)/(c)
/// or one point cloud of Figure 4(b)).
#[derive(Debug, Clone, PartialEq)]
pub struct TechniqueSeries {
    /// The technique.
    pub technique: Technique,
    /// One point per requested width.
    pub points: Vec<WidthPoint>,
}

/// Relevance of a generated despite clause at one width (Figure 4(a)).
#[derive(Debug, Clone, PartialEq)]
pub struct RelevancePoint {
    /// Despite-clause width.
    pub width: usize,
    /// Relevance over the test log's related pairs.
    pub relevance: Aggregate,
}

/// Table 3 + Figure 4(a): relevance before and after PerfXplain generates a
/// despite clause for an under-specified query.
#[derive(Debug, Clone, PartialEq)]
pub struct DespiteRelevance {
    /// Query name.
    pub query: String,
    /// Relevance of the empty despite clause.
    pub before: Aggregate,
    /// Relevance of the generated width-3 despite clause.
    pub after: Aggregate,
    /// Relevance for every width (Figure 4(a)).
    pub series: Vec<RelevancePoint>,
}

/// One technique's precision as a function of the training-log fraction
/// (Figure 3(d)).
#[derive(Debug, Clone, PartialEq)]
pub struct LogSizeSeries {
    /// The technique.
    pub technique: Technique,
    /// `(training fraction, width-3 precision)` points.
    pub points: Vec<(f64, Aggregate)>,
}

/// PerfXplain's precision per width for one feature level (Figure 4(c)).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSeries {
    /// The feature level.
    pub level: FeatureLevel,
    /// One point per width.
    pub points: Vec<WidthPoint>,
}

/// One row of the ablation study.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Human-readable name of the variant.
    pub name: String,
    /// Width-3 precision on the test log.
    pub precision: Aggregate,
    /// Width-3 generality on the test log.
    pub generality: Aggregate,
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// `(width, precision, generality)` measurements of one explanation across
/// the requested widths in one train/test round.
type RunMeasurements = Vec<(usize, Option<f64>, Option<f64>)>;

fn evaluate_widths(
    test_set: &TrainingSet,
    explanation: &Explanation,
    widths: &[usize],
) -> RunMeasurements {
    widths
        .iter()
        .map(|&width| {
            let truncated = explanation.truncated(width);
            let precision = metrics::precision(test_set, &truncated).value;
            let generality = metrics::generality(test_set, &truncated).value;
            (width, precision, generality)
        })
        .collect()
}

fn aggregate_series(widths: &[usize], raw: &[RunMeasurements]) -> Vec<WidthPoint> {
    widths
        .iter()
        .enumerate()
        .map(|(i, &width)| {
            let precisions: Vec<Option<f64>> = raw.iter().map(|run| run[i].1).collect();
            let generalities: Vec<Option<f64>> = raw.iter().map(|run| run[i].2).collect();
            WidthPoint {
                width,
                precision: Aggregate::from_values(&precisions),
                generality: Aggregate::from_values(&generalities),
            }
        })
        .collect()
}

/// Generates (with one technique, on one training log) and evaluates (on one
/// test set) across the requested widths; `None` when the technique could
/// not learn from this split.
fn one_round(
    technique: Technique,
    train: &ExecutionLog,
    test_set: &TrainingSet,
    query: &BoundQuery,
    config: &ExplainConfig,
    widths: &[usize],
) -> Option<RunMeasurements> {
    let explanation = generate_explanation(technique, train, query, config).ok()?;
    Some(evaluate_widths(test_set, &explanation, widths))
}

// ---------------------------------------------------------------------------
// Figures 3(a), 3(b), 4(b): precision (and generality) vs width
// ---------------------------------------------------------------------------

/// Regenerates the data behind Figures 3(a)/3(b) (precision vs width for the
/// three techniques) and, since generality is recorded alongside, Figure
/// 4(b) (the precision/generality trade-off).
pub fn precision_vs_width(ctx: &ExperimentContext, binding: &QueryBinding) -> Vec<TechniqueSeries> {
    let max_width = ctx.max_width();
    let mut per_technique: Vec<(Technique, Vec<RunMeasurements>)> = Technique::all()
        .into_iter()
        .map(|t| (t, Vec::new()))
        .collect();

    for run in 0..ctx.runs {
        let seed = ctx.run_seed(run);
        let (train, test) = split_log(&ctx.log, &binding.bound, 0.5, seed);
        let test_set = related_pairs_for_evaluation(&test, &binding.bound, &ctx.config);
        if test_set.is_empty() {
            continue;
        }
        let config = ctx.config.clone().with_width(max_width).with_seed(seed);
        for (technique, results) in &mut per_technique {
            if let Some(round) = one_round(
                *technique,
                &train,
                &test_set,
                &binding.bound,
                &config,
                &ctx.widths,
            ) {
                results.push(round);
            }
        }
    }

    per_technique
        .into_iter()
        .map(|(technique, raw)| TechniqueSeries {
            technique,
            points: aggregate_series(&ctx.widths, &raw),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 3 and Figure 4(a): generated despite clauses
// ---------------------------------------------------------------------------

/// Strips the despite clause of a bound query (the "under-specified" form of
/// Section 6.4).
fn underspecified(binding: &QueryBinding) -> BoundQuery {
    let mut bound = binding.bound.clone();
    bound.query = bound.query.with_despite(Predicate::always_true());
    bound
}

/// Regenerates Table 3 and one curve of Figure 4(a) for a query: the
/// relevance of the empty despite clause vs PerfXplain-generated clauses of
/// increasing width.
pub fn despite_relevance(ctx: &ExperimentContext, binding: &QueryBinding) -> DespiteRelevance {
    let query = underspecified(binding);
    let max_width = ctx.max_width();

    let mut per_width: Vec<Vec<Option<f64>>> = vec![Vec::new(); ctx.widths.len()];
    for run in 0..ctx.runs {
        let seed = ctx.run_seed(run);
        let (train, test) = split_log(&ctx.log, &query, 0.5, seed);
        let test_set = related_pairs_for_evaluation(&test, &query, &ctx.config);
        if test_set.is_empty() {
            continue;
        }
        let mut config = ctx.config.clone().with_seed(seed);
        config.despite_width = max_width;
        let engine = PerfXplain::new(config);
        let Ok(despite) = engine.generate_despite(&train, &query) else {
            continue;
        };
        for (i, &width) in ctx.widths.iter().enumerate() {
            let clause = despite.truncated(width);
            per_width[i].push(metrics::relevance(&test_set, &clause).value);
        }
    }

    let series: Vec<RelevancePoint> = ctx
        .widths
        .iter()
        .enumerate()
        .map(|(i, &width)| RelevancePoint {
            width,
            relevance: Aggregate::from_values(&per_width[i]),
        })
        .collect();
    let before = series
        .iter()
        .find(|p| p.width == 0)
        .map(|p| p.relevance)
        .unwrap_or_default();
    let after = series
        .iter()
        .find(|p| p.width == 3.min(max_width))
        .map(|p| p.relevance)
        .unwrap_or_default();
    DespiteRelevance {
        query: binding.name.to_string(),
        before,
        after,
        series,
    }
}

// ---------------------------------------------------------------------------
// Figure 3(c): explaining a pair of jobs unlike anything in the log
// ---------------------------------------------------------------------------

/// Regenerates Figure 3(c): the training log contains only
/// `simple-groupby.pig` jobs (plus the pair of interest, which runs
/// `simple-filter.pig`), and explanations are evaluated over the filter
/// jobs.
pub fn different_job_log(ctx: &ExperimentContext) -> Vec<TechniqueSeries> {
    let filter_script = "simple-filter.pig";
    let filter_job_ids: Vec<&str> = ctx
        .log
        .jobs()
        .filter(|j| j.feature("pigscript").as_str() == Some(filter_script))
        .map(|j| j.id.as_str())
        .collect();
    let groupby_job_ids: Vec<&str> = ctx
        .log
        .jobs()
        .filter(|j| j.feature("pigscript").as_str() != Some(filter_script))
        .map(|j| j.id.as_str())
        .collect();

    let filter_log = ctx.log.restrict_to_jobs(&filter_job_ids);
    let binding = workload::why_slower_despite_same_num_instances(&filter_log)
        .expect("filter jobs exhibit the slower-job pattern");

    // Training log: every groupby job plus the two filter jobs of interest.
    let mut train_ids = groupby_job_ids.clone();
    train_ids.push(&binding.bound.left_id);
    train_ids.push(&binding.bound.right_id);
    let train = ctx.log.restrict_to_jobs(&train_ids);
    // Evaluation log: all filter jobs (as in Section 6.5).
    let test_set = related_pairs_for_evaluation(&filter_log, &binding.bound, &ctx.config);

    let max_width = ctx.max_width();
    let mut out = Vec::new();
    for technique in Technique::all() {
        let mut raw = Vec::new();
        for run in 0..ctx.runs {
            let config = ctx
                .config
                .clone()
                .with_width(max_width)
                .with_seed(ctx.run_seed(run));
            if let Some(round) = one_round(
                technique,
                &train,
                &test_set,
                &binding.bound,
                &config,
                &ctx.widths,
            ) {
                raw.push(round);
            }
        }
        out.push(TechniqueSeries {
            technique,
            points: aggregate_series(&ctx.widths, &raw),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 3(d): varying the log size
// ---------------------------------------------------------------------------

/// Regenerates Figure 3(d): width-3 precision of every technique when only a
/// fraction of the jobs is available for training.
pub fn log_size_sweep(
    ctx: &ExperimentContext,
    binding: &QueryBinding,
    fractions: &[f64],
) -> Vec<LogSizeSeries> {
    let width = 3usize;
    let mut out: Vec<LogSizeSeries> = Technique::all()
        .into_iter()
        .map(|technique| LogSizeSeries {
            technique,
            points: Vec::new(),
        })
        .collect();

    for &fraction in fractions {
        let mut per_technique: Vec<Vec<Option<f64>>> = vec![Vec::new(); Technique::all().len()];
        for run in 0..ctx.runs {
            let seed = ctx.run_seed(run) ^ (fraction * 1000.0) as u64;
            let (train, test) = split_log(&ctx.log, &binding.bound, fraction, seed);
            let test_set = related_pairs_for_evaluation(&test, &binding.bound, &ctx.config);
            if test_set.is_empty() {
                continue;
            }
            let config = ctx.config.clone().with_width(width).with_seed(seed);
            for (t_idx, technique) in Technique::all().into_iter().enumerate() {
                let value = generate_explanation(technique, &train, &binding.bound, &config)
                    .ok()
                    .and_then(|e| metrics::precision(&test_set, &e).value);
                per_technique[t_idx].push(value);
            }
        }
        for (t_idx, series) in out.iter_mut().enumerate() {
            series
                .points
                .push((fraction, Aggregate::from_values(&per_technique[t_idx])));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 4(c): feature levels
// ---------------------------------------------------------------------------

/// Regenerates Figure 4(c): PerfXplain's precision per width when the
/// feature vocabulary is restricted to level 1 / 2 / 3.
pub fn feature_levels(ctx: &ExperimentContext, binding: &QueryBinding) -> Vec<LevelSeries> {
    let max_width = ctx.max_width();
    FeatureLevel::all()
        .into_iter()
        .map(|level| {
            let mut raw = Vec::new();
            for run in 0..ctx.runs {
                let seed = ctx.run_seed(run);
                let (train, test) = split_log(&ctx.log, &binding.bound, 0.5, seed);
                let test_set = related_pairs_for_evaluation(&test, &binding.bound, &ctx.config);
                if test_set.is_empty() {
                    continue;
                }
                let config = ctx
                    .config
                    .clone()
                    .with_width(max_width)
                    .with_feature_level(level)
                    .with_seed(seed);
                if let Some(round) = one_round(
                    Technique::PerfXplain,
                    &train,
                    &test_set,
                    &binding.bound,
                    &config,
                    &ctx.widths,
                ) {
                    raw.push(round);
                }
            }
            LevelSeries {
                level,
                points: aggregate_series(&ctx.widths, &raw),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 2: the parameter grid and the collected log
// ---------------------------------------------------------------------------

/// The parameter rows of Table 2 (name, values) plus a summary of the
/// collected log: per script and instance count, the number of jobs and
/// their mean duration for each input size.
pub fn table2_summary(ctx: &ExperimentContext) -> (Vec<Vec<String>>, Vec<Vec<String>>) {
    let grid = workload::GridSpec::paper_table2();
    let parameters = vec![
        vec![
            "Number of instances".to_string(),
            grid.instances
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", "),
        ],
        vec![
            "Input file size".to_string(),
            "1.3 GB, 2.6 GB (30 / 60 Excite copies)".to_string(),
        ],
        vec![
            "DFS block size".to_string(),
            "64 MB, 256 MB, 1024 MB".to_string(),
        ],
        vec![
            "Reduce tasks factor".to_string(),
            grid.reduce_tasks_factors
                .iter()
                .map(f64::to_string)
                .collect::<Vec<_>>()
                .join(", "),
        ],
        vec![
            "IO sort factor".to_string(),
            grid.io_sort_factors
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(", "),
        ],
        vec![
            "Pig script".to_string(),
            "simple-filter.pig, simple-groupby.pig".to_string(),
        ],
    ];

    // Measured summary of the log actually collected for this context.
    let mut groups: std::collections::BTreeMap<(String, u64), Vec<f64>> =
        std::collections::BTreeMap::new();
    for job in ctx.log.jobs() {
        let script = job
            .feature("pigscript")
            .as_str()
            .unwrap_or("unknown")
            .to_string();
        let instances = job.feature("numinstances").as_num().unwrap_or(0.0) as u64;
        if let Some(duration) = job.duration() {
            groups
                .entry((script, instances))
                .or_default()
                .push(duration);
        }
    }
    let measured = groups
        .into_iter()
        .map(|((script, instances), durations)| {
            let mean = durations.iter().sum::<f64>() / durations.len() as f64;
            let max = durations.iter().cloned().fold(f64::MIN, f64::max);
            let min = durations.iter().cloned().fold(f64::MAX, f64::min);
            vec![
                script,
                instances.to_string(),
                durations.len().to_string(),
                format!("{mean:.0}"),
                format!("{min:.0}"),
                format!("{max:.0}"),
            ]
        })
        .collect();
    (parameters, measured)
}

// ---------------------------------------------------------------------------
// Ablations (beyond the paper)
// ---------------------------------------------------------------------------

/// Ablation study over the design choices Section 4.2/4.3 motivates: score
/// normalisation, the precision/generality weight, balanced sampling and the
/// sample size.  All variants are evaluated at width 3 on the job query.
pub fn ablations(ctx: &ExperimentContext, binding: &QueryBinding) -> Vec<AblationResult> {
    let variants: Vec<(String, ExplainConfig)> = vec![
        (
            "PerfXplain (paper defaults)".to_string(),
            ctx.config.clone(),
        ),
        (
            "no score normalisation".to_string(),
            ctx.config.clone().with_normalize_scores(false),
        ),
        (
            "uniform (unbalanced) sampling".to_string(),
            ctx.config.clone().with_balanced_sampling(false),
        ),
        (
            "precision weight w = 1.0".to_string(),
            ctx.config.clone().with_precision_weight(1.0),
        ),
        (
            "precision weight w = 0.5".to_string(),
            ctx.config.clone().with_precision_weight(0.5),
        ),
        (
            "sample size 200".to_string(),
            ctx.config.clone().with_sample_size(200),
        ),
    ];

    variants
        .into_iter()
        .map(|(name, base_config)| {
            let mut precisions = Vec::new();
            let mut generalities = Vec::new();
            for run in 0..ctx.runs {
                let seed = ctx.run_seed(run);
                let (train, test) = split_log(&ctx.log, &binding.bound, 0.5, seed);
                let test_set = related_pairs_for_evaluation(&test, &binding.bound, &ctx.config);
                if test_set.is_empty() {
                    continue;
                }
                let config = base_config.clone().with_width(3).with_seed(seed);
                match generate_explanation(Technique::PerfXplain, &train, &binding.bound, &config) {
                    Ok(explanation) => {
                        precisions.push(metrics::precision(&test_set, &explanation).value);
                        generalities.push(metrics::generality(&test_set, &explanation).value);
                    }
                    Err(_) => {
                        precisions.push(None);
                        generalities.push(None);
                    }
                }
            }
            AblationResult {
                name,
                precision: Aggregate::from_values(&precisions),
                generality: Aggregate::from_values(&generalities),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Sanity helper used by benches and the reproduce binary
// ---------------------------------------------------------------------------

/// Parses one of the paper's two query templates; used by benches that need
/// a query without a workload-provided binding.
pub fn paper_query_template(task_level: bool) -> BoundQuery {
    let text = if task_level {
        "FOR T1, T2 WHERE T1.TaskID = ? AND T2.TaskID = ?\n\
         DESPITE jobid_isSame = T AND inputsize_compare = SIM AND hostname_isSame = T\n\
         OBSERVED duration_compare = LT\n\
         EXPECTED duration_compare = SIM"
    } else {
        "FOR J1, J2 WHERE J1.JobID = ? AND J2.JobID = ?\n\
         DESPITE numinstances_isSame = T AND pigscript_isSame = T\n\
         OBSERVED duration_compare = GT\n\
         EXPECTED duration_compare = SIM"
    };
    BoundQuery::new(parse_query(text).expect("template parses"), "?", "?")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::quick(3);
        ctx.runs = 2;
        ctx.widths = vec![0, 1, 2];
        ctx
    }

    #[test]
    fn precision_vs_width_produces_all_series() {
        let ctx = quick_ctx();
        let series = precision_vs_width(&ctx, &ctx.job_query);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.points.len(), 3);
            for p in &s.points {
                if let Some(samples) = Some(p.precision.samples) {
                    if samples > 0 {
                        assert!((0.0..=1.0).contains(&p.precision.mean));
                    }
                }
            }
        }
        // PerfXplain produces measurements on at least one split.
        let px = series
            .iter()
            .find(|s| s.technique == Technique::PerfXplain)
            .unwrap();
        assert!(px.points.iter().any(|p| p.precision.samples > 0));
    }

    #[test]
    fn despite_relevance_produces_well_formed_series() {
        // The improvement itself (Table 3 / Figure 4(a)) only materialises
        // on properly sized logs — that is verified by the reproduce run in
        // EXPERIMENTS.md; on the tiny test log we check the structure and
        // metric bounds.
        let ctx = quick_ctx();
        let result = despite_relevance(&ctx, &ctx.job_query);
        assert_eq!(result.series.len(), ctx.widths.len());
        for point in &result.series {
            if point.relevance.samples > 0 {
                assert!((0.0..=1.0).contains(&point.relevance.mean));
            }
        }
        assert_eq!(result.query, "WhySlowerDespiteSameNumInstances");
    }

    #[test]
    fn log_size_sweep_covers_all_fractions() {
        let ctx = quick_ctx();
        let series = log_size_sweep(&ctx, &ctx.job_query, &[0.3, 0.6]);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.points.len(), 2);
        }
    }

    #[test]
    fn table2_summary_reports_every_script() {
        let ctx = quick_ctx();
        let (parameters, measured) = table2_summary(&ctx);
        assert_eq!(parameters.len(), 6);
        assert!(measured
            .iter()
            .any(|row| row[0].contains("simple-filter.pig")));
        assert!(measured
            .iter()
            .any(|row| row[0].contains("simple-groupby.pig")));
    }

    #[test]
    fn query_templates_parse() {
        assert_eq!(paper_query_template(true).query.despite.width(), 3);
        assert_eq!(paper_query_template(false).query.despite.width(), 2);
    }
}
