//! Release-mode smoke test of per-query explanation latency.
//!
//! Drives one despite-blocked PXQL query over a 100k-record log whose
//! training dataset carries high-cardinality continuous base features (one
//! distinct value per blocking group) — the regime where the pre-sweep
//! trainer's O(d·n) candidate rescans dominated per-query latency.  Fails
//! (non-zero exit) if encode + first query + a warm repeat exceed a
//! wall-clock ceiling, so a complexity regression on the split sweep, the
//! columnar Relief or the greedy clause loop fails CI instead of silently
//! slowing every query down.
//!
//! Run with `cargo run --release -p perfxplain-bench --bin explain_smoke`.

use perfxplain_bench::{blocked_log_with_group_metrics, BLOCKED_QUERY};
use perfxplain_core::{QueryRequest, XplainService};
use std::time::Instant;

/// Log size of the smoke run.
const N: usize = 100_000;
/// Records per pigscript blocking group.
const GROUP_SIZE: usize = 10;
/// Numeric group-level metrics (one distinct value per group, shared by
/// within-group pairs): these become continuous base features of the
/// training dataset, so the split search sweeps thousands of candidate
/// thresholds per attribute.
const GROUP_METRICS: usize = 3;
/// Wall-clock ceiling for encode + two answered queries.  Measured time on
/// one core is a few seconds; the naive trainer overshoots by an order of
/// magnitude on this shape, and a quadratic regression by far more.
const CEILING_SECS: f64 = 30.0;

fn main() {
    let log = blocked_log_with_group_metrics(N, GROUP_SIZE, 1, GROUP_METRICS);
    let service = XplainService::new(log);
    let request = QueryRequest::text(BLOCKED_QUERY).with_pair("job_2", "job_0");

    let started = Instant::now();
    // First query: builds the cached columnar view, then trains.
    let first = service
        .explain(&request)
        .expect("the smoke query must be answerable");
    let first_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(
        first.explanation.width() >= 1,
        "the smoke query produced an empty explanation"
    );
    assert!(!first.view_reused, "the first query cannot hit the cache");

    // Warm repeat: pure per-query training cost on the cached view.
    let warm_started = Instant::now();
    let warm = service
        .explain(&request)
        .expect("the warm smoke query must be answerable");
    let warm_ms = warm_started.elapsed().as_secs_f64() * 1e3;
    assert!(warm.view_reused, "the warm query missed the view cache");
    assert_eq!(
        warm.explanation, first.explanation,
        "the warm query diverged from the cold one"
    );

    let total = started.elapsed();
    println!(
        "explain_smoke: {} records, groups of {}, {} group metrics: first query {:.0} ms \
         (view build + train), warm query {:.0} ms (because: {})",
        N, GROUP_SIZE, GROUP_METRICS, first_ms, warm_ms, first.explanation.because,
    );
    assert!(
        total.as_secs_f64() < CEILING_SECS,
        "explain smoke took {:.1} s (ceiling {CEILING_SECS} s): the trainer regressed",
        total.as_secs_f64()
    );
}
