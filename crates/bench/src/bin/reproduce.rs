//! Regenerate the tables and figures of the PerfXplain paper.
//!
//! ```text
//! cargo run --release -p perfxplain-bench --bin reproduce -- [EXPERIMENT] [OPTIONS]
//!
//! EXPERIMENT:  table2 | table3 | fig3a | fig3b | fig3c | fig3d |
//!              fig4a | fig4b | fig4c | ablations | all        (default: all)
//!
//! OPTIONS:
//!   --preset tiny|small|paper   workload preset behind the log  (default: small)
//!   --runs N                    repeated train/test rounds      (default: 10)
//!   --seed N                    master seed                     (default: 42)
//! ```

use perfxplain_bench::experiments::{
    ablations, despite_relevance, different_job_log, feature_levels, log_size_sweep,
    precision_vs_width, table2_summary, TechniqueSeries,
};
use perfxplain_bench::{fmt_aggregate, render_table, ExperimentContext};
use workload::LogPreset;

struct Options {
    experiment: String,
    preset: LogPreset,
    runs: usize,
    seed: u64,
}

fn parse_args() -> Options {
    let mut options = Options {
        experiment: "all".to_string(),
        preset: LogPreset::Small,
        runs: 10,
        seed: 42,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--preset" => {
                i += 1;
                options.preset = match args.get(i).map(String::as_str) {
                    Some("tiny") => LogPreset::Tiny,
                    Some("small") => LogPreset::Small,
                    Some("paper") => LogPreset::PaperGrid,
                    other => {
                        eprintln!("unknown preset {other:?} (expected tiny|small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--runs" => {
                i += 1;
                options.runs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--runs expects a number");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                options.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed expects a number");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("see the module documentation at the top of reproduce.rs");
                std::process::exit(0);
            }
            name if !name.starts_with("--") => options.experiment = name.to_string(),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    options
}

fn width_series_rows(series: &[TechniqueSeries]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    if series.is_empty() {
        return rows;
    }
    for (i, point) in series[0].points.iter().enumerate() {
        let mut row = vec![point.width.to_string()];
        for s in series {
            row.push(fmt_aggregate(&s.points[i].precision));
        }
        rows.push(row);
    }
    rows
}

fn print_fig3_like(title: &str, series: &[TechniqueSeries]) {
    let names: Vec<String> = series.iter().map(|s| s.technique.to_string()).collect();
    let mut headers: Vec<&str> = vec!["width"];
    headers.extend(names.iter().map(String::as_str));
    println!(
        "{}",
        render_table(title, &headers, &width_series_rows(series))
    );
}

fn print_tradeoff(title: &str, series: &[TechniqueSeries]) {
    let mut rows = Vec::new();
    for s in series {
        for p in &s.points {
            if p.width == 0 {
                continue;
            }
            rows.push(vec![
                s.technique.to_string(),
                p.width.to_string(),
                fmt_aggregate(&p.generality),
                fmt_aggregate(&p.precision),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            title,
            &["technique", "width", "generality", "precision"],
            &rows
        )
    );
}

fn main() {
    let options = parse_args();
    println!(
        "PerfXplain reproduction — preset {:?} ({} jobs), {} runs, seed {}\n",
        options.preset,
        options.preset.num_jobs(),
        options.runs,
        options.seed
    );
    println!(
        "building the execution log (simulate + render Hadoop/Ganglia logs + parse + collect)..."
    );
    let start = std::time::Instant::now();
    let ctx = ExperimentContext::prepare(options.preset, options.seed, options.runs);
    println!(
        "  log ready in {:.1} s: {} jobs, {} tasks, {} job features, {} task features\n",
        start.elapsed().as_secs_f64(),
        ctx.log.jobs().count(),
        ctx.log.tasks().count(),
        ctx.log.job_catalog().len(),
        ctx.log.task_catalog().len()
    );

    let experiment = options.experiment.as_str();
    let want = |name: &str| experiment == name || experiment == "all";

    if want("table2") {
        let (parameters, measured) = table2_summary(&ctx);
        println!(
            "{}",
            render_table(
                "Table 2: varied parameters",
                &["Parameter", "Different values"],
                &parameters
            )
        );
        println!(
            "{}",
            render_table(
                "Table 2 (measured): collected log summary",
                &[
                    "script",
                    "instances",
                    "jobs",
                    "mean duration (s)",
                    "min",
                    "max"
                ],
                &measured
            )
        );
    }

    if want("fig3a") || want("fig4b") {
        let series = precision_vs_width(&ctx, &ctx.task_query);
        if want("fig3a") {
            print_fig3_like(
                "Figure 3(a): precision vs width — WhyLastTaskFaster",
                &series,
            );
        }
    }

    let job_series = if want("fig3b") || want("fig4b") {
        Some(precision_vs_width(&ctx, &ctx.job_query))
    } else {
        None
    };
    if want("fig3b") {
        print_fig3_like(
            "Figure 3(b): precision vs width — WhySlowerDespiteSameNumInstances",
            job_series.as_ref().unwrap(),
        );
    }

    if want("fig3c") {
        let series = different_job_log(&ctx);
        print_fig3_like(
            "Figure 3(c): precision vs width when the log contains only simple-groupby.pig jobs",
            &series,
        );
    }

    if want("fig3d") {
        let series = log_size_sweep(&ctx, &ctx.job_query, &[0.1, 0.2, 0.3, 0.4, 0.5]);
        let mut rows = Vec::new();
        for (i, fraction) in [0.1, 0.2, 0.3, 0.4, 0.5].iter().enumerate() {
            let mut row = vec![format!("{fraction:.1}")];
            for s in &series {
                row.push(fmt_aggregate(&s.points[i].1));
            }
            rows.push(row);
        }
        let names: Vec<String> = series.iter().map(|s| s.technique.to_string()).collect();
        let mut headers = vec!["% of log"];
        headers.extend(names.iter().map(String::as_str));
        println!(
            "{}",
            render_table(
                "Figure 3(d): width-3 precision vs training-log size — WhySlowerDespiteSameNumInstances",
                &headers,
                &rows
            )
        );
    }

    if want("table3") || want("fig4a") {
        let task = despite_relevance(&ctx, &ctx.task_query);
        let job = despite_relevance(&ctx, &ctx.job_query);
        if want("table3") {
            let rows = vec![
                vec![
                    format!("1 ({})", task.query),
                    fmt_aggregate(&task.before),
                    fmt_aggregate(&task.after),
                ],
                vec![
                    format!("2 ({})", job.query),
                    fmt_aggregate(&job.before),
                    fmt_aggregate(&job.after),
                ],
            ];
            println!(
                "{}",
                render_table(
                    "Table 3: relevance with an empty vs a PerfXplain-generated despite clause (width 3)",
                    &["Query", "Avg relevance before", "Avg relevance after"],
                    &rows
                )
            );
        }
        if want("fig4a") {
            let mut rows = Vec::new();
            for (i, point) in task.series.iter().enumerate() {
                rows.push(vec![
                    point.width.to_string(),
                    fmt_aggregate(&point.relevance),
                    fmt_aggregate(&job.series[i].relevance),
                ]);
            }
            println!(
                "{}",
                render_table(
                    "Figure 4(a): relevance of PerfXplain-generated despite clauses",
                    &[
                        "width",
                        "WhyLastTaskFaster",
                        "WhySlowerDespiteSameNumInstances"
                    ],
                    &rows
                )
            );
        }
    }

    if want("fig4b") {
        print_tradeoff(
            "Figure 4(b): precision vs generality — WhySlowerDespiteSameNumInstances",
            job_series.as_ref().unwrap(),
        );
    }

    if want("fig4c") {
        let series = feature_levels(&ctx, &ctx.job_query);
        let mut rows = Vec::new();
        for (i, &width) in ctx.widths.iter().enumerate() {
            let mut row = vec![width.to_string()];
            for s in &series {
                row.push(fmt_aggregate(&s.points[i].precision));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                "Figure 4(c): precision per feature level — WhySlowerDespiteSameNumInstances",
                &[
                    "width",
                    "level 1 (isSame)",
                    "level 2 (+compare/diff)",
                    "level 3 (all)"
                ],
                &rows
            )
        );
    }

    if want("ablations") {
        let rows: Vec<Vec<String>> = ablations(&ctx, &ctx.job_query)
            .into_iter()
            .map(|a| {
                vec![
                    a.name,
                    fmt_aggregate(&a.precision),
                    fmt_aggregate(&a.generality),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "Ablations (width 3, WhySlowerDespiteSameNumInstances)",
                &["variant", "precision", "generality"],
                &rows
            )
        );
    }

    println!("total time: {:.1} s", start.elapsed().as_secs_f64());
}
