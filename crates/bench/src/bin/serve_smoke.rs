//! Release-mode smoke test of the network front-end.
//!
//! Spawns the PXQL server on a loopback port over a synthetic log, then
//! checks the serving contract end to end under a hard wall-clock ceiling:
//!
//! * an open-loop many-client drive (several concurrent connections, each
//!   issuing requests back to back) completes with every request answered
//!   `ok` — the budget and queue are sized so none shed;
//! * a request deliberately sized beyond the whole admission budget is shed
//!   with a typed `429 cost_exceeds_budget` response, and the connection
//!   survives to be answered again;
//! * a malformed frame gets a typed `400 bad_frame` response;
//! * the explanation served over the wire matches the in-process
//!   [`XplainService`] answer for the identical request, atom for atom.
//!
//! Run with `cargo run --release -p perfxplain-bench --bin serve_smoke`.

use perfxplain_core::{ExecutionLog, ExecutionRecord, QueryRequest, XplainService};
use perfxplain_server::{
    default_request, run_load, spawn, Client, QueryCost, SchedulerConfig, ServerConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// Log size: large enough that a query does real enumeration and training
/// work, small enough to stay far under the ceiling on one core.
const N: usize = 600;
/// Concurrent client connections of the load drive.
const CONNECTIONS: usize = 4;
/// Back-to-back requests per connection.
const REQUESTS_PER_CONNECTION: usize = 8;
/// Wall-clock ceiling for the whole smoke run.
const CEILING_SECS: u64 = 30;

/// The same workload shape as the pairs benches: even-indexed jobs are
/// big-block plateaued runs, so `job_2` reads far more input than `job_0`
/// at a similar duration — the canonical pair of interest.
fn synthetic_log(n: usize) -> ExecutionLog {
    let mut log = ExecutionLog::new();
    for i in 0..n {
        let big_blocks = i % 2 == 0;
        let input = [1.0e9, 4.0e9, 32.0e9][i % 3];
        let duration = if big_blocks {
            600.0 + (i % 13) as f64
        } else {
            input / 5.0e7 + (i % 7) as f64
        };
        log.push(
            ExecutionRecord::job(format!("job_{i}"))
                .with_feature("inputsize", input)
                .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                .with_feature("numinstances", [2.0, 8.0, 16.0][(i / 2) % 3])
                .with_feature("pigscript", ["a.pig", "b.pig"][i % 2])
                .with_feature("duration", duration),
        );
    }
    log.rebuild_catalogs();
    log
}

fn main() {
    // The ceiling is enforced in-process so a hung event loop or a deadlock
    // in the scheduler fails CI instead of hanging it.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(CEILING_SECS));
        eprintln!("serve_smoke exceeded the {CEILING_SECS} s ceiling");
        std::process::exit(1);
    });

    let service = Arc::new(XplainService::new(synthetic_log(N)));

    // Size the budget from the same estimator the server charges with:
    // three default-cost requests fit concurrently, so the drive below
    // queues under load but never sheds, while a deliberately huge request
    // can never be admitted.
    let default_cost = QueryCost::from(
        &service
            .estimate_cost(
                &QueryRequest::text(default_request("job_2", "job_0").query.unwrap())
                    .with_pair("job_2", "job_0"),
            )
            .expect("the smoke query is estimable"),
    );
    let config = ServerConfig {
        workers: 2,
        scheduler: SchedulerConfig {
            budget: default_cost + default_cost + default_cost,
            queue_capacity: 64,
            max_inflight_per_session: 2,
            max_pending_per_session: 16,
        },
        ..ServerConfig::default()
    };
    let handle = spawn(Arc::clone(&service), config).expect("server binds on loopback");
    let addr = handle.addr().to_string();
    println!(
        "serving {N} records on {addr} (budget {} units)",
        (default_cost + default_cost + default_cost).units()
    );

    // The in-process ground truth for the identical request.
    let expected = service
        .explain(
            &QueryRequest::text(default_request("job_2", "job_0").query.unwrap())
                .with_pair("job_2", "job_0"),
        )
        .expect("the smoke query is answerable in-process");
    let expected_atoms: Vec<String> = expected
        .explanation
        .because
        .atoms()
        .iter()
        .map(|a| a.to_string())
        .collect();

    // Contract 1: the networked answer matches the in-process one.
    let mut client = Client::connect(&addr).expect("client connects");
    let over_wire = client
        .call(&default_request("job_2", "job_0"))
        .expect("wire response");
    assert!(over_wire.is_ok(), "wire request failed: {over_wire:?}");
    assert_eq!(
        over_wire.because.as_deref(),
        Some(&expected_atoms[..]),
        "the served explanation diverged from the in-process service"
    );
    println!(
        "wire answer matches in-process: {}",
        expected_atoms.join(" AND ")
    );

    // Contract 2: a request sized beyond the whole budget sheds, typed.
    let mut huge = default_request("job_2", "job_0");
    huge.sample_size = Some(1_000_000_000);
    let shed = client.call(&huge).expect("shed response");
    assert_eq!(shed.code, 429, "oversized request not shed: {shed:?}");
    assert_eq!(shed.error.as_deref(), Some("cost_exceeds_budget"));
    println!(
        "oversized request shed: {}",
        shed.message.as_deref().unwrap_or("")
    );

    // Contract 3: malformed frames get typed errors, the connection lives.
    client.send_raw("definitely not json\n").expect("send raw");
    let bad = client.recv().expect("bad-frame response");
    assert_eq!(bad.code, 400);
    assert_eq!(bad.error.as_deref(), Some("bad_frame"));
    let again = client
        .call(&default_request("job_2", "job_0"))
        .expect("response after abuse");
    assert!(
        again.is_ok(),
        "connection died after a bad frame: {again:?}"
    );

    // Contract 4: the concurrent open-loop drive completes all-ok.
    let report = run_load(&addr, CONNECTIONS, REQUESTS_PER_CONNECTION, |c, s| {
        let mut request = default_request("job_2", "job_0");
        request.id = Some((c * REQUESTS_PER_CONNECTION + s) as u64);
        request
    })
    .expect("load drive completes");
    assert_eq!(
        report.ok, report.sent,
        "the sized-to-fit drive shed or failed requests: {report:?}"
    );
    assert_eq!(report.transport_errors, 0, "{report:?}");

    let stats = handle.stats();
    println!(
        "drive: {} requests over {} connections, {:.1} qps, p50 {:.1} ms, p99 {:.1} ms",
        report.sent, CONNECTIONS, report.qps, report.p50_ms, report.p99_ms
    );
    println!(
        "server counters: {} sessions, {} requests, {} answered, {} shed, {} errors",
        stats.sessions_accepted, stats.requests, stats.answered, stats.shed, stats.errors
    );
    assert!(
        stats.shed >= 1,
        "the oversized request should appear in shed counters"
    );
    assert!(stats.answered >= report.ok + 2);
    println!("serve_smoke passed");
}
