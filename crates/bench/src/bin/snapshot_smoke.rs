//! Release-mode smoke test of the persistent snapshot store.
//!
//! Ingests a synthetic 100k-record log, persists it as a segmented binary
//! snapshot, reopens it through [`XplainService::open_snapshot`] (warm
//! rehydration: views assembled from stored columns, no JSON, no
//! re-encode), answers one blocked PXQL query, and asserts the outcome
//! equals the in-memory service's answer — failing (non-zero exit) if the
//! whole round trip exceeds a wall-clock ceiling, so a complexity
//! regression on the persist/open path fails CI instead of silently
//! slowing every cold start down.
//!
//! Run with `cargo run --release -p perfxplain-bench --bin snapshot_smoke`.

use perfxplain_bench::{blocked_log, BLOCKED_QUERY};
use perfxplain_core::{snapshot, QueryRequest, XplainService};
use std::time::Instant;

/// Log size of the smoke run.
const N: usize = 100_000;
/// Records per pigscript blocking group.
const GROUP_SIZE: usize = 10;
/// Wall-clock ceiling for persist + reopen + one answered query (the log
/// build itself is untimed).  Measured well under 5 s on one core; the
/// ceiling leaves headroom for slow CI machines while still catching
/// pathological regressions.
const CEILING_SECS: f64 = 30.0;

fn main() {
    let log = blocked_log(N, GROUP_SIZE, 1);
    let request = QueryRequest::text(BLOCKED_QUERY).with_pair("job_2", "job_0");

    // The in-memory reference answer (also warms nothing the snapshot
    // path could reuse — it is a separate service).
    let in_memory = XplainService::new(log.clone());
    let expected = in_memory
        .explain(&request)
        .expect("the smoke query must be answerable in memory");

    let dir = std::env::temp_dir().join(format!("pxsnap_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shards = perfxplain_core::shard::hardware_threads().max(4);

    let started = Instant::now();

    // 1. Persist: per-shard compressed binary segments + fingerprinted
    //    manifest.  The v2 format must stay at or under 60% of the raw
    //    fixed-width (v1) encoding of the same data — the compression is
    //    the point of the format, so a regression fails CI.
    let report = snapshot::persist(&log, &dir, shards).expect("snapshot persists");
    let persisted = started.elapsed();
    assert_eq!(report.rows, N, "persist lost records");
    let usage = report.manifest.usage();
    assert!(
        usage.total_bytes * 10 <= usage.raw_bytes * 6,
        "snapshot is {} bytes, over 60% of the {}-byte raw equivalent",
        usage.total_bytes,
        usage.raw_bytes
    );

    // 2. Reopen as a warm service: fingerprints verified, views assembled
    //    from the stored columns.
    let reopened = XplainService::open_snapshot(&dir).expect("snapshot opens");
    let opened = started.elapsed();

    // 3. The first query is served from the pre-warmed cache and matches
    //    the in-memory answer exactly.
    let outcome = reopened
        .explain(&request)
        .expect("the smoke query must be answerable from the snapshot");
    assert!(
        outcome.view_reused,
        "the rehydrated service should serve its first query from the snapshot-built view"
    );
    assert_eq!(
        outcome.explanation, expected.explanation,
        "snapshot-served explanation diverged from the in-memory path"
    );
    assert_eq!(outcome.query, expected.query);

    let total = started.elapsed();
    std::fs::remove_dir_all(&dir).expect("snapshot dir cleans up");
    println!(
        "snapshot_smoke: {N} records, {} shard(s), {} bytes ({:.2}x vs raw): persist {:.0} ms \
         (encode {:.0} ms, write {:.0} ms), reopen {:.0} ms, query answered at {:.0} ms \
         (because: {})",
        report.manifest.shards.len(),
        usage.total_bytes,
        usage.compression_ratio(),
        persisted.as_secs_f64() * 1e3,
        report.encode_seconds * 1e3,
        report.write_seconds * 1e3,
        (opened - persisted).as_secs_f64() * 1e3,
        total.as_secs_f64() * 1e3,
        outcome.explanation.because,
    );
    assert!(
        total.as_secs_f64() < CEILING_SECS,
        "snapshot round trip took {:.1} s (ceiling {CEILING_SECS} s): the store regressed",
        total.as_secs_f64()
    );
}
