//! Release-mode smoke test of delta-maintained live views.
//!
//! Serves a 100k-record blocked log through an [`XplainService`], then
//! drives an append-while-querying loop: each round appends a batch through
//! [`XplainService::append`], refreshes the cached view (which must stay on
//! the O(tail) delta path — the splice, not a rebuild), and answers one
//! query, including queries whose pair of interest lives in the appended
//! tail.  Fails (non-zero exit) if the whole run exceeds a wall-clock
//! ceiling, if any append falls off the delta path, or if the mean delta
//! refresh costs more than a fixed fraction of one full re-encode — so a
//! regression that quietly turns every append back into an O(log) rebuild
//! fails CI instead of slowly eating the ingest-while-serving win.
//!
//! Run with `cargo run --release -p perfxplain-bench --bin live_ingest_smoke`.

use perfxplain_bench::{blocked_log, BLOCKED_QUERY};
use perfxplain_core::columnar::ColumnarLog;
use perfxplain_core::{ExecutionKind, ExecutionLog, ExplainConfig, QueryRequest, XplainService};
use std::time::Instant;

/// Log size served before the first append.
const N: usize = 100_000;
/// Records per pigscript blocking group.
const GROUP_SIZE: usize = 10;
/// Records per append batch.
const BATCH: usize = 64;
/// Append + refresh + query rounds.
const ROUNDS: usize = 8;
/// Wall-clock ceiling for the whole run: initial build, baseline rebuild
/// and the append-while-querying loop.  Measured well under 3 s on one
/// core; the ceiling leaves headroom for slow CI machines while still
/// catching an encode-path or refresh-path complexity regression.
const CEILING_SECS: f64 = 30.0;
/// The mean delta refresh must stay under this fraction of one full
/// re-encode.  Measured around 1/50 at n = 100k; a refresh that costs a
/// quarter of a rebuild means the O(tail) path has regressed toward
/// O(log).
const MAX_REFRESH_FRACTION: f64 = 0.25;

fn main() {
    let started = Instant::now();

    // The base log and every append batch come from one generator call, so
    // the appended records carry exactly the served catalog's feature names
    // and the batches stay on the delta path.
    let all = blocked_log(N + BATCH * ROUNDS, GROUP_SIZE, 1)
        .records()
        .to_vec();
    let mut log = ExecutionLog::new();
    for record in &all[..N] {
        log.push(record.clone());
    }
    log.rebuild_catalogs();
    let service = XplainService::with_config(log, ExplainConfig::default().with_sample_size(200));

    // Warm query: pays the scenario's one and only full view build.
    service
        .explain(&QueryRequest::text(BLOCKED_QUERY).with_pair("job_2", "job_0"))
        .expect("the warm smoke query must be answerable");

    // Baseline: the full re-encode a non-delta cache would pay per append.
    let snapshot = service.snapshot();
    let rebuild_started = Instant::now();
    let rebuilt = ColumnarLog::build_auto(&snapshot, ExecutionKind::Job);
    let full_rebuild_secs = rebuild_started.elapsed().as_secs_f64();
    assert_eq!(rebuilt.num_rows(), N);
    drop((snapshot, rebuilt));

    // Append-while-querying loop.
    let mut refresh_secs = 0.0;
    for round in 0..ROUNDS {
        let from = N + round * BATCH;
        service
            .append(all[from..from + BATCH].to_vec())
            .expect("append failed");

        let refresh_started = Instant::now();
        let view = service.view(ExecutionKind::Job);
        refresh_secs += refresh_started.elapsed().as_secs_f64();
        assert_eq!(view.num_rows(), from + BATCH, "append lost records");
        assert!(view.tail_rows() > 0, "append fell off the delta path");

        // Query a pair that lives entirely in the freshly appended tail:
        // members 0 and 2 of the first complete group this round added.
        let base = from.div_ceil(GROUP_SIZE) * GROUP_SIZE;
        let outcome = service
            .explain(
                &QueryRequest::text(BLOCKED_QUERY)
                    .with_pair(format!("job_{}", base + 2), format!("job_{base}")),
            )
            .expect("the appended-pair smoke query must be answerable");
        assert!(
            outcome.explanation.width() >= 1,
            "the appended-pair query produced an empty explanation"
        );
    }

    let stats = service.view_stats();
    assert_eq!(
        stats.full_rebuilds, 1,
        "an append forced a full rebuild: {stats:?}"
    );
    assert_eq!(
        stats.tail_rows as usize,
        BATCH * ROUNDS,
        "the cached tail does not hold the appended rows: {stats:?}"
    );

    let mean_refresh_secs = refresh_secs / ROUNDS as f64;
    let total = started.elapsed();
    println!(
        "live_ingest_smoke: {} records + {}x{} appended: full rebuild {:.0} ms, \
         mean delta refresh {:.2} ms ({:.0}x), {} delta refreshes / {} full rebuild, \
         done at {:.0} ms",
        N,
        ROUNDS,
        BATCH,
        full_rebuild_secs * 1e3,
        mean_refresh_secs * 1e3,
        full_rebuild_secs / mean_refresh_secs.max(1e-9),
        stats.delta_refreshes,
        stats.full_rebuilds,
        total.as_secs_f64() * 1e3,
    );
    assert!(
        mean_refresh_secs < full_rebuild_secs * MAX_REFRESH_FRACTION,
        "mean delta refresh {:.1} ms is over {MAX_REFRESH_FRACTION} of a full rebuild \
         ({:.1} ms): the O(tail) path regressed",
        mean_refresh_secs * 1e3,
        full_rebuild_secs * 1e3,
    );
    assert!(
        total.as_secs_f64() < CEILING_SECS,
        "live ingest smoke took {:.1} s (ceiling {CEILING_SECS} s): the refresh path regressed",
        total.as_secs_f64()
    );
}
