//! Release-mode smoke test of the durable append journal: no acknowledged
//! record is ever lost, even across a SIGKILL.
//!
//! The parent process persists a base snapshot, then re-executes itself as
//! a *child server* (`--child-serve <dir>`): the child opens the snapshot,
//! enables the write-ahead journal under `fsync = Always`, and serves the
//! log over a loopback port.  The parent drives an append storm over the
//! wire, recording every record the server acknowledged as durable — and
//! SIGKILLs the child mid-storm, with appends still in flight.  It then
//! reopens the same directory in-process and asserts the durability
//! contract both ways:
//!
//! * every record acked `durable: true` before the kill is present in the
//!   recovered log — zero acknowledged records lost;
//! * the reopened service answers its first query warm: the journal tail
//!   was spliced through the delta path on replay, so no view pays a
//!   from-scratch rebuild ([`XplainService::view_stats`]);
//! * the journal's own health check reports the replay.
//!
//! Run with `cargo run --release -p perfxplain-bench --bin crash_recovery_smoke`.

use perfxplain_core::{
    verify_journal, ExecutionKind, ExecutionLog, ExecutionRecord, FsyncPolicy, QueryRequest,
    XplainService,
};
use perfxplain_server::{default_request, spawn, Client, ServerConfig};
use std::collections::BTreeSet;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows in the base snapshot the server starts from.
const BASE_ROWS: usize = 400;
/// Records per append batch of the storm.
const BATCH: usize = 16;
/// Batches acknowledged before the parent pulls the trigger.
const BATCHES_BEFORE_KILL: usize = 20;
/// Wall-clock ceiling for the whole smoke run.
const CEILING_SECS: u64 = 120;

/// The same workload shape as the pairs benches, plus tasks so both
/// columnar views exist in the base snapshot (a kind absent from the base
/// could not be served warm after replay).
fn base_log(n: usize) -> ExecutionLog {
    let mut log = ExecutionLog::new();
    for i in 0..n {
        let big_blocks = i.is_multiple_of(2);
        let input = [1.0e9, 4.0e9, 32.0e9][i % 3];
        let duration = if big_blocks {
            600.0 + (i % 13) as f64
        } else {
            input / 5.0e7 + (i % 7) as f64
        };
        log.push(
            ExecutionRecord::job(format!("job_{i}"))
                .with_feature("inputsize", input)
                .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                .with_feature("numinstances", [2.0, 8.0, 16.0][(i / 2) % 3])
                .with_feature("pigscript", ["a.pig", "b.pig"][i % 2])
                .with_feature("duration", duration),
        );
        if i.is_multiple_of(4) {
            log.push(
                ExecutionRecord::task(format!("task_{i}"), format!("job_{i}"))
                    .with_feature(
                        "tasktype",
                        if i.is_multiple_of(2) { "MAP" } else { "REDUCE" },
                    )
                    .with_feature("duration", duration / 10.0),
            );
        }
    }
    log.rebuild_catalogs();
    log
}

/// One storm batch, ids unique per `(batch, row)` so the parent can check
/// the recovered log record by record.
fn storm_batch(batch: usize) -> Vec<ExecutionRecord> {
    (0..BATCH)
        .map(|row| {
            let id = batch * BATCH + row;
            ExecutionRecord::job(format!("storm_job_{id}"))
                .with_feature("inputsize", 2.0e9 + id as f64)
                .with_feature(
                    "blocksize",
                    if id.is_multiple_of(2) { 1024.0 } else { 64.0 },
                )
                .with_feature("pigscript", ["a.pig", "b.pig"][id % 2])
                .with_feature("duration", 120.0 + id as f64)
        })
        .collect()
}

/// Child mode: serve the snapshot with an `Always`-fsynced journal until
/// killed.  Prints the bound address on stdout for the parent.
fn child_serve(dir: &Path) -> ! {
    let service = XplainService::open_snapshot(dir).expect("child: snapshot opens");
    service
        .enable_journal(dir, FsyncPolicy::Always)
        .expect("child: journal enables");
    let handle = spawn(
        Arc::new(service),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("child: server binds");
    // The parent parses this line; everything else goes to stderr.
    println!("ADDR {}", handle.addr());
    use std::io::Write;
    std::io::stdout().flush().expect("child: stdout flush");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--child-serve" {
        child_serve(Path::new(&args[2]));
    }

    let started = Instant::now();
    let dir: PathBuf = std::env::temp_dir().join(format!("px_crash_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // The base snapshot the server process will journal against.
    let base = base_log(BASE_ROWS);
    let base_len = base.len();
    XplainService::new(base)
        .persist(&dir)
        .expect("base persist");
    println!("persisted {base_len} base rows to {}", dir.display());

    // Re-exec as the journaled server and wait for its address.
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .arg("--child-serve")
        .arg(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("child spawns");
    let addr = {
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        loop {
            let line = lines
                .next()
                .expect("child exited before printing its address")
                .expect("child stdout readable");
            if let Some(addr) = line.strip_prefix("ADDR ") {
                break addr.to_string();
            }
        }
    };
    println!("child serving on {addr}");

    // The storm: append batches over the wire, recording every id the
    // server acked durable, and SIGKILL the child mid-storm — more
    // batches were queued than will ever be acknowledged.
    let mut client = Client::connect(&addr).expect("client connects");
    let mut acked: BTreeSet<String> = BTreeSet::new();
    let mut batch = 0usize;
    loop {
        if batch == BATCHES_BEFORE_KILL {
            child.kill().expect("SIGKILL delivered");
        }
        let records = storm_batch(batch);
        match client.append(&records) {
            Ok(response) if response.is_ok() => {
                assert_eq!(
                    response.durable,
                    Some(true),
                    "fsync=Always must ack durable: {response:?}"
                );
                acked.extend(records.iter().map(|record| record.id.clone()));
            }
            // The kill landed: the connection dies mid-request.  Anything
            // un-acked is allowed to be lost; anything acked is not.
            Ok(response) => panic!("append rejected: {response:?}"),
            Err(_) if batch >= BATCHES_BEFORE_KILL => break,
            Err(err) => panic!("transport failed before the kill: {err}"),
        }
        batch += 1;
    }
    child.wait().expect("child reaped");
    println!(
        "killed the server mid-storm: {} record(s) acked durable across {} batch(es)",
        acked.len(),
        batch.min(BATCHES_BEFORE_KILL + 1)
    );
    assert!(
        acked.len() >= BATCHES_BEFORE_KILL * BATCH,
        "the storm never got going: only {} acks",
        acked.len()
    );

    // Restart from the same directory: the journal replays the acked tail.
    let reopened = XplainService::open_snapshot(&dir).expect("post-crash reopen");
    let recovered: BTreeSet<String> = reopened.with_log(|log| {
        log.records()
            .iter()
            .map(|record| record.id.clone())
            .collect()
    });
    let lost: Vec<&String> = acked.difference(&recovered).collect();
    assert!(
        lost.is_empty(),
        "{} acked-durable record(s) lost after SIGKILL: {lost:?}",
        lost.len()
    );
    let recovered_rows = reopened.with_log(|log| log.len());
    println!(
        "recovered {} rows ({} journaled); zero acked-durable records lost",
        recovered_rows,
        recovered_rows - base_len
    );

    // The replayed tail was spliced through the delta path: the first
    // query must be answered warm, with no from-scratch view rebuild.
    let request = QueryRequest::text(
        default_request("job_2", "job_0")
            .query
            .expect("canonical query text"),
    )
    .with_pair("job_2", "job_0");
    reopened.explain(&request).expect("post-crash query");
    let stats = reopened.view_stats();
    assert_eq!(stats.full_rebuilds, 0, "the reopen was not warm: {stats:?}");
    assert!(
        reopened.view(ExecutionKind::Job).tail_rows() > 0,
        "the replayed tail should sit in the view's append tail"
    );
    println!(
        "first query served warm: 0 full rebuilds, {} tail row(s) spliced",
        stats.tail_rows
    );

    // And the journal itself reports healthy after the crash (the torn
    // last frame, if any, was truncated by the reopen).
    let health = verify_journal(&dir).expect("journal audit");
    assert!(
        health.present && health.is_healthy(),
        "journal damaged: {health:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        started.elapsed() < Duration::from_secs(CEILING_SECS),
        "smoke exceeded its {CEILING_SECS}s ceiling"
    );
    println!(
        "crash-recovery smoke passed in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
