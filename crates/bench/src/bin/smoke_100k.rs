//! Release-mode smoke test of the sharded ingestion pipeline.
//!
//! Ingests a synthetic 100k-record log through the sharded path
//! (`ExecutionLog::extend_parallel` → `ColumnarLog::build_sharded`), answers
//! one blocked PXQL query through an [`XplainService`], and fails (non-zero
//! exit) if the whole round trip exceeds a wall-clock ceiling — so an
//! accidental O(n²) (or otherwise pathological) regression on the encode
//! path fails CI instead of silently slowing every large-log user down.
//!
//! Run with `cargo run --release -p perfxplain-bench --bin smoke_100k`.

use perfxplain_bench::{blocked_log, BLOCKED_QUERY};
use perfxplain_core::columnar::ColumnarLog;
use perfxplain_core::{ExecutionKind, ExecutionLog, ExecutionRecord, QueryRequest, XplainService};
use std::time::Instant;

/// Log size of the smoke run.
const N: usize = 100_000;
/// Records per pigscript blocking group.
const GROUP_SIZE: usize = 10;
/// Wall-clock ceiling for ingest + encode + one answered query.  The
/// measured time on one core is well under 3 s; the ceiling leaves headroom
/// for slow CI machines while still catching quadratic regressions (which
/// overshoot it by orders of magnitude at n = 100k).
const CEILING_SECS: f64 = 30.0;

/// The shared blocked workload, split into per-shard record batches.
fn synthetic_batches(n: usize, batches: usize) -> Vec<Vec<ExecutionRecord>> {
    let records = blocked_log(n, GROUP_SIZE, 1).records().to_vec();
    let chunk_size = n.div_ceil(batches).max(1);
    records.chunks(chunk_size).map(<[_]>::to_vec).collect()
}

fn main() {
    // At least 4 shards even on narrow machines, so the merge path is
    // always exercised.
    let shards = perfxplain_core::shard::hardware_threads().max(4);
    let batches = synthetic_batches(N, shards);

    let started = Instant::now();

    // 1. Sharded ingest: per-batch catalogs inferred on concurrent threads.
    let mut log = ExecutionLog::new();
    log.extend_parallel(batches);
    let ingested = started.elapsed();
    assert_eq!(log.len(), N, "ingest lost records");

    // 2. Sharded encode, checked bit-identical to the single-shot build.
    let sharded = ColumnarLog::build_sharded(&log, ExecutionKind::Job, shards);
    let encoded = started.elapsed();
    assert_eq!(sharded.num_rows(), N);
    assert_eq!(
        sharded,
        ColumnarLog::build_sharded(&log, ExecutionKind::Job, 1),
        "sharded encode diverged from the single-shot build"
    );

    // 3. One blocked query answered through the service (whose cached view
    //    is built through the same auto-sharded path).
    let service = XplainService::new(log);
    let outcome = service
        .explain(&QueryRequest::text(BLOCKED_QUERY).with_pair("job_2", "job_0"))
        .expect("the smoke query must be answerable");
    assert!(
        outcome.explanation.width() >= 1,
        "the smoke query produced an empty explanation"
    );

    let total = started.elapsed();
    println!(
        "smoke_100k: {} records, {} shard(s): ingest {:.0} ms, encode {:.0} ms, \
         query answered at {:.0} ms (because: {})",
        N,
        shards,
        ingested.as_secs_f64() * 1e3,
        (encoded - ingested).as_secs_f64() * 1e3,
        total.as_secs_f64() * 1e3,
        outcome.explanation.because,
    );
    assert!(
        total.as_secs_f64() < CEILING_SECS,
        "sharded ingest smoke took {:.1} s (ceiling {CEILING_SECS} s): the encode path regressed",
        total.as_secs_f64()
    );
}
