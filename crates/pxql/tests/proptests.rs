//! Property-based tests for the PXQL language layer.

use proptest::prelude::*;
use pxql::{tokenize, Op, Value};

proptest! {
    // -----------------------------------------------------------------
    // Lexer robustness: arbitrary input never panics, and either
    // tokenizes or reports a positioned error.
    // -----------------------------------------------------------------
    #[test]
    fn tokenizer_never_panics(input in ".{0,200}") {
        match tokenize(&input) {
            Ok(tokens) => prop_assert!(tokens.len() <= input.len() + 1),
            Err(err) => prop_assert!(err.offset <= input.len()),
        }
    }

    // -----------------------------------------------------------------
    // Value equality semantics
    // -----------------------------------------------------------------
    #[test]
    fn value_equality_is_reflexive_and_symmetric_for_non_null(
        n in -1.0e9..1.0e9f64,
        s in "[a-zA-Z0-9_.]{0,12}",
        b in any::<bool>(),
    ) {
        let values = [Value::Num(n), Value::Str(s), Value::Bool(b)];
        for v in &values {
            prop_assert!(v.pxql_eq(v), "{v:?} not equal to itself");
        }
        for a in &values {
            for c in &values {
                prop_assert_eq!(a.pxql_eq(c), c.pxql_eq(a));
            }
        }
        // Null never equals anything, including itself.
        for v in &values {
            prop_assert!(!Value::Null.pxql_eq(v));
            prop_assert!(!v.pxql_eq(&Value::Null));
        }
        prop_assert!(!Value::Null.pxql_eq(&Value::Null));
    }

    // -----------------------------------------------------------------
    // Operator semantics on numbers
    // -----------------------------------------------------------------
    #[test]
    fn numeric_operators_partition_the_number_line(a in -1.0e6..1.0e6f64, b in -1.0e6..1.0e6f64) {
        let left = Value::Num(a);
        let right = Value::Num(b);
        // Exactly one of <, =, > holds.
        let lt = Op::Lt.apply(&left, &right);
        let eq = Op::Eq.apply(&left, &right);
        let gt = Op::Gt.apply(&left, &right);
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
        // <= is < or =, >= is > or =.
        prop_assert_eq!(Op::Le.apply(&left, &right), lt || eq);
        prop_assert_eq!(Op::Ge.apply(&left, &right), gt || eq);
        // != is the complement of = for non-missing values.
        prop_assert_eq!(Op::Ne.apply(&left, &right), !eq);
        // The negated operator accepts exactly the complement.
        for op in [Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge] {
            prop_assert_eq!(op.negate().apply(&left, &right), !op.apply(&left, &right));
        }
    }

    // -----------------------------------------------------------------
    // Value display round trip through the lexer
    // -----------------------------------------------------------------
    #[test]
    fn displayed_values_tokenize(
        n in -1.0e6..1.0e6f64,
        s in "[ -~]{0,16}",
    ) {
        for value in [Value::Num(n), Value::Str(s), Value::Bool(true), Value::Null] {
            let text = value.to_string();
            prop_assert!(tokenize(&text).is_ok(), "display form {text:?} does not tokenize");
        }
    }
}
