//! Recursive-descent parser for PXQL queries and predicates.

use crate::ast::{PairBinding, PxqlQuery, SubjectKind};
use crate::error::{ParseError, PxqlError};
use crate::lexer::{tokenize, SpannedToken, Token};
use crate::predicate::{Atom, Op, Predicate};
use crate::value::Value;

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.offset)
            .unwrap_or(0)
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).map(|t| t.token.clone());
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(ParseError::new(format!("expected {what}"), self.offset())),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            _ => Err(ParseError::new(format!("expected {what}"), self.offset())),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn parse_op(&mut self) -> Result<Op, ParseError> {
        let op = match self.peek() {
            Some(Token::Eq) => Op::Eq,
            Some(Token::Ne) => Op::Ne,
            Some(Token::Lt) => Op::Lt,
            Some(Token::Le) => Op::Le,
            Some(Token::Gt) => Op::Gt,
            Some(Token::Ge) => Op::Ge,
            _ => {
                return Err(ParseError::new(
                    "expected a comparison operator (=, !=, <, <=, >, >=)",
                    self.offset(),
                ))
            }
        };
        self.pos += 1;
        Ok(op)
    }

    fn parse_constant(&mut self) -> Result<Value, ParseError> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(Value::Num(n)),
            Some(Token::StringLit(s)) => Ok(Value::Str(s)),
            Some(Token::Null) => Ok(Value::Null),
            Some(Token::True) => Ok(Value::Bool(true)),
            Some(Token::Ident(word)) => {
                // Bare identifiers: T/F become booleans, everything else is a
                // nominal constant (LT, SIM, GT, hostnames, script names …).
                match word.to_ascii_uppercase().as_str() {
                    "T" => Ok(Value::Bool(true)),
                    "F" => Ok(Value::Bool(false)),
                    _ => Ok(Value::Str(word)),
                }
            }
            Some(Token::LParen) => {
                let first = self.parse_constant()?;
                self.expect(&Token::Comma, "',' in pair constant")?;
                let second = self.parse_constant()?;
                self.expect(&Token::RParen, "')' closing pair constant")?;
                Ok(Value::pair(first, second))
            }
            _ => Err(ParseError::new("expected a constant", self.offset())),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let feature = self.expect_ident("a feature name")?;
        let op = self.parse_op()?;
        let constant = self.parse_constant()?;
        Ok(Atom {
            feature,
            op,
            constant,
        })
    }

    fn parse_predicate(&mut self) -> Result<Predicate, ParseError> {
        // The literal `TRUE` is the empty conjunction.
        if self.peek() == Some(&Token::True) {
            self.pos += 1;
            return Ok(Predicate::always_true());
        }
        let mut atoms = vec![self.parse_atom()?];
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            atoms.push(self.parse_atom()?);
        }
        Ok(Predicate::from_atoms(atoms))
    }

    /// Parses `J1.JobID = ?` or `J1.JobID = 'literal'`, returning the
    /// variable name and the binding.
    fn parse_binding(&mut self) -> Result<(String, PairBinding), ParseError> {
        let var = self.expect_ident("an execution variable (e.g. J1)")?;
        self.expect(&Token::Dot, "'.' after the execution variable")?;
        let field = self.expect_ident("JobID or TaskID")?;
        let field_upper = field.to_ascii_uppercase();
        if field_upper != "JOBID" && field_upper != "TASKID" {
            return Err(ParseError::new(
                format!("expected JobID or TaskID, found '{field}'"),
                self.offset(),
            ));
        }
        self.expect(&Token::Eq, "'=' in the WHERE clause")?;
        let binding = match self.advance() {
            Some(Token::Placeholder) => PairBinding::Placeholder,
            Some(Token::StringLit(id)) => PairBinding::Literal(id),
            Some(Token::Ident(id)) => PairBinding::Literal(id),
            _ => {
                return Err(ParseError::new(
                    "expected '?' or an identifier",
                    self.offset(),
                ))
            }
        };
        Ok((var, binding))
    }
}

/// Parses the textual form of an explanation,
///
/// ```text
/// DESPITE inputsize_compare = GT
/// BECAUSE blocksize >= 128MB AND numinstances >= 100
/// ```
///
/// returning the `(despite, because)` pair of predicates.  The `DESPITE`
/// clause is optional (defaults to `true`); the `BECAUSE` clause is
/// mandatory.
pub fn parse_explanation_str(input: &str) -> Result<(Predicate, Predicate), PxqlError> {
    let mut parser = Parser::new(input)?;
    let mut despite = Predicate::always_true();
    if parser.peek() == Some(&Token::Despite) {
        parser.pos += 1;
        despite = parser.parse_predicate()?;
    }
    parser.expect(&Token::Because, "the BECAUSE clause")?;
    let because = parser.parse_predicate()?;
    if !parser.at_end() {
        return Err(ParseError::new("unexpected trailing input", parser.offset()).into());
    }
    Ok((despite, because))
}

/// Parses a standalone predicate such as
/// `inputsize_compare = SIM AND numinstances_isSame = T`.
pub fn parse_predicate_str(input: &str) -> Result<Predicate, PxqlError> {
    let mut parser = Parser::new(input)?;
    let predicate = parser.parse_predicate()?;
    if !parser.at_end() {
        return Err(ParseError::new("unexpected trailing input", parser.offset()).into());
    }
    Ok(predicate)
}

/// Parses a full PXQL query.
///
/// The `FOR`/`WHERE` header is optional so that the concise form used in the
/// paper's figures (starting directly with `DESPITE`/`OBSERVED`) also
/// parses; in that case the subject defaults to jobs unless the variables are
/// named `T1`/`T2`.
pub fn parse_query(input: &str) -> Result<PxqlQuery, PxqlError> {
    let mut parser = Parser::new(input)?;

    let mut left_var = "J1".to_string();
    let mut right_var = "J2".to_string();
    let mut left_binding = PairBinding::Placeholder;
    let mut right_binding = PairBinding::Placeholder;
    let mut subject = SubjectKind::Jobs;

    if parser.peek() == Some(&Token::For) {
        parser.pos += 1;
        left_var = parser.expect_ident("the first execution variable")?;
        parser.expect(&Token::Comma, "',' between execution variables")?;
        right_var = parser.expect_ident("the second execution variable")?;
        if left_var.to_ascii_uppercase().starts_with('T') {
            subject = SubjectKind::Tasks;
        }
        if parser.peek() == Some(&Token::Where) {
            parser.pos += 1;
            let (var_a, binding_a) = parser.parse_binding()?;
            parser.expect(&Token::And, "AND between WHERE bindings")?;
            let (var_b, binding_b) = parser.parse_binding()?;
            for (var, binding) in [(var_a, binding_a), (var_b, binding_b)] {
                if var.eq_ignore_ascii_case(&left_var) {
                    left_binding = binding;
                } else if var.eq_ignore_ascii_case(&right_var) {
                    right_binding = binding;
                } else {
                    return Err(PxqlError::Invalid(format!(
                        "WHERE clause references unknown variable '{var}'"
                    )));
                }
            }
        }
    }

    let mut despite = Predicate::always_true();
    if parser.peek() == Some(&Token::Despite) {
        parser.pos += 1;
        despite = parser.parse_predicate()?;
    }

    parser.expect(&Token::Observed, "the OBSERVED clause")?;
    let observed = parser.parse_predicate()?;

    parser.expect(&Token::Expected, "the EXPECTED clause")?;
    let expected = parser.parse_predicate()?;

    if !parser.at_end() {
        return Err(ParseError::new("unexpected trailing input", parser.offset()).into());
    }

    let query = PxqlQuery {
        subject,
        left_var,
        right_var,
        left_binding,
        right_binding,
        despite,
        observed,
        expected,
    };
    query.validate()?;
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_1() {
        // Figure 1, query 1: unconstrained "why same duration".
        let q =
            parse_query("OBSERVED duration_compare = SIM\nEXPECTED duration_compare = GT").unwrap();
        assert_eq!(q.subject, SubjectKind::Jobs);
        assert!(q.despite.is_trivial());
        assert_eq!(q.observed.to_string(), "duration_compare = SIM");
        assert_eq!(q.expected.to_string(), "duration_compare = GT");
    }

    #[test]
    fn parses_paper_query_4_with_unicode_and() {
        let q = parse_query(
            "DESPITE inputsize_compare = SIM ∧ numinstances_isSame = T\n\
             OBSERVED duration_compare = LT\n\
             EXPECTED duration_compare = SIM",
        )
        .unwrap();
        assert_eq!(q.despite.width(), 2);
        assert_eq!(q.despite.atoms()[1].constant, Value::Bool(true));
    }

    #[test]
    fn parses_full_form_with_where_clause() {
        let q = parse_query(
            "FOR J1, J2 WHERE J1.JobID = 'job_0001' AND J2.JobID = ?\n\
             DESPITE numinstances_isSame = T AND pig_script_isSame = T\n\
             OBSERVED duration_compare = GT\n\
             EXPECTED duration_compare = SIM",
        )
        .unwrap();
        assert_eq!(q.left_binding, PairBinding::Literal("job_0001".to_string()));
        assert_eq!(q.right_binding, PairBinding::Placeholder);
        assert_eq!(q.subject, SubjectKind::Jobs);
    }

    #[test]
    fn task_variables_switch_subject() {
        let q = parse_query(
            "FOR T1, T2 WHERE T1.TaskID = ? AND T2.TaskID = ?\n\
             DESPITE jobid_isSame = T AND inputsize_compare = SIM AND hostname_isSame = T\n\
             OBSERVED duration_compare = LT\n\
             EXPECTED duration_compare = SIM",
        )
        .unwrap();
        assert_eq!(q.subject, SubjectKind::Tasks);
        assert_eq!(q.despite.width(), 3);
    }

    #[test]
    fn despite_true_is_trivial() {
        let q = parse_query(
            "DESPITE TRUE OBSERVED duration_compare = LT EXPECTED duration_compare = SIM",
        )
        .unwrap();
        assert!(q.despite.is_trivial());
    }

    #[test]
    fn numeric_constants_with_suffixes() {
        let p = parse_predicate_str("blocksize >= 128MB AND numinstances <= 12").unwrap();
        assert_eq!(p.atoms()[0].constant, Value::Num(128.0 * 1024.0 * 1024.0));
        assert_eq!(p.atoms()[1].op, Op::Le);
    }

    #[test]
    fn pair_constants_parse() {
        let p = parse_predicate_str("pigscript_diff = ('filter.pig', 'join.pig')").unwrap();
        assert_eq!(
            p.atoms()[0].constant,
            Value::pair(Value::str("filter.pig"), Value::str("join.pig"))
        );
    }

    #[test]
    fn missing_observed_clause_is_an_error() {
        let err = parse_query("EXPECTED duration_compare = SIM").unwrap_err();
        assert!(matches!(err, PxqlError::Parse(_)));
    }

    #[test]
    fn identical_clauses_are_invalid() {
        let err = parse_query("OBSERVED duration_compare = SIM EXPECTED duration_compare = SIM")
            .unwrap_err();
        assert!(matches!(err, PxqlError::Invalid(_)));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err =
            parse_query("OBSERVED duration_compare = SIM EXPECTED duration_compare = GT banana")
                .unwrap_err();
        assert!(matches!(err, PxqlError::Parse(_)));
    }

    #[test]
    fn unknown_where_variable_is_invalid() {
        let err = parse_query(
            "FOR J1, J2 WHERE J9.JobID = ? AND J2.JobID = ?\n\
             OBSERVED duration_compare = SIM EXPECTED duration_compare = GT",
        )
        .unwrap_err();
        assert!(matches!(err, PxqlError::Invalid(_)));
    }

    #[test]
    fn parse_error_on_bad_operator() {
        let err = parse_predicate_str("a ~ 3").unwrap_err();
        assert!(matches!(err, PxqlError::Parse(_)));
    }

    #[test]
    fn explanations_parse_with_and_without_despite() {
        let (despite, because) = parse_explanation_str(
            "DESPITE inputsize_compare = GT\nBECAUSE blocksize >= 128MB AND numinstances >= 100",
        )
        .unwrap();
        assert_eq!(despite.width(), 1);
        assert_eq!(because.width(), 2);
        assert_eq!(
            because.atoms()[0].constant,
            Value::Num(128.0 * 1024.0 * 1024.0)
        );

        let (despite, because) = parse_explanation_str("BECAUSE avg_cpu_user_isSame = F").unwrap();
        assert!(despite.is_trivial());
        assert_eq!(because.width(), 1);

        assert!(parse_explanation_str("DESPITE a = 1").is_err());
        assert!(parse_explanation_str("BECAUSE a = 1 garbage").is_err());
    }

    #[test]
    fn round_trip_through_display() {
        let text = "FOR J1, J2 WHERE J1.JobID = 'a' AND J2.JobID = 'b'\n\
                    DESPITE inputsize_compare = GT\n\
                    OBSERVED duration_compare = SIM\n\
                    EXPECTED duration_compare = GT";
        let q = parse_query(text).unwrap();
        let reparsed = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }
}
