//! Atoms, predicates and their evaluation.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Comparison operators supported by PXQL (`=`, `!=`, `<`, `<=`, `>`, `>=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than (numeric only).
    Lt,
    /// Less than or equal (numeric only).
    Le,
    /// Strictly greater than (numeric only).
    Gt,
    /// Greater than or equal (numeric only).
    Ge,
}

impl Op {
    /// Applies the operator to a feature value and a constant.
    ///
    /// Missing feature values make every atom false (even `!=`), so that
    /// explanations never hinge on features that do not apply to a pair.
    pub fn apply(self, feature: &Value, constant: &Value) -> bool {
        if feature.is_null() || constant.is_null() {
            return false;
        }
        match self {
            Op::Eq => feature.pxql_eq(constant),
            Op::Ne => !feature.pxql_eq(constant),
            Op::Lt => matches!(feature.pxql_cmp(constant), Some(std::cmp::Ordering::Less)),
            Op::Le => matches!(
                feature.pxql_cmp(constant),
                Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
            ),
            Op::Gt => matches!(
                feature.pxql_cmp(constant),
                Some(std::cmp::Ordering::Greater)
            ),
            Op::Ge => matches!(
                feature.pxql_cmp(constant),
                Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
            ),
        }
    }

    /// The operator that accepts exactly the complement of this operator's
    /// acceptances on non-missing numeric values.
    pub fn negate(self) -> Op {
        match self {
            Op::Eq => Op::Ne,
            Op::Ne => Op::Eq,
            Op::Lt => Op::Ge,
            Op::Le => Op::Gt,
            Op::Gt => Op::Le,
            Op::Ge => Op::Lt,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Anything that can resolve a feature name to a value.
///
/// Implemented for feature maps; `perfxplain-core` implements it for pair
/// examples.
pub trait FeatureSource {
    /// Resolves `name`, returning `None` when the feature is unknown.
    fn feature(&self, name: &str) -> Option<Value>;
}

impl FeatureSource for BTreeMap<String, Value> {
    fn feature(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

impl<T: FeatureSource + ?Sized> FeatureSource for &T {
    fn feature(&self, name: &str) -> Option<Value> {
        (**self).feature(name)
    }
}

/// An atomic condition `feature op constant`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// Feature name, e.g. `inputsize_compare`.
    pub feature: String,
    /// Comparison operator.
    pub op: Op,
    /// Constant to compare against.
    pub constant: Value,
}

impl Atom {
    /// Creates an atom.
    pub fn new(feature: impl Into<String>, op: Op, constant: impl Into<Value>) -> Self {
        Atom {
            feature: feature.into(),
            op,
            constant: constant.into(),
        }
    }

    /// Shorthand for an equality atom.
    pub fn eq(feature: impl Into<String>, constant: impl Into<Value>) -> Self {
        Atom::new(feature, Op::Eq, constant)
    }

    /// Evaluates the atom against a feature source.  Unknown features are
    /// treated as missing (false).
    pub fn eval<S: FeatureSource>(&self, source: &S) -> bool {
        match source.feature(&self.feature) {
            Some(value) => self.op.apply(&value, &self.constant),
            None => false,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.feature, self.op, self.constant)
    }
}

/// A conjunction of atoms.  The empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Predicate {
    atoms: Vec<Atom>,
}

impl Predicate {
    /// The always-true predicate (empty conjunction).
    pub fn always_true() -> Self {
        Predicate { atoms: Vec::new() }
    }

    /// Builds a predicate from atoms.
    pub fn from_atoms(atoms: Vec<Atom>) -> Self {
        Predicate { atoms }
    }

    /// The atoms of the conjunction, in order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms (the *width* of a clause, in the paper's terms).
    pub fn width(&self) -> usize {
        self.atoms.len()
    }

    /// Whether this is the empty (always-true) predicate.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Appends an atom, returning the extended predicate.
    pub fn and(mut self, atom: Atom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// Appends an atom in place.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// Concatenates two predicates (logical conjunction).
    pub fn conjoin(&self, other: &Predicate) -> Predicate {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        Predicate { atoms }
    }

    /// Truncates to the first `width` atoms (used when reporting
    /// explanations of a requested width).
    pub fn truncated(&self, width: usize) -> Predicate {
        Predicate {
            atoms: self.atoms.iter().take(width).cloned().collect(),
        }
    }

    /// Evaluates the conjunction against a feature source.
    pub fn eval<S: FeatureSource>(&self, source: &S) -> bool {
        self.atoms.iter().all(|atom| atom.eval(source))
    }

    /// Whether the predicate mentions the given feature.
    pub fn mentions(&self, feature: &str) -> bool {
        self.atoms.iter().any(|a| a.feature == feature)
    }

    /// The set of feature names mentioned, in first-mention order.
    pub fn features(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for atom in &self.atoms {
            if !seen.contains(&atom.feature.as_str()) {
                seen.push(atom.feature.as_str());
            }
        }
        seen
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

impl FromIterator<Atom> for Predicate {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Predicate {
            atoms: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> BTreeMap<String, Value> {
        let mut m = BTreeMap::new();
        m.insert("inputsize_compare".to_string(), Value::str("GT"));
        m.insert("duration_compare".to_string(), Value::str("SIM"));
        m.insert("numinstances".to_string(), Value::Num(8.0));
        m.insert("jobid_isSame".to_string(), Value::Bool(true));
        m.insert("blocksize".to_string(), Value::Num(128.0 * 1024.0 * 1024.0));
        m.insert("missing_metric".to_string(), Value::Null);
        m
    }

    #[test]
    fn op_apply_covers_all_operators() {
        let three = Value::Num(3.0);
        let five = Value::Num(5.0);
        assert!(Op::Lt.apply(&three, &five));
        assert!(Op::Le.apply(&three, &three));
        assert!(Op::Gt.apply(&five, &three));
        assert!(Op::Ge.apply(&five, &five));
        assert!(Op::Eq.apply(&three, &three));
        assert!(Op::Ne.apply(&three, &five));
    }

    #[test]
    fn missing_values_fail_every_operator() {
        for op in [Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge] {
            assert!(!op.apply(&Value::Null, &Value::Num(1.0)), "{op}");
            assert!(!op.apply(&Value::Num(1.0), &Value::Null), "{op}");
        }
    }

    #[test]
    fn negate_is_involutive() {
        for op in [Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn atom_eval_against_feature_map() {
        let f = features();
        assert!(Atom::eq("inputsize_compare", "GT").eval(&f));
        assert!(!Atom::eq("inputsize_compare", "LT").eval(&f));
        assert!(Atom::new("numinstances", Op::Le, 12i64).eval(&f));
        assert!(Atom::eq("jobid_isSame", true).eval(&f));
        // Unknown and missing features are false.
        assert!(!Atom::eq("unknown_feature", 1i64).eval(&f));
        assert!(!Atom::new("missing_metric", Op::Ne, 0i64).eval(&f));
    }

    #[test]
    fn predicate_conjunction_semantics() {
        let f = features();
        let p = Predicate::from_atoms(vec![
            Atom::eq("inputsize_compare", "GT"),
            Atom::new("numinstances", Op::Le, 12i64),
        ]);
        assert!(p.eval(&f));
        let q = p.clone().and(Atom::eq("duration_compare", "GT"));
        assert!(!q.eval(&f));
        assert_eq!(q.width(), 3);
        assert!(Predicate::always_true().eval(&f));
    }

    #[test]
    fn predicate_helpers() {
        let p = Predicate::from_atoms(vec![
            Atom::eq("a", 1i64),
            Atom::eq("b", 2i64),
            Atom::eq("a", 3i64),
        ]);
        assert_eq!(p.features(), vec!["a", "b"]);
        assert!(p.mentions("b"));
        assert!(!p.mentions("c"));
        assert_eq!(p.truncated(1).width(), 1);
        let conj = p.conjoin(&Predicate::from_atoms(vec![Atom::eq("c", 4i64)]));
        assert_eq!(conj.width(), 4);
    }

    #[test]
    fn display_formats_readably() {
        let p = Predicate::from_atoms(vec![
            Atom::eq("inputsize_compare", "GT"),
            Atom::new("blocksize", Op::Ge, 128i64),
        ]);
        assert_eq!(p.to_string(), "inputsize_compare = GT AND blocksize >= 128");
        assert_eq!(Predicate::always_true().to_string(), "true");
    }
}
