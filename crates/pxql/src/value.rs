//! Feature values.
//!
//! PXQL predicates compare features against constants.  Features in the
//! PerfXplain data model can be numeric (durations, byte counts, loads),
//! nominal strings (hostnames, Pig script names), booleans (`isSame`
//! features), three-valued comparisons (`LT`/`SIM`/`GT` for `compare`
//! features) or *pairs* of raw values (`diff` features, e.g.
//! `(filter.pig, join.pig)`).  A feature can also be missing for a given pair
//! (e.g. a `compare` feature of a nominal raw feature).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A feature value (or constant) in PXQL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing / not-applicable.
    Null,
    /// Boolean, used by `isSame` features.
    Bool(bool),
    /// Numeric value.
    Num(f64),
    /// Nominal string value, used by `compare` (LT/SIM/GT), base nominal
    /// features and free-form metadata.
    Str(String),
    /// Ordered pair of values, used by `diff` features.
    Pair(Box<Value>, Box<Value>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a pair value.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Whether the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric payload, if the value is numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean payload, if the value is boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String payload, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether two values are equal for the purpose of PXQL `=` / `!=`.
    ///
    /// Missing values are never equal to anything, including other missing
    /// values (SQL-like semantics).  Numbers compare with a small relative
    /// tolerance so that round-tripping through text does not break equality.
    pub fn pxql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => {
                (a - b).abs() <= f64::EPSILON * a.abs().max(b.abs()).max(1.0)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Pair(a1, a2), Value::Pair(b1, b2)) => a1.pxql_eq(b1) && a2.pxql_eq(b2),
            // Booleans written as T / F strings compare equal to booleans, so
            // that textual queries like `jobid_isSame = T` work naturally.
            (Value::Bool(a), Value::Str(s)) | (Value::Str(s), Value::Bool(a)) => {
                matches!(
                    (a, s.to_ascii_uppercase().as_str()),
                    (true, "T") | (true, "TRUE") | (false, "F") | (false, "FALSE")
                )
            }
            _ => false,
        }
    }

    /// Ordering between two values for `<`, `<=`, `>`, `>=`.
    ///
    /// Only defined between two numbers; everything else (including any
    /// missing value) is incomparable and makes the containing atom evaluate
    /// to `false`.
    pub fn pxql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(true) => write!(f, "T"),
            Value::Bool(false) => write!(f, "F"),
            Value::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => {
                let is_keyword = matches!(
                    s.to_ascii_uppercase().as_str(),
                    "FOR"
                        | "WHERE"
                        | "DESPITE"
                        | "OBSERVED"
                        | "EXPECTED"
                        | "BECAUSE"
                        | "AND"
                        | "TRUE"
                        | "NULL"
                );
                // Dots are excluded because bare identifiers cannot contain
                // them (they would collide with the `J1.JobID` syntax);
                // script names like `simple-filter.pig` are therefore
                // rendered quoted and re-parse losslessly.
                let bare_safe = !s.is_empty()
                    && !is_keyword
                    && s.chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                    && s.chars()
                        .all(|c| c.is_alphanumeric() || c == '_' || c == '-');
                if bare_safe {
                    write!(f, "{s}")
                } else {
                    write!(f, "'{}'", s.replace('\'', "''"))
                }
            }
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_never_equal() {
        assert!(!Value::Null.pxql_eq(&Value::Null));
        assert!(!Value::Null.pxql_eq(&Value::Num(1.0)));
        assert!(!Value::Num(1.0).pxql_eq(&Value::Null));
    }

    #[test]
    fn numbers_compare_with_tolerance() {
        assert!(Value::Num(0.1 + 0.2).pxql_eq(&Value::Num(0.3)));
        assert!(!Value::Num(1.0).pxql_eq(&Value::Num(1.001)));
        assert_eq!(
            Value::Num(1.0).pxql_cmp(&Value::Num(2.0)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn bool_and_tf_strings_interoperate() {
        assert!(Value::Bool(true).pxql_eq(&Value::str("T")));
        assert!(Value::Bool(false).pxql_eq(&Value::str("F")));
        assert!(Value::Bool(true).pxql_eq(&Value::str("true")));
        assert!(!Value::Bool(true).pxql_eq(&Value::str("F")));
    }

    #[test]
    fn ordering_undefined_for_non_numbers() {
        assert_eq!(Value::str("a").pxql_cmp(&Value::str("b")), None);
        assert_eq!(Value::Null.pxql_cmp(&Value::Num(1.0)), None);
        assert_eq!(Value::Bool(true).pxql_cmp(&Value::Bool(false)), None);
    }

    #[test]
    fn pairs_compare_componentwise() {
        let a = Value::pair(Value::str("filter.pig"), Value::str("join.pig"));
        let b = Value::pair(Value::str("filter.pig"), Value::str("join.pig"));
        let c = Value::pair(Value::str("filter.pig"), Value::str("group.pig"));
        assert!(a.pxql_eq(&b));
        assert!(!a.pxql_eq(&c));
    }

    #[test]
    fn display_round_trip_friendly() {
        assert_eq!(Value::Num(128.0).to_string(), "128");
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
        assert_eq!(Value::Bool(true).to_string(), "T");
        assert_eq!(Value::str("filter_pig").to_string(), "filter_pig");
        // Dots and whitespace force quoting so the text re-parses losslessly.
        assert_eq!(Value::str("filter.pig").to_string(), "'filter.pig'");
        assert_eq!(Value::str("has space").to_string(), "'has space'");
        assert_eq!(Value::str("AND").to_string(), "'AND'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(
            Value::pair(Value::str("a"), Value::str("b")).to_string(),
            "(a, b)"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Num(3.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::str("x"));
    }
}
