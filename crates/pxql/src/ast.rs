//! The abstract syntax of a PXQL query.

use crate::error::PxqlError;
use crate::predicate::Predicate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether the query compares two jobs or two tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubjectKind {
    /// The pair of interest are MapReduce jobs.
    Jobs,
    /// The pair of interest are MapReduce tasks.
    Tasks,
}

impl fmt::Display for SubjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubjectKind::Jobs => write!(f, "jobs"),
            SubjectKind::Tasks => write!(f, "tasks"),
        }
    }
}

/// How the pair of interest is identified in the `WHERE` clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairBinding {
    /// `J1.JobID = ?` — the caller supplies the identifier at evaluation
    /// time.
    Placeholder,
    /// `J1.JobID = 'job_201203010001_0007'` — the identifier is inlined.
    Literal(String),
}

impl PairBinding {
    /// The inlined identifier, if any.
    pub fn literal(&self) -> Option<&str> {
        match self {
            PairBinding::Literal(id) => Some(id),
            PairBinding::Placeholder => None,
        }
    }
}

/// A parsed PXQL query.
///
/// Definition 1 of the paper: a query comprises a pair of jobs and a triple
/// of predicates `(des, obs, exp)` with `des(J1,J2) = obs(J1,J2) = true`,
/// `exp(J1,J2) = false` and `obs ⊨ ¬exp`.  Those semantic conditions involve
/// the pair's feature values and are checked by `perfxplain-core` when the
/// query is bound to an execution log; this struct only captures the syntax
/// plus the purely syntactic sanity checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PxqlQuery {
    /// Jobs or tasks.
    pub subject: SubjectKind,
    /// Variable name of the first execution (e.g. `J1` or `T1`).
    pub left_var: String,
    /// Variable name of the second execution.
    pub right_var: String,
    /// Binding of the first execution's identifier.
    pub left_binding: PairBinding,
    /// Binding of the second execution's identifier.
    pub right_binding: PairBinding,
    /// The (optional) `DESPITE` clause; `true` when omitted.
    pub despite: Predicate,
    /// The `OBSERVED` clause.
    pub observed: Predicate,
    /// The `EXPECTED` clause.
    pub expected: Predicate,
}

impl PxqlQuery {
    /// Builds a query programmatically (no `FOR`/`WHERE` text needed).
    pub fn new(
        subject: SubjectKind,
        despite: Predicate,
        observed: Predicate,
        expected: Predicate,
    ) -> Result<Self, PxqlError> {
        let query = PxqlQuery {
            subject,
            left_var: match subject {
                SubjectKind::Jobs => "J1".to_string(),
                SubjectKind::Tasks => "T1".to_string(),
            },
            right_var: match subject {
                SubjectKind::Jobs => "J2".to_string(),
                SubjectKind::Tasks => "T2".to_string(),
            },
            left_binding: PairBinding::Placeholder,
            right_binding: PairBinding::Placeholder,
            despite,
            observed,
            expected,
        };
        query.validate()?;
        Ok(query)
    }

    /// Supplies literal identifiers for the pair of interest.
    pub fn with_pair(mut self, left: impl Into<String>, right: impl Into<String>) -> Self {
        self.left_binding = PairBinding::Literal(left.into());
        self.right_binding = PairBinding::Literal(right.into());
        self
    }

    /// Replaces the despite clause (used when PerfXplain extends an
    /// under-specified query with a generated `des'`).
    pub fn with_despite(mut self, despite: Predicate) -> Self {
        self.despite = despite;
        self
    }

    /// Syntactic sanity checks.
    pub fn validate(&self) -> Result<(), PxqlError> {
        if self.observed.is_trivial() {
            return Err(PxqlError::Invalid(
                "the OBSERVED clause must not be empty".to_string(),
            ));
        }
        if self.expected.is_trivial() {
            return Err(PxqlError::Invalid(
                "the EXPECTED clause must not be empty".to_string(),
            ));
        }
        if self.observed == self.expected {
            return Err(PxqlError::Invalid(
                "OBSERVED and EXPECTED must describe different behaviours".to_string(),
            ));
        }
        Ok(())
    }
}

impl fmt::Display for PxqlQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let id_field = match self.subject {
            SubjectKind::Jobs => "JobID",
            SubjectKind::Tasks => "TaskID",
        };
        let binding = |b: &PairBinding| match b {
            PairBinding::Placeholder => "?".to_string(),
            PairBinding::Literal(id) => format!("'{id}'"),
        };
        writeln!(
            f,
            "FOR {}, {} WHERE {}.{} = {} AND {}.{} = {}",
            self.left_var,
            self.right_var,
            self.left_var,
            id_field,
            binding(&self.left_binding),
            self.right_var,
            id_field,
            binding(&self.right_binding)
        )?;
        if !self.despite.is_trivial() {
            writeln!(f, "DESPITE {}", self.despite)?;
        }
        writeln!(f, "OBSERVED {}", self.observed)?;
        write!(f, "EXPECTED {}", self.expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Atom, Predicate};

    fn obs() -> Predicate {
        Predicate::from_atoms(vec![Atom::eq("duration_compare", "SIM")])
    }

    fn exp() -> Predicate {
        Predicate::from_atoms(vec![Atom::eq("duration_compare", "GT")])
    }

    #[test]
    fn new_query_validates() {
        let q = PxqlQuery::new(SubjectKind::Jobs, Predicate::always_true(), obs(), exp()).unwrap();
        assert_eq!(q.left_var, "J1");
        assert!(q.despite.is_trivial());
    }

    #[test]
    fn empty_observed_is_rejected() {
        let err = PxqlQuery::new(
            SubjectKind::Jobs,
            Predicate::always_true(),
            Predicate::always_true(),
            exp(),
        )
        .unwrap_err();
        assert!(matches!(err, PxqlError::Invalid(_)));
    }

    #[test]
    fn identical_observed_and_expected_rejected() {
        let err =
            PxqlQuery::new(SubjectKind::Tasks, Predicate::always_true(), obs(), obs()).unwrap_err();
        assert!(matches!(err, PxqlError::Invalid(_)));
    }

    #[test]
    fn with_pair_and_display() {
        let q = PxqlQuery::new(SubjectKind::Jobs, Predicate::always_true(), obs(), exp())
            .unwrap()
            .with_pair("job_A", "job_B");
        let text = q.to_string();
        assert!(text.contains("J1.JobID = 'job_A'"));
        assert!(text.contains("OBSERVED duration_compare = SIM"));
        assert!(text.contains("EXPECTED duration_compare = GT"));
        assert!(!text.contains("DESPITE"));
        assert_eq!(q.left_binding.literal(), Some("job_A"));
    }

    #[test]
    fn tasks_use_task_vars() {
        let q = PxqlQuery::new(SubjectKind::Tasks, Predicate::always_true(), obs(), exp()).unwrap();
        assert_eq!(q.left_var, "T1");
        assert!(q.to_string().contains("TaskID"));
    }
}
