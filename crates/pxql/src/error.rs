//! Error types for lexing and parsing PXQL.

use std::fmt;

/// A lexing or parsing error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates an error at the given byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Top-level error type of the PXQL crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PxqlError {
    /// The query text could not be tokenized or parsed.
    Parse(ParseError),
    /// The query parsed but is not well-formed (e.g. an empty OBSERVED
    /// clause, or OBSERVED and EXPECTED that are identical).
    Invalid(String),
}

impl fmt::Display for PxqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PxqlError::Parse(e) => write!(f, "PXQL parse error: {e}"),
            PxqlError::Invalid(msg) => write!(f, "invalid PXQL query: {msg}"),
        }
    }
}

impl std::error::Error for PxqlError {}

impl From<ParseError> for PxqlError {
    fn from(e: ParseError) -> Self {
        PxqlError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let err = ParseError::new("unexpected token", 17);
        assert!(err.to_string().contains("17"));
        let top: PxqlError = err.into();
        assert!(top.to_string().contains("parse error"));
    }

    #[test]
    fn invalid_variant_displays_message() {
        let err = PxqlError::Invalid("OBSERVED must not imply EXPECTED".to_string());
        assert!(err.to_string().contains("OBSERVED"));
    }
}
