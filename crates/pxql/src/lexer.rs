//! Tokenizer for PXQL.
//!
//! The language is small: keywords (`FOR`, `WHERE`, `DESPITE`, `OBSERVED`,
//! `EXPECTED`, `AND`, `TRUE`, `NULL`), identifiers, numeric literals
//! (with optional size suffixes such as `128MB`), quoted strings, comparison
//! operators, `?` placeholders, commas, dots and parentheses.  The unicode
//! conjunction `∧` is accepted as a synonym for `AND` so that queries can be
//! pasted straight from the paper.

use crate::error::ParseError;

/// A lexical token together with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword `FOR`.
    For,
    /// Keyword `WHERE`.
    Where,
    /// Keyword `DESPITE`.
    Despite,
    /// Keyword `OBSERVED`.
    Observed,
    /// Keyword `EXPECTED`.
    Expected,
    /// Keyword `BECAUSE` (used when parsing explanations back in).
    Because,
    /// Conjunction `AND` / `∧`.
    And,
    /// Literal `TRUE`.
    True,
    /// Literal `NULL`.
    Null,
    /// An identifier (feature name, job variable, …).
    Ident(String),
    /// A quoted string literal.
    StringLit(String),
    /// A numeric literal, already scaled by any size suffix.
    Number(f64),
    /// `=`.
    Eq,
    /// `!=` or `<>` or `≠`.
    Ne,
    /// `<`.
    Lt,
    /// `<=` or `≤`.
    Le,
    /// `>`.
    Gt,
    /// `>=` or `≥`.
    Ge,
    /// `?` placeholder in the WHERE clause.
    Placeholder,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
}

/// A token plus the byte offset where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// Multiplier for a size / time suffix attached to a number.
fn suffix_multiplier(suffix: &str) -> Option<f64> {
    match suffix.to_ascii_uppercase().as_str() {
        "" => Some(1.0),
        "KB" => Some(1024.0),
        "MB" => Some(1024.0 * 1024.0),
        "GB" => Some(1024.0 * 1024.0 * 1024.0),
        "TB" => Some(1024.0 * 1024.0 * 1024.0 * 1024.0),
        "MS" => Some(0.001),
        "S" | "SEC" => Some(1.0),
        "MIN" => Some(60.0),
        "H" | "HR" => Some(3600.0),
        _ => None,
    }
}

fn keyword(word: &str) -> Option<Token> {
    match word.to_ascii_uppercase().as_str() {
        "FOR" => Some(Token::For),
        "WHERE" => Some(Token::Where),
        "DESPITE" => Some(Token::Despite),
        "OBSERVED" => Some(Token::Observed),
        "EXPECTED" => Some(Token::Expected),
        "BECAUSE" => Some(Token::Because),
        "AND" => Some(Token::And),
        "TRUE" => Some(Token::True),
        "NULL" => Some(Token::Null),
        _ => None,
    }
}

/// Tokenizes a PXQL query or predicate.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    // Track byte offsets for error messages.
    let mut byte_offsets = Vec::with_capacity(bytes.len() + 1);
    let mut acc = 0;
    for c in &bytes {
        byte_offsets.push(acc);
        acc += c.len_utf8();
    }
    byte_offsets.push(acc);

    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let offset = byte_offsets[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '∧' => {
                tokens.push(SpannedToken {
                    token: Token::And,
                    offset,
                });
                i += 1;
            }
            ',' => {
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    offset,
                });
                i += 1;
            }
            '.' => {
                tokens.push(SpannedToken {
                    token: Token::Dot,
                    offset,
                });
                i += 1;
            }
            '(' => {
                tokens.push(SpannedToken {
                    token: Token::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                tokens.push(SpannedToken {
                    token: Token::RParen,
                    offset,
                });
                i += 1;
            }
            '?' => {
                tokens.push(SpannedToken {
                    token: Token::Placeholder,
                    offset,
                });
                i += 1;
            }
            '=' => {
                tokens.push(SpannedToken {
                    token: Token::Eq,
                    offset,
                });
                i += 1;
            }
            '≠' => {
                tokens.push(SpannedToken {
                    token: Token::Ne,
                    offset,
                });
                i += 1;
            }
            '≤' => {
                tokens.push(SpannedToken {
                    token: Token::Le,
                    offset,
                });
                i += 1;
            }
            '≥' => {
                tokens.push(SpannedToken {
                    token: Token::Ge,
                    offset,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(SpannedToken {
                        token: Token::Ne,
                        offset,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '=' after '!'", offset));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(SpannedToken {
                        token: Token::Le,
                        offset,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    tokens.push(SpannedToken {
                        token: Token::Ne,
                        offset,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Lt,
                        offset,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(SpannedToken {
                        token: Token::Ge,
                        offset,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Gt,
                        offset,
                    });
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut value = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < bytes.len() {
                    if bytes[j] == quote {
                        // Doubled quote is an escaped quote.
                        if bytes.get(j + 1) == Some(&quote) {
                            value.push(quote);
                            j += 2;
                            continue;
                        }
                        closed = true;
                        break;
                    }
                    value.push(bytes[j]);
                    j += 1;
                }
                if !closed {
                    return Err(ParseError::new("unterminated string literal", offset));
                }
                tokens.push(SpannedToken {
                    token: Token::StringLit(value),
                    offset,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let mut j = i;
                if bytes[j] == '-' {
                    j += 1;
                }
                let mut num = String::new();
                if bytes[i] == '-' {
                    num.push('-');
                }
                let mut seen_dot = false;
                while j < bytes.len() {
                    let d = bytes[j];
                    if d.is_ascii_digit() {
                        num.push(d);
                        j += 1;
                    } else if d == '.'
                        && !seen_dot
                        && bytes.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        seen_dot = true;
                        num.push(d);
                        j += 1;
                    } else if d == '_' {
                        j += 1; // digit separator
                    } else {
                        break;
                    }
                }
                // Optional size/time suffix glued to the number (e.g. 128MB).
                let mut suffix = String::new();
                while j < bytes.len() && bytes[j].is_ascii_alphabetic() {
                    suffix.push(bytes[j]);
                    j += 1;
                }
                let base: f64 = num
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid number '{num}'"), offset))?;
                let multiplier = suffix_multiplier(&suffix).ok_or_else(|| {
                    ParseError::new(format!("unknown numeric suffix '{suffix}'"), offset)
                })?;
                tokens.push(SpannedToken {
                    token: Token::Number(base * multiplier),
                    offset,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                let mut word = String::new();
                while j < bytes.len() {
                    let d = bytes[j];
                    if d.is_alphanumeric() || d == '_' || d == '-' {
                        word.push(d);
                        j += 1;
                    } else {
                        break;
                    }
                }
                let token = keyword(&word).unwrap_or(Token::Ident(word));
                tokens.push(SpannedToken { token, offset });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{other}'"),
                    offset,
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn tokenizes_keywords_and_identifiers() {
        let toks = kinds("DESPITE inputsize_compare = GT");
        assert_eq!(
            toks,
            vec![
                Token::Despite,
                Token::Ident("inputsize_compare".to_string()),
                Token::Eq,
                Token::Ident("GT".to_string()),
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("observed And eXpEcTeD"),
            vec![Token::Observed, Token::And, Token::Expected]
        );
    }

    #[test]
    fn tokenizes_operators() {
        assert_eq!(
            kinds("= != <> < <= > >= ≤ ≥ ≠"),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Le,
                Token::Ge,
                Token::Ne,
            ]
        );
    }

    #[test]
    fn unicode_conjunction_is_and() {
        assert_eq!(
            kinds("a = 1 ∧ b = 2"),
            vec![
                Token::Ident("a".into()),
                Token::Eq,
                Token::Number(1.0),
                Token::And,
                Token::Ident("b".into()),
                Token::Eq,
                Token::Number(2.0),
            ]
        );
    }

    #[test]
    fn size_suffixes_scale_numbers() {
        assert_eq!(kinds("128MB"), vec![Token::Number(128.0 * 1024.0 * 1024.0)]);
        assert_eq!(
            kinds("1.5GB"),
            vec![Token::Number(1.5 * 1024.0 * 1024.0 * 1024.0)]
        );
        assert_eq!(kinds("30min"), vec![Token::Number(1800.0)]);
        assert!(tokenize("12parsecs").is_err());
    }

    #[test]
    fn negative_and_fractional_numbers() {
        assert_eq!(kinds("-3"), vec![Token::Number(-3.0)]);
        assert_eq!(kinds("0.25"), vec![Token::Number(0.25)]);
        assert_eq!(kinds("1_000"), vec![Token::Number(1000.0)]);
    }

    #[test]
    fn string_literals_and_escapes() {
        assert_eq!(
            kinds("'simple-filter.pig'"),
            vec![Token::StringLit("simple-filter.pig".to_string())]
        );
        assert_eq!(kinds("'it''s'"), vec![Token::StringLit("it's".to_string())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn where_clause_tokens() {
        let toks = kinds("FOR J1, J2 WHERE J1.JobID = ? AND J2.JobID = ?");
        assert!(toks.contains(&Token::Placeholder));
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Comma));
        assert_eq!(toks[0], Token::For);
    }

    #[test]
    fn error_carries_offset() {
        let err = tokenize("a = #").unwrap_err();
        assert_eq!(err.offset, 4);
    }
}
