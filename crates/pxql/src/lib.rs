//! The PerfXplain Query Language (PXQL).
//!
//! A PXQL query identifies a pair of MapReduce jobs (or tasks) and three
//! predicates over the *pair features* of those executions:
//!
//! ```text
//! FOR J1, J2 WHERE J1.JobID = ? AND J2.JobID = ?
//! DESPITE  des
//! OBSERVED obs
//! EXPECTED exp
//! ```
//!
//! Every predicate is a conjunction `φ1 ∧ … ∧ φm` of atoms `feature op
//! constant`, with `op` one of `=`, `!=`, `<`, `<=`, `>`, `>=`.  The
//! `DESPITE` clause is optional (omitting it is equivalent to `DESPITE
//! true`).
//!
//! This crate contains the language itself — values, operators, atoms,
//! predicates, the lexer and the recursive-descent parser — together with the
//! evaluation of predicates over anything that can resolve feature names to
//! [`Value`]s (the [`FeatureSource`] trait).  The data model that produces
//! those features (pair-feature construction, execution logs) lives in
//! `perfxplain-core`.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod predicate;
pub mod value;

pub use ast::{PairBinding, PxqlQuery, SubjectKind};
pub use error::{ParseError, PxqlError};
pub use lexer::{tokenize, Token};
pub use parser::{parse_explanation_str, parse_query};
pub use predicate::{Atom, FeatureSource, Op, Predicate};
pub use value::Value;

/// Parses a single predicate expression, e.g.
/// `inputsize_compare = GT AND numinstances <= 12`.
///
/// Convenience wrapper over [`parser::parse_predicate_str`].
pub fn parse_predicate(input: &str) -> Result<Predicate, PxqlError> {
    parser::parse_predicate_str(input)
}
