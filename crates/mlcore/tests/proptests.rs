//! Property-based tests for the ML primitives.

use mlcore::entropy::CellCounts;
use mlcore::{
    balanced_sample, best_split_for_attribute, binary_entropy, entropy_of_counts, information_gain,
    percentile_ranks, AttrValue, Attribute, Dataset,
};
use proptest::prelude::*;

proptest! {
    // -----------------------------------------------------------------
    // Entropy and information gain
    // -----------------------------------------------------------------
    #[test]
    fn entropy_is_bounded_and_symmetric(p in 0.0..=1.0f64) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }

    #[test]
    fn information_gain_is_bounded_by_parent_entropy(
        inside_pos in 0usize..200,
        inside_neg in 0usize..200,
        outside_pos in 0usize..200,
        outside_neg in 0usize..200,
    ) {
        let inside = CellCounts { positive: inside_pos, negative: inside_neg };
        let outside = CellCounts { positive: outside_pos, negative: outside_neg };
        let gain = information_gain(inside, outside);
        let parent = entropy_of_counts(inside_pos + outside_pos, inside_neg + outside_neg);
        prop_assert!(gain >= 0.0);
        prop_assert!(gain <= parent + 1e-9, "gain {gain} exceeds parent entropy {parent}");
    }

    // -----------------------------------------------------------------
    // Percentile-rank normalisation
    // -----------------------------------------------------------------
    #[test]
    fn percentile_ranks_are_bounded_and_order_preserving(
        values in proptest::collection::vec(0.0..1.0f64, 1..40)
    ) {
        let ranks = percentile_ranks(&values);
        prop_assert_eq!(ranks.len(), values.len());
        for r in &ranks {
            prop_assert!((0.0..=1.0).contains(r));
        }
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(ranks[i] >= ranks[j]);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Balanced sampling
    // -----------------------------------------------------------------
    #[test]
    fn balanced_sample_indices_are_valid_and_classes_capped(
        positives in 0usize..3000,
        negatives in 0usize..3000,
        target in 10usize..500,
        seed in 0u64..1000,
    ) {
        let mut labels = vec![true; positives];
        labels.extend(vec![false; negatives]);
        let (selected, stats) = balanced_sample(&labels, target, seed);
        prop_assert_eq!(selected.len(), stats.total());
        prop_assert!(stats.positive <= positives);
        prop_assert!(stats.negative <= negatives);
        for &index in &selected {
            prop_assert!(index < labels.len());
        }
        // Indices are strictly increasing (scan order, no duplicates).
        for window in selected.windows(2) {
            prop_assert!(window[0] < window[1]);
        }
    }

    // -----------------------------------------------------------------
    // Split search
    // -----------------------------------------------------------------
    #[test]
    fn best_split_counts_are_consistent_with_its_own_atom(
        values in proptest::collection::vec((0.0..100.0f64, any::<bool>()), 4..80)
    ) {
        let mut dataset = Dataset::new(vec![Attribute::numeric("x")]);
        for (x, label) in &values {
            dataset.push(vec![AttrValue::Num(*x)], *label);
        }
        let indices: Vec<usize> = (0..dataset.len()).collect();
        if let Some(split) = best_split_for_attribute(&dataset, &indices, 0) {
            // Re-count the partition the winning atom induces and compare
            // against what the search reported.
            let mut inside = 0usize;
            let mut inside_pos = 0usize;
            for &i in &indices {
                if split.atom.matches_row(&dataset, i) {
                    inside += 1;
                    if dataset.label(i) {
                        inside_pos += 1;
                    }
                }
            }
            prop_assert_eq!(inside, split.inside.total());
            prop_assert_eq!(inside_pos, split.inside.positive);
            prop_assert!(split.gain >= 0.0);
            prop_assert!(inside > 0, "winning splits are never vacuous");
        }
    }
}
