//! Deterministic fault injection for robustness testing.
//!
//! A *failpoint* is a named site in production code — a segment read, a
//! manifest rename, a worker-pool job, a server accept — that asks this
//! module whether it should fail *right now* before doing its real work:
//!
//! ```ignore
//! if let Some(failure) = failpoints::trigger("snapshot.segment.read") {
//!     return Err(failure.into_io_error("snapshot.segment.read"));
//! }
//! ```
//!
//! With the `failpoints` cargo feature **disabled** (the default),
//! [`trigger`] is an `#[inline(always)]` function returning `None` — the
//! call compiles away entirely and production builds pay nothing.  With the
//! feature enabled, a process-global registry scripts each site's behavior:
//!
//! * [`script`] — a finite per-site action sequence consumed one trigger at
//!   a time (`[IoError(Interrupted), Pass, …]` is the classic
//!   *once-then-succeed* transient fault); when the script runs dry the
//!   site passes.
//! * [`always`] — the same action on every trigger (a persistently broken
//!   disk).
//! * [`arm_seeded`] — a seeded probabilistic schedule over *every* site:
//!   each site derives its own RNG stream from `hash(seed, site)`, so the
//!   per-site failure sequence is a pure function of the seed and that
//!   site's trigger count — deterministic regardless of how threads
//!   interleave across *different* sites.
//!
//! Actions are: return a typed [`Failure`] (an `io::Error` kind or a
//! corruption marker the site converts to its own error type), `Panic`
//! (raised inside [`trigger`] — exercises poison recovery), `SleepMs`
//! (latency injection, slept inside [`trigger`]) and `Pass`.  [`hits`]
//! counts every trigger per site, configured or not, so tests can assert a
//! site is actually wired.  [`disarm_all`] resets the registry between
//! tests; suites sharing the process-global registry must serialize on a
//! lock of their own.

use std::io;

/// What a triggered failpoint asks its site to do.  The site converts this
/// into its native error type; `Panic` and `SleepMs` actions never surface
/// here — they happen inside [`trigger`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failure {
    /// Fail with an `io::Error` of this kind.
    Io(io::ErrorKind),
    /// Report the payload as corrupt (bad bytes, failed checksum).
    Corrupt,
}

impl Failure {
    /// Renders this failure as an `io::Error` naming the failpoint, for
    /// sites whose natural error channel is IO.  `Corrupt` maps to
    /// `InvalidData`.
    pub fn into_io_error(self, site: &str) -> io::Error {
        match self {
            Failure::Io(kind) => {
                io::Error::new(kind, format!("injected fault at failpoint '{site}'"))
            }
            Failure::Corrupt => io::Error::new(
                io::ErrorKind::InvalidData,
                format!("injected corruption at failpoint '{site}'"),
            ),
        }
    }
}

/// One scripted behavior for a site trigger.
#[cfg(feature = "failpoints")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return [`Failure::Io`] with this kind.
    IoError(io::ErrorKind),
    /// Return [`Failure::Corrupt`].
    Corrupt,
    /// Panic inside [`trigger`] (after releasing the registry lock).
    Panic,
    /// Sleep this long inside [`trigger`], then pass.
    SleepMs(u64),
    /// Do nothing; the site proceeds normally.
    Pass,
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::Failure;

    /// No-op when the `failpoints` feature is off: always passes, inlines
    /// to nothing.
    #[inline(always)]
    pub fn trigger(_site: &str) -> Option<Failure> {
        None
    }
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{Action, Failure};
    use std::collections::{HashMap, VecDeque};
    use std::hash::{Hash, Hasher};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    #[derive(Debug)]
    enum Behavior {
        Script(VecDeque<Action>),
        Always(Action),
    }

    #[derive(Debug)]
    struct Seeded {
        seed: u64,
        /// Failure probability per trigger, in thousandths.
        permille: u16,
        actions: Vec<Action>,
        /// Per-site RNG state, lazily derived from `hash(seed, site)`.
        streams: HashMap<String, u64>,
    }

    #[derive(Debug, Default)]
    struct Registry {
        sites: HashMap<String, Behavior>,
        hits: HashMap<String, u64>,
        seeded: Option<Seeded>,
    }

    fn registry() -> MutexGuard<'static, Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY
            .get_or_init(|| Mutex::new(Registry::default()))
            .lock()
            // A Panic action poisons this mutex by design; the registry
            // state is always internally consistent, so recover it.
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn site_stream_seed(seed: u64, site: &str) -> u64 {
        let mut hasher = crate::hash::FxHasher::default();
        seed.hash(&mut hasher);
        site.hash(&mut hasher);
        hasher.finish()
    }

    /// Scripts `site` to perform `actions` one per trigger, in order; once
    /// the script is exhausted the site passes forever.  Replaces any
    /// previous behavior for the site.
    pub fn script(site: &str, actions: &[Action]) {
        registry().sites.insert(
            site.to_string(),
            Behavior::Script(actions.iter().copied().collect()),
        );
    }

    /// Scripts `site` to perform `action` on every trigger.
    pub fn always(site: &str, action: Action) {
        registry()
            .sites
            .insert(site.to_string(), Behavior::Always(action));
    }

    /// Arms a seeded probabilistic schedule over every site that has no
    /// explicit script: each trigger independently fails with probability
    /// `permille`/1000, drawing the action from `actions` — all driven by a
    /// per-site RNG stream derived from `hash(seed, site)`, so each site's
    /// fault sequence is deterministic in its own trigger order no matter
    /// how threads interleave across sites.
    pub fn arm_seeded(seed: u64, permille: u16, actions: &[Action]) {
        registry().seeded = Some(Seeded {
            seed,
            permille: permille.min(1000),
            actions: actions.to_vec(),
            streams: HashMap::new(),
        });
    }

    /// Removes the explicit behavior for one site (seeded schedules still
    /// apply to it).
    pub fn disarm(site: &str) {
        registry().sites.remove(site);
    }

    /// Clears every script, the seeded schedule and all hit counters.
    pub fn disarm_all() {
        let mut reg = registry();
        reg.sites.clear();
        reg.seeded = None;
        reg.hits.clear();
    }

    /// How many times `site` has triggered since the last [`disarm_all`].
    pub fn hits(site: &str) -> u64 {
        registry().hits.get(site).copied().unwrap_or(0)
    }

    /// Every site that has triggered since the last [`disarm_all`], with
    /// its hit count, in site-name order.
    pub fn sites_hit() -> Vec<(String, u64)> {
        let reg = registry();
        let mut all: Vec<(String, u64)> = reg.hits.iter().map(|(s, n)| (s.clone(), *n)).collect();
        all.sort();
        all
    }

    /// Asks whether `site` should fail now.  Counts the hit, consumes one
    /// scripted action (or draws from the seeded schedule), performs
    /// `Panic`/`SleepMs` actions in place, and returns the failure the
    /// site should surface, if any.
    pub fn trigger(site: &str) -> Option<Failure> {
        let action = {
            let mut reg = registry();
            *reg.hits.entry(site.to_string()).or_insert(0) += 1;
            match reg.sites.get_mut(site) {
                Some(Behavior::Script(actions)) => actions.pop_front().unwrap_or(Action::Pass),
                Some(Behavior::Always(action)) => *action,
                None => match reg.seeded.as_mut() {
                    Some(seeded) => {
                        let fallback = site_stream_seed(seeded.seed, site);
                        let state = seeded.streams.entry(site.to_string()).or_insert(fallback);
                        let draw = splitmix64(state);
                        if seeded.actions.is_empty() || (draw % 1000) >= seeded.permille as u64 {
                            Action::Pass
                        } else {
                            let pick = splitmix64(state) as usize % seeded.actions.len();
                            seeded.actions[pick]
                        }
                    }
                    None => Action::Pass,
                },
            }
            // Registry lock released here: Panic must not poison it and
            // SleepMs must not serialize unrelated sites.
        };
        match action {
            Action::Pass => None,
            Action::IoError(kind) => Some(Failure::Io(kind)),
            Action::Corrupt => Some(Failure::Corrupt),
            Action::Panic => panic!("injected panic at failpoint '{site}'"),
            Action::SleepMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
        }
    }
}

pub use imp::trigger;
#[cfg(feature = "failpoints")]
pub use imp::{always, arm_seeded, disarm, disarm_all, hits, script, sites_hit};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global; tests must not interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn scripts_consume_one_action_per_trigger_then_pass() {
        let _guard = serial();
        disarm_all();
        script(
            "t.script",
            &[
                Action::IoError(std::io::ErrorKind::Interrupted),
                Action::Pass,
                Action::Corrupt,
            ],
        );
        assert_eq!(
            trigger("t.script"),
            Some(Failure::Io(std::io::ErrorKind::Interrupted))
        );
        assert_eq!(trigger("t.script"), None);
        assert_eq!(trigger("t.script"), Some(Failure::Corrupt));
        // Script exhausted: passes forever after.
        assert_eq!(trigger("t.script"), None);
        assert_eq!(trigger("t.script"), None);
        assert_eq!(hits("t.script"), 5);
        disarm_all();
    }

    #[test]
    fn always_fails_every_trigger_until_disarmed() {
        let _guard = serial();
        disarm_all();
        always("t.always", Action::IoError(std::io::ErrorKind::TimedOut));
        for _ in 0..3 {
            assert_eq!(
                trigger("t.always"),
                Some(Failure::Io(std::io::ErrorKind::TimedOut))
            );
        }
        disarm("t.always");
        assert_eq!(trigger("t.always"), None);
        disarm_all();
    }

    #[test]
    fn unconfigured_sites_pass_but_count_hits() {
        let _guard = serial();
        disarm_all();
        assert_eq!(trigger("t.unconfigured"), None);
        assert_eq!(trigger("t.unconfigured"), None);
        assert_eq!(hits("t.unconfigured"), 2);
        assert!(sites_hit().contains(&("t.unconfigured".to_string(), 2)));
        disarm_all();
        assert_eq!(hits("t.unconfigured"), 0);
    }

    #[test]
    fn seeded_schedules_are_deterministic_per_site() {
        let _guard = serial();
        let sequence = |seed: u64| -> Vec<Option<Failure>> {
            disarm_all();
            arm_seeded(seed, 500, &[Action::Corrupt]);
            (0..32).map(|_| trigger("t.seeded")).collect()
        };
        let first = sequence(42);
        let second = sequence(42);
        assert_eq!(first, second, "same seed must replay the same faults");
        assert!(
            first.iter().any(|f| f.is_some()) && first.iter().any(|f| f.is_none()),
            "at 50% permille over 32 draws both outcomes should occur"
        );
        let other = sequence(43);
        assert_ne!(first, other, "different seeds should diverge");
        disarm_all();
    }

    #[test]
    fn seeded_schedule_yields_to_explicit_scripts() {
        let _guard = serial();
        disarm_all();
        arm_seeded(7, 1000, &[Action::Corrupt]);
        script("t.override", &[Action::Pass]);
        assert_eq!(trigger("t.override"), None, "script wins over schedule");
        // Script exhausted: still no seeded faults for scripted sites.
        assert_eq!(trigger("t.override"), None);
        disarm_all();
    }

    #[test]
    fn panic_actions_raise_and_the_registry_survives() {
        let _guard = serial();
        disarm_all();
        script("t.panic", &[Action::Panic]);
        let result = std::panic::catch_unwind(|| trigger("t.panic"));
        assert!(result.is_err(), "Panic action must panic");
        // The registry must still be usable after the injected panic.
        assert_eq!(trigger("t.panic"), None);
        assert_eq!(hits("t.panic"), 2);
        disarm_all();
    }

    #[test]
    fn sleep_actions_delay_then_pass() {
        let _guard = serial();
        disarm_all();
        script("t.sleep", &[Action::SleepMs(20)]);
        let start = std::time::Instant::now();
        assert_eq!(trigger("t.sleep"), None);
        assert!(start.elapsed() >= std::time::Duration::from_millis(20));
        disarm_all();
    }

    #[test]
    fn failures_render_as_io_errors_naming_the_site() {
        let io = Failure::Io(std::io::ErrorKind::TimedOut).into_io_error("s.read");
        assert_eq!(io.kind(), std::io::ErrorKind::TimedOut);
        assert!(io.to_string().contains("s.read"));
        let corrupt = Failure::Corrupt.into_io_error("s.decode");
        assert_eq!(corrupt.kind(), std::io::ErrorKind::InvalidData);
        assert!(corrupt.to_string().contains("s.decode"));
    }
}
