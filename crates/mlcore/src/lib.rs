//! Hand-rolled machine-learning primitives used by PerfXplain.
//!
//! The PerfXplain explanation-generation algorithm (Algorithm 1 in the paper)
//! is *related to* decision-tree learning but is not a decision tree: it only
//! borrows the notion of information gain for choosing the best predicate per
//! feature, and then ranks the per-feature predicates by a weighted,
//! percentile-normalised combination of precision and generality.  The two
//! baselines additionally need Relief-style feature importance
//! (RuleOfThumb) and a balanced sampler (Section 4.3 of the paper).
//!
//! This crate provides exactly those primitives, with no external ML
//! dependencies:
//!
//! * [`dataset`] — a small columnar dataset abstraction over mixed
//!   numeric/nominal attributes with missing values and binary labels.
//! * [`hash`] — a vendored FxHash-style hasher ([`FxHashMap`]) for the hot
//!   lookup maps (dictionary interning, column/row indexes); deterministic
//!   and several times cheaper per short-key lookup than std's SipHash.
//! * [`codec`] — length-prefixed little-endian binary encoding primitives
//!   ([`ByteWriter`] / [`ByteReader`]); [`ColumnStore::encode_binary`] and
//!   [`ColumnStore::decode_binary`] persist encoded column segments in this
//!   form so the snapshot store's cold start never touches serde-JSON.
//! * [`entropy`] — binary entropy, entropy of count vectors and information
//!   gain of a boolean partition.
//! * [`split`] — C4.5-style best-split search per attribute (threshold
//!   candidates for numeric attributes, equality tests for nominal ones).
//! * [`dtree`] — a reference decision-tree learner.  PerfXplain itself does
//!   not build full trees, but the tree learner is used by the ablation
//!   benchmarks ("greedy conjunction vs. plain decision-tree path") and by
//!   tests as an oracle for the split search.
//! * [`relief`] — the Relief feature-estimation algorithm
//!   (Robnik-Šikonja & Kononenko) adapted for mixed attributes and missing
//!   values, used by the RuleOfThumb baseline.
//! * [`sample`] — the balanced sampling procedure of Section 4.3.
//! * [`stats`] — means, standard deviations and the percentile-rank
//!   normalisation used by `normalizeScore` in Algorithm 1.

pub mod codec;
pub mod columnar;
pub mod dataset;
pub mod dtree;
pub mod entropy;
pub mod hash;
pub mod relief;
pub mod sample;
pub mod split;
pub mod stats;

pub use codec::{ByteReader, ByteWriter, CodecError, CodecResult};
pub use columnar::{ColumnStore, MergedStore};
pub use dataset::{AttrKind, AttrValue, Attribute, Dataset, NominalDictionary};
pub use dtree::{DecisionTree, TreeConfig};
pub use entropy::{binary_entropy, entropy_of_counts, information_gain};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use relief::{relief_weights, ReliefConfig};
pub use sample::{balanced_sample, BalanceStats};
pub use split::{
    best_split, best_split_for_attribute, best_split_for_attribute_filtered, SplitCandidate,
    TestAtom, TestConstant, TestOp,
};
pub use stats::{mean, percentile_ranks, stddev};
