//! Hand-rolled machine-learning primitives used by PerfXplain.
//!
//! The PerfXplain explanation-generation algorithm (Algorithm 1 in the paper)
//! is *related to* decision-tree learning but is not a decision tree: it only
//! borrows the notion of information gain for choosing the best predicate per
//! feature, and then ranks the per-feature predicates by a weighted,
//! percentile-normalised combination of precision and generality.  The two
//! baselines additionally need Relief-style feature importance
//! (RuleOfThumb) and a balanced sampler (Section 4.3 of the paper).
//!
//! This crate provides exactly those primitives, with no external ML
//! dependencies:
//!
//! * [`dataset`] — a small dataset abstraction over mixed numeric/nominal
//!   attributes with missing values and binary labels, with typed
//!   contiguous column snapshots ([`Dataset::column_cells`]) for
//!   attribute-major consumers.
//! * [`hash`] — a vendored FxHash-style hasher ([`FxHashMap`]) for the hot
//!   lookup maps (dictionary interning, column/row indexes, the nominal
//!   candidate dedup of the split search); deterministic and several times
//!   cheaper per short-key lookup than std's SipHash.
//! * [`codec`] — length-prefixed little-endian binary encoding primitives
//!   ([`ByteWriter`] / [`ByteReader`]) plus the bit-level compression
//!   layer: LSB-first bit-packing ([`ByteWriter::put_packed`]), presence
//!   bitmaps and the frame-of-reference / delta / raw numeric stream codec
//!   ([`codec::encode_f64_stream`]).  [`ColumnStore::encode_binary`] and
//!   [`ColumnStore::decode_binary`] persist compressed column segments in
//!   this form so the snapshot store's cold start never touches serde-JSON.
//! * [`entropy`] — binary entropy, entropy of count vectors and information
//!   gain of a boolean partition.
//! * [`split`] — C4.5-style best-split search per attribute (threshold
//!   candidates for numeric attributes, equality tests for nominal ones).
//! * [`dtree`] — a reference decision-tree learner.  PerfXplain itself does
//!   not build full trees, but the tree learner is used by the ablation
//!   benchmarks ("greedy conjunction vs. plain decision-tree path") and by
//!   tests as an oracle for the split search.
//! * [`relief`] — the Relief feature-estimation algorithm
//!   (Robnik-Šikonja & Kononenko) adapted for mixed attributes and missing
//!   values, used by the RuleOfThumb baseline.
//! * [`sample`] — the balanced sampling procedure of Section 4.3.
//! * [`shard`] — the scoped-thread fan-out primitive ([`shard::map_chunks`])
//!   shared by every parallel path of the workspace (`perfxplain-core`
//!   re-exports it as `perfxplain_core::shard`).
//! * [`pool`] — the bounded, long-lived [`WorkerPool`] behind the network
//!   server and the batch APIs: a fixed set of worker threads over a shared
//!   job queue, with a caller-helping scoped [`WorkerPool::map_chunks`]
//!   counterpart of the one-shot `shard` fan-out and a process-wide
//!   [`pool::shared`] instance sized to the hardware.
//! * [`stats`] — means, standard deviations and the percentile-rank
//!   normalisation used by `normalizeScore` in Algorithm 1.
//! * [`failpoints`] — deterministic fault injection behind the
//!   off-by-default `failpoints` cargo feature: named sites in the
//!   persistence, pool and server paths ask [`failpoints::trigger`]
//!   whether to fail; disabled, the call inlines to `None` and costs
//!   nothing.
//! * [`oracle`] (tests only) — the retained naive split finder, tree fit
//!   and Relief, the equivalence oracles for everything below.
//!
//! # Performance
//!
//! The trainer is **O(n log n) per (node, attribute)** end to end:
//!
//! * **Split search is a single-sort sweep** ([`split`]).  Per attribute the
//!   present values are sorted once; every `<=`/`>` mid-point threshold and
//!   every `=` candidate is then scored in O(1) from running prefix
//!   [`entropy::CellCounts`] (`<=` partitions are prefixes of the sorted
//!   order, `>` their complements, `=` the tolerance band around one
//!   value).  The naive evaluator rescanned all n instances for each of the
//!   ~3·distinct candidates — O(d·n), quadratic on continuous features such
//!   as runtimes.  The sweep visits candidates in the identical order under
//!   the identical comparison, so the winning [`SplitCandidate`] is
//!   bit-identical (proptested against [`oracle`]); the applicability
//!   filter of PerfXplain's greedy loop is threaded through the sweep, so
//!   the filtered search is exactly as fast as the unfiltered one.
//!   Nominal candidates dedup through an [`FxHashMap`] (first-seen order
//!   preserved) instead of a linear scan, and equality candidates that
//!   duplicate an adjacent mid-point's partition are suppressed outright.
//! * **[`best_split`] fans out across attributes** over
//!   [`shard::map_chunks`] threads on nodes of at least
//!   [`PARALLEL_SPLIT_MIN_CELLS`] cells, folding the per-attribute winners
//!   in attribute order — the result is independent of the fan-out.
//! * **Relief is columnar and parallel** ([`relief`]).  Distance scans run
//!   attribute-major over typed contiguous columns
//!   ([`dataset::ColumnCells`]) with the kind and normalisation span
//!   resolved once per column — no per-cell enum dispatch — and the `m`
//!   sampled instances fan out over scoped threads above
//!   [`RELIEF_PARALLEL_MIN_CELLS`] cells, with weight updates applied in
//!   sample order so the weights are bit-identical to the row-at-a-time
//!   scan (also proptested against [`oracle`]).
//! * **NaN is missing.**  A NaN feature cell used to panic the split
//!   search's sort (and with it the whole query service); NaN now behaves
//!   exactly like [`AttrValue::Missing`] in candidate generation, the
//!   sweep, [`Dataset::numeric_range`] and the Relief `diff`.
//! * **Column segments compress on disk and share in memory.**  The v2
//!   segment format written by [`ColumnStore::encode_binary`] lays each
//!   column out as
//!
//!   ```text
//!   ┌──────────────────┬──────────┬───────────────┬─────────────────────┐
//!   │ presence bitmap  │ kind tag │ [kind bitmap] │ packed sub-streams  │
//!   │ ⌈rows/8⌉ bytes   │ 1 byte   │ (mixed only)  │ nominal ids + nums  │
//!   └──────────────────┴──────────┴───────────────┴─────────────────────┘
//!   ```
//!
//!   Dictionary ids bit-pack at ⌈log₂(dict len)⌉ bits (a constant column
//!   costs zero bits per cell); numerics whose values are exactly
//!   representable integers take frame-of-reference or delta coding at the
//!   offset width, whichever is smaller; everything else — NaN, ±inf,
//!   −0.0, fractions, full-range magnitudes — falls back to raw 8-byte
//!   bit patterns, so decoding is bit-exact by construction and the
//!   fallback never costs more than the old fixed-width form.  Missing
//!   cells cost one presence bit instead of a tag byte.  Decoded columns
//!   land in [`columnar::ColumnData`] (`Arc<[AttrValue]>`) buffers, which
//!   `ColumnStore::merge_segments` adopts without copying when a single
//!   segment is merged — the snapshot open path hands the decoded buffers
//!   straight to the query views.

pub mod codec;
pub mod columnar;
pub mod dataset;
pub mod dtree;
pub mod entropy;
pub mod failpoints;
pub mod hash;
#[cfg(any(test, feature = "oracle"))]
pub mod oracle;
pub mod pool;
pub mod relief;
pub mod sample;
pub mod shard;
pub mod split;
pub mod stats;

pub use codec::{
    bits_needed, decode_f64_stream, encode_f64_stream, ByteReader, ByteWriter, CodecError,
    CodecResult,
};
pub use columnar::{ColumnData, ColumnStore, MergedStore};
pub use dataset::{
    AttrKind, AttrValue, Attribute, ColumnCells, Dataset, NominalDictionary, NO_NOMINAL,
};
pub use dtree::{DecisionTree, TreeConfig};
pub use entropy::{binary_entropy, entropy_of_counts, information_gain};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use pool::WorkerPool;
pub use relief::{relief_weights, ReliefConfig, RELIEF_PARALLEL_MIN_CELLS};
pub use sample::{balanced_sample, BalanceStats};
pub use split::{
    best_split, best_split_for_attribute, best_split_for_attribute_filtered, SplitCandidate,
    TestAtom, TestConstant, TestOp, PARALLEL_SPLIT_MIN_CELLS,
};
pub use stats::{mean, percentile_ranks, stddev};
