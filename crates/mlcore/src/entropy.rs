//! Entropy and information gain.
//!
//! Algorithm 1 of the paper selects, for every feature, the predicate with
//! the highest *information gain*, defined as `H(P) - H(P | φ)` where `P` is
//! the current set of training pairs and `φ` is the candidate predicate.  The
//! conditional entropy is the size-weighted average of the entropies of the
//! two partitions that `φ` induces (the pairs that satisfy it and the pairs
//! that do not), exactly as in C4.5.

/// Binary entropy of a class distribution with positive fraction `p`
/// (in bits).  `H(0) = H(1) = 0` by convention.
pub fn binary_entropy(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        panic!("binary_entropy: p = {p} is outside [0, 1]");
    }
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Entropy (in bits) of a set with `positive` positive and `negative`
/// negative members.  Empty sets have zero entropy.
pub fn entropy_of_counts(positive: usize, negative: usize) -> f64 {
    let n = positive + negative;
    if n == 0 {
        return 0.0;
    }
    binary_entropy(positive as f64 / n as f64)
}

/// Class counts of a partition cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCounts {
    /// Number of positive (label = true) instances in the cell.
    pub positive: usize,
    /// Number of negative (label = false) instances in the cell.
    pub negative: usize,
}

impl CellCounts {
    /// Total number of instances in the cell.
    pub fn total(&self) -> usize {
        self.positive + self.negative
    }

    /// Entropy of the cell.
    pub fn entropy(&self) -> f64 {
        entropy_of_counts(self.positive, self.negative)
    }

    /// Counts one instance with the given label.
    pub fn record(&mut self, label: bool) {
        if label {
            self.positive += 1;
        } else {
            self.negative += 1;
        }
    }

    /// Element-wise sum — running prefix counts in the split sweep.
    pub fn plus(self, other: CellCounts) -> CellCounts {
        CellCounts {
            positive: self.positive + other.positive,
            negative: self.negative + other.negative,
        }
    }

    /// Element-wise difference; `other` must be a sub-cell of `self` (the
    /// sweep only ever subtracts a prefix from its own total).
    pub fn minus(self, other: CellCounts) -> CellCounts {
        CellCounts {
            positive: self.positive - other.positive,
            negative: self.negative - other.negative,
        }
    }
}

/// Information gain of splitting a set into the two cells `inside` (instances
/// satisfying the predicate) and `outside` (instances not satisfying it).
///
/// Returns 0.0 when the overall set is empty.
pub fn information_gain(inside: CellCounts, outside: CellCounts) -> f64 {
    let total = inside.total() + outside.total();
    if total == 0 {
        return 0.0;
    }
    let parent = entropy_of_counts(
        inside.positive + outside.positive,
        inside.negative + outside.negative,
    );
    let weighted = (inside.total() as f64 / total as f64) * inside.entropy()
        + (outside.total() as f64 / total as f64) * outside.entropy();
    // Clamp tiny negative values caused by floating-point rounding.
    (parent - weighted).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_extremes_are_zero() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
    }

    #[test]
    fn entropy_is_maximal_at_half() {
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.3) < 1.0);
        assert!(binary_entropy(0.3) > 0.0);
    }

    #[test]
    fn entropy_is_symmetric() {
        for p in [0.1, 0.25, 0.4] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn entropy_rejects_out_of_range() {
        binary_entropy(1.5);
    }

    #[test]
    fn paper_example_figure2() {
        // Figure 2 of the paper: 10 examples, 6 positive => H ~= 0.97.
        let h = entropy_of_counts(6, 4);
        assert!((h - 0.9709505944546686).abs() < 1e-9);

        // Predicate A separates perfectly except one mixed side: grey side
        // holds all 6 positives and 0 negatives, white side 0/4 => gain = H.
        let gain_perfect = information_gain(
            CellCounts {
                positive: 6,
                negative: 0,
            },
            CellCounts {
                positive: 0,
                negative: 4,
            },
        );
        assert!((gain_perfect - h).abs() < 1e-9);

        // Predicate B splits without changing the class mixture => gain 0.
        let gain_useless = information_gain(
            CellCounts {
                positive: 3,
                negative: 2,
            },
            CellCounts {
                positive: 3,
                negative: 2,
            },
        );
        assert!(gain_useless.abs() < 1e-9);
    }

    #[test]
    fn gain_of_empty_set_is_zero() {
        assert_eq!(
            information_gain(CellCounts::default(), CellCounts::default()),
            0.0
        );
    }

    #[test]
    fn gain_is_never_negative() {
        let combos = [
            (
                CellCounts {
                    positive: 1,
                    negative: 5,
                },
                CellCounts {
                    positive: 5,
                    negative: 1,
                },
            ),
            (
                CellCounts {
                    positive: 2,
                    negative: 2,
                },
                CellCounts {
                    positive: 2,
                    negative: 2,
                },
            ),
            (
                CellCounts {
                    positive: 0,
                    negative: 7,
                },
                CellCounts {
                    positive: 7,
                    negative: 0,
                },
            ),
        ];
        for (a, b) in combos {
            assert!(information_gain(a, b) >= 0.0);
        }
    }
}
