//! A small, self-contained dataset abstraction.
//!
//! PerfXplain training examples are pairs of job (or task) executions encoded
//! as a fixed-width vector of mixed numeric/nominal features with missing
//! values, plus a binary label: did the pair perform *as observed* (positive)
//! or *as expected* (negative).  This module provides that representation in
//! a form the split search, the decision-tree learner and Relief can share.

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an attribute (column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrKind {
    /// Real-valued attribute; ordered comparisons are meaningful.
    Numeric,
    /// Categorical attribute; only equality is meaningful.  Values are
    /// interned into a per-attribute [`NominalDictionary`].
    Nominal,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrKind::Numeric => write!(f, "numeric"),
            AttrKind::Nominal => write!(f, "nominal"),
        }
    }
}

/// A single cell value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// The value is unknown / not applicable for this instance.
    Missing,
    /// A numeric value.
    Num(f64),
    /// An interned nominal value (index into the attribute's dictionary).
    Nom(u32),
}

impl AttrValue {
    /// Returns `true` if the value is [`AttrValue::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, AttrValue::Missing)
    }

    /// Returns the numeric payload, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the nominal payload, if any.
    pub fn as_nom(&self) -> Option<u32> {
        match self {
            AttrValue::Nom(v) => Some(*v),
            _ => None,
        }
    }
}

/// Per-attribute dictionary interning nominal string values.  Lookups go
/// through an [`FxHashMap`]: interning is on the log-encoding hot path.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NominalDictionary {
    values: Vec<String>,
    index: FxHashMap<String, u32>,
}

impl NominalDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its stable index.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.to_string());
        self.index.insert(value.to_string(), id);
        id
    }

    /// Looks up the index of an already-interned value.
    pub fn get(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Resolves an index back to its string.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.values.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }
}

/// Schema entry for one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (e.g. `inputsize_compare`).
    pub name: String,
    /// Attribute kind.
    pub kind: AttrKind,
    /// Dictionary for nominal attributes; empty for numeric ones.
    pub dictionary: NominalDictionary,
}

impl Attribute {
    /// Creates a numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Numeric,
            dictionary: NominalDictionary::new(),
        }
    }

    /// Creates a nominal attribute with an empty dictionary.
    pub fn nominal(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Nominal,
            dictionary: NominalDictionary::new(),
        }
    }
}

/// A labeled dataset with a fixed schema.
///
/// Rows are instances; `labels[i]` is `true` for positive instances (in
/// PerfXplain: pairs that performed *as observed*).  Attribute lookup by
/// name goes through a precomputed index.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    attributes: Vec<Attribute>,
    rows: Vec<Vec<AttrValue>>,
    labels: Vec<bool>,
    name_index: FxHashMap<String, usize>,
}

impl Dataset {
    /// Creates an empty dataset with the given schema.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        let name_index = attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        Dataset {
            attributes,
            rows: Vec::new(),
            labels: Vec::new(),
            name_index,
        }
    }

    /// The schema.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Mutable access to an attribute (used to intern nominal values while
    /// loading).
    pub fn attribute_mut(&mut self, index: usize) -> &mut Attribute {
        &mut self.attributes[index]
    }

    /// Index of the attribute named `name`, if present (O(1)).
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.name_index.get(name).copied()
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no instances.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends an instance.
    ///
    /// # Panics
    /// Panics if the row width does not match the schema.
    pub fn push(&mut self, row: Vec<AttrValue>, label: bool) {
        assert_eq!(
            row.len(),
            self.attributes.len(),
            "row width {} does not match schema width {}",
            row.len(),
            self.attributes.len()
        );
        self.rows.push(row);
        self.labels.push(label);
    }

    /// The `i`-th instance.
    pub fn row(&self, i: usize) -> &[AttrValue] {
        &self.rows[i]
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Value of attribute `attr` for instance `i`.
    pub fn value(&self, i: usize, attr: usize) -> AttrValue {
        self.rows[i][attr]
    }

    /// Number of positive instances.
    pub fn num_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Fraction of positive instances; 0.0 for an empty dataset.
    pub fn positive_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.num_positive() as f64 / self.labels.len() as f64
        }
    }

    /// Builds a new dataset containing only the instances whose indices are
    /// listed in `indices` (schema and dictionaries are shared by clone).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.attributes.clone());
        for &i in indices {
            out.push(self.rows[i].clone(), self.labels[i]);
        }
        out
    }

    /// Builds a new dataset keeping only the attributes whose indices are in
    /// `attr_indices` (in that order).
    pub fn project(&self, attr_indices: &[usize]) -> Dataset {
        let attributes = attr_indices
            .iter()
            .map(|&a| self.attributes[a].clone())
            .collect();
        let mut out = Dataset::new(attributes);
        for (row, &label) in self.rows.iter().zip(self.labels.iter()) {
            let projected = attr_indices.iter().map(|&a| row[a]).collect();
            out.push(projected, label);
        }
        out
    }

    /// Iterates over `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[AttrValue], bool)> {
        self.rows
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }

    /// Per-attribute observed numeric range `(min, max)`, ignoring missing
    /// values and NaN (which the trainers treat as missing — a single NaN
    /// cell must not poison the range every Relief `diff` normalises by).
    /// Returns `None` when no numeric value was observed.
    pub fn numeric_range(&self, attr: usize) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for row in &self.rows {
            if let AttrValue::Num(v) = row[attr] {
                if v.is_nan() {
                    continue;
                }
                range = Some(match range {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        range
    }

    /// Materialises attribute `attr` as a contiguous, typed column — the
    /// attribute-major form the columnar Relief scans without per-cell enum
    /// dispatch.  Rows are stored row-major, so this is one O(n) gather per
    /// attribute, paid once per training run.
    pub fn column_cells(&self, attr: usize) -> ColumnCells {
        let mut has_num = false;
        let mut has_nom = false;
        for row in &self.rows {
            match row[attr] {
                // NaN is treated as missing throughout the trainers.
                AttrValue::Num(v) => has_num |= !v.is_nan(),
                // An interned id colliding with the missing sentinel would
                // corrupt the nominal encoding; fall back to raw cells.
                AttrValue::Nom(id) => {
                    if id == NO_NOMINAL {
                        return ColumnCells::Mixed(self.rows.iter().map(|r| r[attr]).collect());
                    }
                    has_nom = true;
                }
                AttrValue::Missing => {}
            }
        }
        match (has_num, has_nom) {
            (true, true) => ColumnCells::Mixed(self.rows.iter().map(|r| r[attr]).collect()),
            (false, true) => ColumnCells::Nominal(
                self.rows
                    .iter()
                    .map(|r| r[attr].as_nom().unwrap_or(NO_NOMINAL))
                    .collect(),
            ),
            // A column with no nominal cells (numeric, all-missing or
            // empty) packs densest as f64 with NaN for missing.
            _ => ColumnCells::Numeric(
                self.rows
                    .iter()
                    .map(|r| r[attr].as_num().unwrap_or(f64::NAN))
                    .collect(),
            ),
        }
    }
}

/// Sentinel id marking a missing cell in [`ColumnCells::Nominal`].
pub const NO_NOMINAL: u32 = u32::MAX;

/// A contiguous, typed snapshot of one attribute's cells
/// ([`Dataset::column_cells`]).
///
/// Homogeneous columns — the overwhelmingly common case — come back as flat
/// `f64`/`u32` vectors so per-cell consumers (the Relief distance kernels)
/// can run tight, dispatch-free loops; a column mixing numeric and nominal
/// cells (schema drift, e.g. a catalog-numeric feature that some record
/// carries as a string) falls back to the raw cells.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnCells {
    /// Every non-missing cell is numeric; missing (and NaN, which the
    /// trainers treat as missing) is encoded as NaN.
    Numeric(Vec<f64>),
    /// Every non-missing cell is nominal; missing is encoded as
    /// [`NO_NOMINAL`].
    Nominal(Vec<u32>),
    /// Mixed numeric/nominal cells, kept as-is.
    Mixed(Vec<AttrValue>),
}

impl Serialize for Dataset {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("attributes".to_string(), self.attributes.serialize()),
            ("rows".to_string(), self.rows.serialize()),
            ("labels".to_string(), self.labels.serialize()),
        ])
    }
}

impl Deserialize for Dataset {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "Dataset"))?;
        let attributes: Vec<Attribute> =
            Deserialize::deserialize(serde::Content::field(entries, "attributes"))?;
        let mut dataset = Dataset::new(attributes);
        dataset.rows = Deserialize::deserialize(serde::Content::field(entries, "rows"))?;
        dataset.labels = Deserialize::deserialize(serde::Content::field(entries, "labels"))?;
        Ok(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(vec![Attribute::numeric("x"), Attribute::nominal("color")]);
        let red = ds.attribute_mut(1).dictionary.intern("red");
        let blue = ds.attribute_mut(1).dictionary.intern("blue");
        ds.push(vec![AttrValue::Num(1.0), AttrValue::Nom(red)], true);
        ds.push(vec![AttrValue::Num(2.0), AttrValue::Nom(blue)], false);
        ds.push(vec![AttrValue::Missing, AttrValue::Nom(red)], true);
        ds
    }

    #[test]
    fn dictionary_interns_stably() {
        let mut d = NominalDictionary::new();
        let a = d.intern("a");
        let b = d.intern("b");
        assert_eq!(d.intern("a"), a);
        assert_ne!(a, b);
        assert_eq!(d.resolve(a), Some("a"));
        assert_eq!(d.get("b"), Some(b));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn dataset_basic_accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.num_attributes(), 2);
        assert_eq!(ds.num_positive(), 2);
        assert!((ds.positive_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ds.attribute_index("color"), Some(1));
        assert_eq!(ds.attribute_index("nope"), None);
        assert_eq!(ds.value(0, 0), AttrValue::Num(1.0));
        assert!(ds.value(2, 0).is_missing());
    }

    #[test]
    fn subset_and_project() {
        let ds = toy();
        let sub = ds.subset(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.num_positive(), 2);

        let proj = ds.project(&[1]);
        assert_eq!(proj.num_attributes(), 1);
        assert_eq!(proj.attributes()[0].name, "color");
        assert_eq!(proj.len(), 3);
    }

    #[test]
    fn numeric_range_ignores_missing() {
        let ds = toy();
        assert_eq!(ds.numeric_range(0), Some((1.0, 2.0)));
        assert_eq!(ds.numeric_range(1), None);
    }

    #[test]
    fn numeric_range_skips_nan() {
        let mut ds = Dataset::new(vec![Attribute::numeric("x")]);
        ds.push(vec![AttrValue::Num(f64::NAN)], true);
        ds.push(vec![AttrValue::Num(3.0)], false);
        ds.push(vec![AttrValue::Num(7.0)], true);
        assert_eq!(ds.numeric_range(0), Some((3.0, 7.0)));

        let mut all_nan = Dataset::new(vec![Attribute::numeric("x")]);
        all_nan.push(vec![AttrValue::Num(f64::NAN)], true);
        assert_eq!(all_nan.numeric_range(0), None);
    }

    #[test]
    fn column_cells_pick_typed_representations() {
        let ds = toy();
        // Numeric column: missing encoded as NaN.
        match ds.column_cells(0) {
            ColumnCells::Numeric(cells) => {
                assert_eq!(cells.len(), 3);
                assert_eq!(cells[0], 1.0);
                assert!(cells[2].is_nan());
            }
            other => panic!("expected a numeric column, got {other:?}"),
        }
        // Nominal column: ids verbatim.
        match ds.column_cells(1) {
            ColumnCells::Nominal(cells) => assert_eq!(cells, vec![0, 1, 0]),
            other => panic!("expected a nominal column, got {other:?}"),
        }
        // A NaN cell does not force a numeric column to Mixed.
        let mut with_nan = Dataset::new(vec![Attribute::numeric("x")]);
        with_nan.push(vec![AttrValue::Num(f64::NAN)], true);
        with_nan.push(vec![AttrValue::Num(2.0)], false);
        assert!(matches!(with_nan.column_cells(0), ColumnCells::Numeric(_)));
        // Mixed numeric/nominal cells fall back to raw cells.
        let mut mixed = Dataset::new(vec![Attribute::nominal("x")]);
        let id = mixed.attribute_mut(0).dictionary.intern("a");
        mixed.push(vec![AttrValue::Nom(id)], true);
        mixed.push(vec![AttrValue::Num(2.0)], false);
        assert!(matches!(mixed.column_cells(0), ColumnCells::Mixed(_)));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn push_rejects_wrong_width() {
        let mut ds = toy();
        ds.push(vec![AttrValue::Num(1.0)], true);
    }

    #[test]
    fn positive_fraction_of_empty_is_zero() {
        let ds = Dataset::new(vec![Attribute::numeric("x")]);
        assert_eq!(ds.positive_fraction(), 0.0);
        assert!(ds.is_empty());
    }
}
