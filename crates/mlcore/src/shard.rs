//! The scoped-thread fan-out primitive behind every sharded path.
//!
//! Sharded encoding, parallel pair enumeration, parallel log ingestion, the
//! `hadoop-logs` bundle collectors, the per-attribute split search
//! ([`best_split`](crate::split::best_split)) and the Relief sampled-instance
//! scan ([`relief_weights`](crate::relief::relief_weights)) all share one
//! shape: split a slice into contiguous chunks, run the same function over
//! each chunk on its own `std::thread::scope` thread, and collect the
//! per-chunk results in chunk order.  [`map_chunks`] is that shape, written
//! once.  It lives in `mlcore` — the lowest crate of the workspace — so both
//! the ML trainer and the `perfxplain-core` pipeline (which re-exports this
//! module as `perfxplain_core::shard`) can fan out through it.

/// Hard ceiling on concurrent worker threads, regardless of the requested
/// chunk count.  Chunk counts reach this function from user input (the CLI's
/// `--shards`) and from public APIs, and one OS thread per chunk with no
/// bound would abort the process on thread-spawn failure under resource
/// exhaustion.  256 is far above any real core count while keeping the
/// worst case harmless.
pub const MAX_FANOUT: usize = 256;

/// Runs `f` over up to `chunks` contiguous chunks of `items` (clamped to
/// [`MAX_FANOUT`]), one scoped thread per chunk, and returns the per-chunk
/// results in chunk order.  With `chunks <= 1` (or fewer than two items)
/// `f` runs inline over the whole slice — callers ask for sharding, this
/// function decides nothing beyond the safety clamp.
pub fn map_chunks<T, R>(items: &[T], chunks: usize, f: impl Fn(&[T]) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    if chunks <= 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let chunk_size = items.len().div_ceil(chunks.min(MAX_FANOUT)).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("sharded worker panicked"))
            .collect()
    })
}

/// The machine's available hardware parallelism (1 when unknown).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The work-gated form of [`map_chunks`]: fans `f` over one chunk per
/// hardware thread when the estimated `work` (a cell count) reaches
/// `min_work` and the machine has more than one core, and runs `f` inline
/// over the whole slice otherwise — below the threshold the job finishes in
/// well under the ~100 µs a `std::thread::scope` setup costs.  `f` returns
/// the per-chunk results as a `Vec` (so it can keep chunk-local scratch
/// state); the concatenation is in item order either way, keeping gated
/// callers bit-identical to their serial form.
pub fn map_chunks_gated<T, R>(
    items: &[T],
    work: usize,
    min_work: usize,
    f: impl Fn(&[T]) -> Vec<R> + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = hardware_threads();
    if threads > 1 && work >= min_work {
        map_chunks(items, threads, &f)
            .into_iter()
            .flatten()
            .collect()
    } else {
        f(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_chunk_order() {
        let items: Vec<usize> = (0..100).collect();
        for chunks in [1, 2, 3, 7, 100, 200] {
            let sums = map_chunks(&items, chunks, |chunk| chunk.iter().sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
            assert!(sums.len() <= chunks.max(1));
            // Concatenating per-chunk echoes reproduces the slice in order.
            let echoed: Vec<usize> = map_chunks(&items, chunks, <[usize]>::to_vec).concat();
            assert_eq!(echoed, items);
        }
    }

    #[test]
    fn degenerate_inputs_run_inline() {
        let empty: Vec<usize> = Vec::new();
        assert_eq!(map_chunks(&empty, 8, <[usize]>::len), vec![0]);
        assert_eq!(map_chunks(&[42usize], 8, <[usize]>::len), vec![1]);
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn gated_fanout_is_order_preserving_on_both_sides_of_the_gate() {
        let items: Vec<usize> = (0..500).collect();
        let double = |chunk: &[usize]| chunk.iter().map(|&x| x * 2).collect::<Vec<_>>();
        let expected: Vec<usize> = items.iter().map(|&x| x * 2).collect();
        // Below the threshold: inline; above it: fanned out.  Same result.
        assert_eq!(map_chunks_gated(&items, 0, usize::MAX, double), expected);
        assert_eq!(map_chunks_gated(&items, usize::MAX, 1, double), expected);
    }

    #[test]
    fn absurd_chunk_counts_are_clamped() {
        let items: Vec<usize> = (0..10_000).collect();
        let results = map_chunks(&items, usize::MAX, <[usize]>::to_vec);
        assert!(results.len() <= MAX_FANOUT);
        assert_eq!(results.concat(), items);
    }
}
