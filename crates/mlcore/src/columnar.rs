//! Column-major storage for encoded feature columns.
//!
//! The PerfXplain hot path classifies *pairs* of rows, so the natural data
//! layout is one contiguous column per raw feature: each cell is an
//! [`AttrValue`] (numeric, interned nominal, or missing) and each nominal
//! column carries the interning dictionary of its
//! [`Attribute`](crate::dataset::Attribute).  A [`ColumnStore`] is built
//! once per log and then read millions of times without further allocation;
//! the dataset the split search consumes is encoded straight from these
//! columns.
//!
//! # Segments
//!
//! Large logs are encoded as **segments**: each shard of the row space is
//! encoded independently into its own `ColumnStore` — same schema, but a
//! *local* dictionary per attribute — and [`ColumnStore::merge_segments`]
//! stitches the shards back into one global store by remapping every local
//! dictionary id onto a merged global dictionary.  Because each local
//! dictionary interns values in first-occurrence order and segments are
//! merged in row order, the merged store is **bit-identical** to encoding
//! all rows in one pass: same ids, same cells, same dictionary order.

use crate::codec::{
    bits_needed, decode_f64_stream, encode_f64_stream, ByteReader, ByteWriter, CodecError,
    CodecResult,
};
use crate::dataset::{AttrKind, AttrValue, Attribute};
use crate::hash::FxHashMap;
use std::ops::Deref;
use std::sync::Arc;

/// Kind tags describing the present cells of one encoded column.
const KINDS_NUM: u8 = 0;
const KINDS_NOM: u8 = 1;
const KINDS_MIXED: u8 = 2;

/// One immutable, reference-counted column of cells.
///
/// Cloning a `ColumnData` — and therefore a [`ColumnStore`] — shares the
/// underlying buffer instead of copying it.  This is what lets the snapshot
/// open path hand freshly decoded columns to a view without a memcpy: the
/// decoder builds each column once, and every later consumer adopts the
/// same `Arc`-backed buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnData(Arc<[AttrValue]>);

impl ColumnData {
    /// The cells, as a slice.
    pub fn as_slice(&self) -> &[AttrValue] {
        &self.0
    }
}

impl Deref for ColumnData {
    type Target = [AttrValue];

    fn deref(&self) -> &[AttrValue] {
        &self.0
    }
}

impl From<Vec<AttrValue>> for ColumnData {
    fn from(cells: Vec<AttrValue>) -> Self {
        ColumnData(cells.into())
    }
}

/// An immutable column-major table of encoded feature values.
#[derive(Debug, Clone, Default)]
pub struct ColumnStore {
    attributes: Vec<Attribute>,
    columns: Vec<ColumnData>,
    index: FxHashMap<String, usize>,
    rows: usize,
}

impl PartialEq for ColumnStore {
    fn eq(&self, other: &Self) -> bool {
        // The name index and row count are derived from the columns.
        self.attributes == other.attributes && self.columns == other.columns
    }
}

/// The result of merging per-shard segment stores: the global store plus the
/// per-segment, per-column dictionary remap tables
/// (`remaps[segment][column][local_id]` = global id) so callers can remap
/// any side data they keyed by local ids.
#[derive(Debug, Clone)]
pub struct MergedStore {
    /// The merged global store.
    pub store: ColumnStore,
    /// `remaps[segment][column][local_id]` = global dictionary id.
    pub remaps: Vec<Vec<Vec<u32>>>,
}

/// The result of splicing a tail segment onto a base store: the combined
/// store plus the tail's per-column dictionary remap tables
/// (`remaps[column][local_id]` = global id) so callers can remap side data
/// keyed by the tail's local ids.
#[derive(Debug, Clone)]
pub struct SplicedStore {
    /// The combined store (base rows first, then the remapped tail rows).
    pub store: ColumnStore,
    /// `remaps[column][local_id]` = global dictionary id.
    pub remaps: Vec<Vec<u32>>,
}

impl ColumnStore {
    /// Builds a store from per-attribute columns.
    ///
    /// # Panics
    /// Panics when the number of columns does not match the number of
    /// attributes or when the columns are ragged.
    pub fn from_columns(attributes: Vec<Attribute>, columns: Vec<Vec<AttrValue>>) -> Self {
        ColumnStore::from_column_data(attributes, columns.into_iter().map(Into::into).collect())
    }

    /// Builds a store from already-shared columns, adopting the `Arc`
    /// buffers without copying any cells.
    ///
    /// # Panics
    /// Panics when the number of columns does not match the number of
    /// attributes or when the columns are ragged.
    pub fn from_column_data(attributes: Vec<Attribute>, columns: Vec<ColumnData>) -> Self {
        assert_eq!(
            attributes.len(),
            columns.len(),
            "attribute/column count mismatch"
        );
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (attribute, column) in attributes.iter().zip(&columns) {
            assert_eq!(
                column.len(),
                rows,
                "ragged column {} ({} rows, expected {rows})",
                attribute.name,
                column.len()
            );
        }
        let index = attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        ColumnStore {
            attributes,
            columns,
            index,
            rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.attributes.len()
    }

    /// The schema.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute of column `col`.
    pub fn attribute(&self, col: usize) -> &Attribute {
        &self.attributes[col]
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The cells of column `col`.
    pub fn column(&self, col: usize) -> &[AttrValue] {
        &self.columns[col]
    }

    /// The shared buffer behind column `col` (an `Arc` clone, no cell copy).
    pub fn column_data(&self, col: usize) -> ColumnData {
        self.columns[col].clone()
    }

    /// The cell at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> AttrValue {
        self.columns[col][row]
    }

    /// Merges independently encoded segment stores into one global store.
    ///
    /// Every segment must share the schema of the first (same attribute
    /// names and kinds, in the same order); dictionaries are local to each
    /// segment.  The merged store concatenates the segments' rows in order
    /// and rebuilds one global dictionary per attribute by interning each
    /// segment's dictionary values in segment order — which is exactly
    /// first-occurrence order over the concatenated rows, so the result is
    /// bit-identical to a single-pass encoding.
    ///
    /// # Panics
    /// Panics when `segments` is empty or the schemas disagree.
    pub fn merge_segments(mut segments: Vec<ColumnStore>) -> MergedStore {
        assert!(!segments.is_empty(), "merge_segments needs >= 1 segment");

        // A single segment already *is* the merged store: adopt its
        // `Arc`-shared columns and dictionaries outright (the remap is the
        // identity) instead of copying every cell.  This is the zero-copy
        // fast path of the snapshot open: a snapshot persisted as one shard
        // per kind hands its decoded buffers straight to the view.
        if segments.len() == 1 {
            let store = segments.pop().expect("length checked above");
            let remaps = vec![store
                .attributes
                .iter()
                .map(|a| (0..a.dictionary.len() as u32).collect())
                .collect()];
            return MergedStore { store, remaps };
        }

        let num_columns = segments[0].num_columns();
        for segment in &segments[1..] {
            assert_eq!(
                segment.num_columns(),
                num_columns,
                "segment schema width mismatch"
            );
            for (first, this) in segments[0].attributes.iter().zip(&segment.attributes) {
                assert_eq!(first.name, this.name, "segment attribute name mismatch");
                assert_eq!(
                    first.kind, this.kind,
                    "segment attribute kind mismatch on {}",
                    first.name
                );
            }
        }

        // Global attributes: the shared schema with fresh dictionaries.
        // Note that even numeric attributes can carry dictionary entries
        // (mixed-type columns intern their non-numeric cells), so every
        // attribute's dictionary is merged, not just the nominal ones.
        let mut attributes: Vec<Attribute> = segments[0]
            .attributes
            .iter()
            .map(|a| Attribute {
                name: a.name.clone(),
                kind: a.kind,
                dictionary: Default::default(),
            })
            .collect();
        let mut remaps: Vec<Vec<Vec<u32>>> = Vec::with_capacity(segments.len());
        for segment in &segments {
            let mut segment_remap = Vec::with_capacity(num_columns);
            for (col, attribute) in segment.attributes.iter().enumerate() {
                let global = &mut attributes[col].dictionary;
                let remap: Vec<u32> = attribute
                    .dictionary
                    .iter()
                    .map(|(_, value)| global.intern(value))
                    .collect();
                segment_remap.push(remap);
            }
            remaps.push(segment_remap);
        }

        // Concatenate cells, consuming segments one at a time so each
        // segment's buffers are freed as soon as its rows are copied: peak
        // memory is the merged columns plus one segment, not 2× the total.
        let rows: usize = segments.iter().map(|s| s.rows).sum();
        let mut columns: Vec<Vec<AttrValue>> =
            (0..num_columns).map(|_| Vec::with_capacity(rows)).collect();
        for (segment, segment_remap) in segments.into_iter().zip(&remaps) {
            for (col, column) in segment.columns.iter().enumerate() {
                let remap = &segment_remap[col];
                columns[col].extend(column.iter().map(|cell| match cell {
                    AttrValue::Nom(id) => AttrValue::Nom(remap[*id as usize]),
                    other => *other,
                }));
            }
        }

        MergedStore {
            store: ColumnStore::from_columns(attributes, columns),
            remaps,
        }
    }

    /// Splices a freshly encoded tail segment onto this store's dictionary
    /// space: the result carries this store's dictionaries **extended in
    /// place** with the tail's values (first-occurrence order preserved, so
    /// existing ids never move) and the tail's cells remapped onto those
    /// extended dictionaries.  This is the delta-maintenance primitive: the
    /// base store's columns and ids stay valid untouched, and only the
    /// O(tail) cells plus the O(new values) dictionary entries are produced.
    ///
    /// The spliced store's rows are this store's rows followed by the
    /// tail's rows; because the tail's local dictionaries intern in
    /// first-occurrence order and are appended after every base value, the
    /// result is bit-identical to encoding all rows in one pass.
    ///
    /// # Panics
    /// Panics when the tail's schema (attribute names and kinds, in order)
    /// differs from this store's.
    pub fn splice_tail(&self, tail: &ColumnStore) -> SplicedStore {
        assert_eq!(
            tail.num_columns(),
            self.num_columns(),
            "tail schema width mismatch"
        );
        for (base, this) in self.attributes.iter().zip(&tail.attributes) {
            assert_eq!(base.name, this.name, "tail attribute name mismatch");
            assert_eq!(
                base.kind, this.kind,
                "tail attribute kind mismatch on {}",
                base.name
            );
        }
        let mut attributes = self.attributes.clone();
        let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(self.num_columns());
        for (col, attribute) in tail.attributes.iter().enumerate() {
            let global = &mut attributes[col].dictionary;
            remaps.push(
                attribute
                    .dictionary
                    .iter()
                    .map(|(_, value)| global.intern(value))
                    .collect(),
            );
        }
        let columns: Vec<Vec<AttrValue>> = (0..self.num_columns())
            .map(|col| {
                let remap = &remaps[col];
                let mut cells = Vec::with_capacity(self.rows + tail.rows);
                cells.extend_from_slice(&self.columns[col]);
                cells.extend(tail.columns[col].iter().map(|cell| match cell {
                    AttrValue::Nom(id) => AttrValue::Nom(remap[*id as usize]),
                    other => *other,
                }));
                cells
            })
            .collect();
        SplicedStore {
            store: ColumnStore::from_columns(attributes, columns),
            remaps,
        }
    }

    /// Concatenates two stores whose cells are already encoded against one
    /// shared dictionary space: `front`'s dictionaries must be a prefix of
    /// `back`'s (the invariant [`ColumnStore::splice_tail`] maintains), and
    /// the result adopts `back`'s attributes — the full dictionaries —
    /// with the cell streams concatenated verbatim.  This is the tail
    /// compaction step: fold an oversized tail into the base without
    /// re-interning a single value.
    ///
    /// # Panics
    /// Panics when the schemas disagree or `front`'s dictionaries are not a
    /// prefix of `back`'s.
    pub fn concat_encoded(front: &ColumnStore, back: &ColumnStore) -> ColumnStore {
        assert_eq!(
            front.num_columns(),
            back.num_columns(),
            "concat schema width mismatch"
        );
        for (a, b) in front.attributes.iter().zip(&back.attributes) {
            assert_eq!(a.name, b.name, "concat attribute name mismatch");
            assert_eq!(
                a.kind, b.kind,
                "concat attribute kind mismatch on {}",
                a.name
            );
            assert!(
                a.dictionary.len() <= b.dictionary.len()
                    && a.dictionary
                        .iter()
                        .all(|(id, value)| b.dictionary.resolve(id) == Some(value)),
                "front dictionary is not a prefix of back's on {}",
                a.name
            );
        }
        let columns: Vec<Vec<AttrValue>> = (0..front.num_columns())
            .map(|col| {
                let mut cells = Vec::with_capacity(front.rows + back.rows);
                cells.extend_from_slice(&front.columns[col]);
                cells.extend_from_slice(&back.columns[col]);
                cells
            })
            .collect();
        ColumnStore::from_columns(back.attributes.clone(), columns)
    }

    /// Appends the store's binary encoding (the compressed v2 column
    /// format) to `writer`.
    ///
    /// The format is column-major and self-delimiting: schema first (per
    /// attribute: name, kind, dictionary values in intern order), then one
    /// compressed cell stream per column:
    ///
    /// ```text
    /// presence bitmap   ⌈rows/8⌉ bytes, bit r set = row r has a value
    /// kind tag          1 byte: all-numeric / all-nominal / mixed
    /// [kind bitmap]     mixed only: ⌈present/8⌉ bytes, bit = nominal
    /// [nominal ids]     if any: width byte (⌈log₂ dict len⌉) + packed ids
    /// [numeric stream]  if any: FoR / delta / raw, whichever is smallest
    /// ```
    ///
    /// Missing cells cost one bitmap bit; dictionary ids cost
    /// ⌈log₂(dict len)⌉ bits; integral numerics cost their
    /// frame-of-reference (or delta) width; incompressible numerics fall
    /// back to their raw 8-byte bit patterns.  No text formatting and no
    /// per-cell allocation on either side — this is the on-disk form the
    /// snapshot store serves cold starts from, bypassing serde-JSON
    /// entirely.  Decode with [`ColumnStore::decode_binary`].
    pub fn encode_binary(&self, writer: &mut ByteWriter) {
        writer.put_u32(self.attributes.len() as u32);
        writer.put_u64(self.rows as u64);
        for attribute in &self.attributes {
            writer.put_str(&attribute.name);
            writer.put_u8(match attribute.kind {
                AttrKind::Numeric => 0,
                AttrKind::Nominal => 1,
            });
            writer.put_u32(attribute.dictionary.len() as u32);
            for (_, value) in attribute.dictionary.iter() {
                writer.put_str(value);
            }
        }
        for (attribute, column) in self.attributes.iter().zip(&self.columns) {
            encode_column(writer, attribute, column);
        }
    }

    /// Decodes a store previously written by [`ColumnStore::encode_binary`].
    ///
    /// Every read is checked: truncated input (including a presence bitmap
    /// shorter than the row count), invalid kind tags, impossible bit
    /// widths, duplicate dictionary entries and out-of-range nominal ids
    /// all return a typed [`CodecError`] — corrupt snapshot files must
    /// never panic the process that opens them, and no allocation is sized
    /// by an unverified count.  The decoded store is bit-identical to the
    /// encoded one (dictionary ids are re-interned in stored order, NaN
    /// and `-0.0` cells keep their exact bit patterns), and its columns
    /// land directly in fresh [`ColumnData`] buffers ready for zero-copy
    /// sharing.
    pub fn decode_binary(reader: &mut ByteReader<'_>) -> CodecResult<ColumnStore> {
        let num_columns = reader.get_u32()? as usize;
        let rows = reader.get_u64()? as usize;
        // Corrupt counts must fail at the first checked read, not via an
        // attempted count-sized allocation: every column needs at least one
        // byte of schema and one presence bitmap bit per cell.
        if num_columns > reader.remaining() {
            return Err(CodecError::Invalid(format!(
                "column count {num_columns} exceeds the {} remaining byte(s)",
                reader.remaining()
            )));
        }
        if num_columns > 0 && rows.div_ceil(8) > reader.remaining() {
            return Err(CodecError::Invalid(format!(
                "row count {rows} exceeds the {} remaining byte(s)",
                reader.remaining()
            )));
        }
        let mut attributes = Vec::with_capacity(num_columns);
        for _ in 0..num_columns {
            let name = reader.get_str()?.to_string();
            let kind = match reader.get_u8()? {
                0 => AttrKind::Numeric,
                1 => AttrKind::Nominal,
                tag => {
                    return Err(CodecError::Invalid(format!(
                        "unknown attribute kind tag {tag} on column '{name}'"
                    )))
                }
            };
            let mut attribute = match kind {
                AttrKind::Numeric => Attribute::numeric(name),
                AttrKind::Nominal => Attribute::nominal(name),
            };
            let dict_len = reader.get_u32()? as usize;
            for expected in 0..dict_len {
                let value = reader.get_str()?;
                let id = attribute.dictionary.intern(value) as usize;
                if id != expected {
                    return Err(CodecError::Invalid(format!(
                        "duplicate dictionary entry '{value}' on column '{}'",
                        attribute.name
                    )));
                }
            }
            attributes.push(attribute);
        }
        let mut columns = Vec::with_capacity(num_columns);
        for attribute in &attributes {
            columns.push(decode_column(reader, attribute, rows)?.into());
        }
        Ok(ColumnStore::from_column_data(attributes, columns))
    }
}

/// Encodes one column as presence bitmap + kind split + packed sub-streams
/// (see [`ColumnStore::encode_binary`] for the layout).
fn encode_column(writer: &mut ByteWriter, attribute: &Attribute, cells: &[AttrValue]) {
    let presence: Vec<bool> = cells.iter().map(|cell| !cell.is_missing()).collect();
    writer.put_bitmap(&presence);

    // Split the present cells into the nominal-id and numeric sub-streams,
    // remembering which was which for mixed columns.
    let mut ids: Vec<u64> = Vec::new();
    let mut nums: Vec<f64> = Vec::new();
    let mut kinds: Vec<bool> = Vec::new();
    for cell in cells {
        match cell {
            AttrValue::Missing => {}
            AttrValue::Num(v) => {
                nums.push(*v);
                kinds.push(false);
            }
            AttrValue::Nom(id) => {
                ids.push(*id as u64);
                kinds.push(true);
            }
        }
    }
    let kind_tag = if ids.is_empty() {
        KINDS_NUM
    } else if nums.is_empty() {
        KINDS_NOM
    } else {
        KINDS_MIXED
    };
    writer.put_u8(kind_tag);
    if kind_tag == KINDS_MIXED {
        writer.put_bitmap(&kinds);
    }
    if !ids.is_empty() {
        // Ids are packed at the dictionary's canonical width; the width
        // byte is redundant with the dictionary length, which is exactly
        // what lets the decoder reject a tampered width outright.
        let width = bits_needed(attribute.dictionary.len().saturating_sub(1) as u64);
        writer.put_u8(width as u8);
        writer.put_packed(&ids, width);
    }
    if !nums.is_empty() {
        encode_f64_stream(writer, &nums);
    }
}

/// Decodes one column written by [`encode_column`].  The `rows` bound was
/// validated against the input length by the caller, and every allocation
/// below happens only after the bytes backing it were actually consumed.
fn decode_column(
    reader: &mut ByteReader<'_>,
    attribute: &Attribute,
    rows: usize,
) -> CodecResult<Vec<AttrValue>> {
    let presence = reader.get_bitmap(rows)?;
    let present = presence.iter().filter(|&&bit| bit).count();
    let kind_tag = reader.get_u8()?;
    let kinds: Option<Vec<bool>> = match kind_tag {
        KINDS_NUM | KINDS_NOM => None,
        KINDS_MIXED => Some(reader.get_bitmap(present)?),
        tag => {
            return Err(CodecError::Invalid(format!(
                "unknown column kind tag {tag} on column '{}'",
                attribute.name
            )))
        }
    };
    let nom_count = match kind_tag {
        KINDS_NUM => 0,
        KINDS_NOM => present,
        _ => kinds
            .as_ref()
            .map(|k| k.iter().filter(|&&bit| bit).count())
            .unwrap_or(0),
    };
    let num_count = present - nom_count;

    let ids = if nom_count > 0 {
        let dict_len = attribute.dictionary.len();
        if dict_len == 0 {
            return Err(CodecError::Invalid(format!(
                "nominal cells with an empty dictionary on column '{}'",
                attribute.name
            )));
        }
        let expected = bits_needed((dict_len - 1) as u64);
        let width = reader.get_u8()? as u32;
        if width != expected {
            return Err(CodecError::Invalid(format!(
                "impossible bit width {width} on column '{}' \
                 ({dict_len} dictionary entries pack at {expected} bit(s))",
                attribute.name
            )));
        }
        let ids = reader.get_packed(nom_count, width)?;
        for &id in &ids {
            if id as usize >= dict_len {
                return Err(CodecError::Invalid(format!(
                    "nominal id {id} out of range on column '{}' \
                     (dictionary has {dict_len} entries)",
                    attribute.name
                )));
            }
        }
        ids
    } else {
        Vec::new()
    };
    let nums = if num_count > 0 {
        decode_f64_stream(reader, num_count)?
    } else {
        Vec::new()
    };

    // Reassemble the cells by walking the bitmaps and pulling from the two
    // sub-streams in order.
    let mut cells = Vec::with_capacity(rows);
    let mut nom_at = 0usize;
    let mut num_at = 0usize;
    let mut present_at = 0usize;
    for &bit in &presence {
        if !bit {
            cells.push(AttrValue::Missing);
            continue;
        }
        let is_nominal = match kind_tag {
            KINDS_NUM => false,
            KINDS_NOM => true,
            _ => kinds.as_ref().expect("mixed columns carry a kind bitmap")[present_at],
        };
        present_at += 1;
        if is_nominal {
            cells.push(AttrValue::Nom(ids[nom_at] as u32));
            nom_at += 1;
        } else {
            cells.push(AttrValue::Num(nums[num_at]));
            num_at += 1;
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AttrKind;

    fn store() -> ColumnStore {
        let mut script = Attribute::nominal("script");
        let filter = script.dictionary.intern("filter.pig");
        let group = script.dictionary.intern("group.pig");
        ColumnStore::from_columns(
            vec![Attribute::numeric("size"), script],
            vec![
                vec![AttrValue::Num(1.0), AttrValue::Missing, AttrValue::Num(3.0)],
                vec![
                    AttrValue::Nom(filter),
                    AttrValue::Nom(group),
                    AttrValue::Nom(filter),
                ],
            ],
        )
    }

    #[test]
    fn accessors_expose_cells_and_schema() {
        let store = store();
        assert_eq!(store.num_rows(), 3);
        assert_eq!(store.num_columns(), 2);
        assert_eq!(store.column_index("script"), Some(1));
        assert_eq!(store.column_index("nope"), None);
        assert_eq!(store.value(0, 0), AttrValue::Num(1.0));
        assert!(store.value(1, 0).is_missing());
        assert_eq!(store.attribute(1).kind, AttrKind::Nominal);
        assert_eq!(store.attribute(1).dictionary.resolve(0), Some("filter.pig"));
        assert_eq!(store.column(0).len(), 3);
    }

    #[test]
    fn empty_store_is_fine() {
        let store = ColumnStore::from_columns(vec![], vec![]);
        assert_eq!(store.num_rows(), 0);
        assert_eq!(store.num_columns(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged column")]
    fn ragged_columns_are_rejected() {
        ColumnStore::from_columns(
            vec![Attribute::numeric("a"), Attribute::numeric("b")],
            vec![vec![AttrValue::Num(1.0)], vec![]],
        );
    }

    /// Encodes `values` into a one-column store with a local dictionary.
    fn nominal_segment(values: &[&str]) -> ColumnStore {
        let mut attribute = Attribute::nominal("script");
        let column = values
            .iter()
            .map(|v| AttrValue::Nom(attribute.dictionary.intern(v)))
            .collect();
        ColumnStore::from_columns(vec![attribute], vec![column])
    }

    #[test]
    fn merged_segments_are_bit_identical_to_a_single_pass() {
        // Shards with overlapping and disjoint dictionary entries, in
        // orders that differ from the global first-occurrence order.
        let all = ["b", "a", "b", "c", "a", "d", "e", "c"];
        let single = nominal_segment(&all);
        for split in 1..all.len() {
            let merged = ColumnStore::merge_segments(vec![
                nominal_segment(&all[..split]),
                nominal_segment(&all[split..]),
            ]);
            assert_eq!(merged.store, single, "split at {split} diverges");
            assert_eq!(merged.remaps.len(), 2);
        }
    }

    #[test]
    fn merge_remaps_local_ids_onto_the_global_dictionary() {
        let merged = ColumnStore::merge_segments(vec![
            nominal_segment(&["x", "y"]),
            nominal_segment(&["y", "z"]),
        ]);
        let dictionary = &merged.store.attribute(0).dictionary;
        assert_eq!(dictionary.resolve(0), Some("x"));
        assert_eq!(dictionary.resolve(1), Some("y"));
        assert_eq!(dictionary.resolve(2), Some("z"));
        // Segment 1's local ids 0 ("y") and 1 ("z") map to global 1 and 2.
        assert_eq!(merged.remaps[1][0], vec![1, 2]);
        assert_eq!(merged.store.value(2, 0), AttrValue::Nom(1));
        assert_eq!(merged.store.value(3, 0), AttrValue::Nom(2));
    }

    #[test]
    fn merging_one_segment_is_the_identity() {
        let store = store();
        let merged = ColumnStore::merge_segments(vec![store.clone()]);
        assert_eq!(merged.store, store);
    }

    #[test]
    fn splice_tail_extends_dictionaries_in_place() {
        // Base interns "b", "a"; the tail's local dictionary ("a", "c")
        // must remap onto {b:0, a:1, c:2} without moving base ids.
        let base = nominal_segment(&["b", "a", "b"]);
        let tail = nominal_segment(&["a", "c", "a"]);
        let spliced = base.splice_tail(&tail);
        let single = nominal_segment(&["b", "a", "b", "a", "c", "a"]);
        assert_eq!(spliced.store, single);
        assert_eq!(spliced.remaps[0], vec![1, 2]);
        // Base ids are untouched: "b" is still 0, "a" still 1.
        let dictionary = &spliced.store.attribute(0).dictionary;
        assert_eq!(dictionary.resolve(0), Some("b"));
        assert_eq!(dictionary.resolve(1), Some("a"));
        assert_eq!(dictionary.resolve(2), Some("c"));
    }

    #[test]
    fn splice_tail_onto_an_empty_base_adopts_the_tail() {
        let empty = {
            let attribute = Attribute::nominal("script");
            ColumnStore::from_columns(vec![attribute], vec![vec![]])
        };
        let tail = nominal_segment(&["x", "y", "x"]);
        let spliced = empty.splice_tail(&tail);
        assert_eq!(spliced.store, tail);
        assert_eq!(spliced.remaps[0], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "tail attribute name mismatch")]
    fn splice_tail_rejects_mismatched_schemas() {
        let base = ColumnStore::from_columns(vec![Attribute::numeric("a")], vec![vec![]]);
        let tail = ColumnStore::from_columns(vec![Attribute::numeric("b")], vec![vec![]]);
        base.splice_tail(&tail);
    }

    #[test]
    fn concat_encoded_folds_a_spliced_tail_into_the_base() {
        let base = nominal_segment(&["b", "a"]);
        let tail = {
            // Encode the tail against the base's dictionary space via
            // splice onto an empty store carrying the base dictionaries.
            let empty = ColumnStore::from_columns(base.attributes().to_vec(), vec![vec![]]);
            empty.splice_tail(&nominal_segment(&["a", "c"])).store
        };
        let folded = ColumnStore::concat_encoded(&base, &tail);
        assert_eq!(folded, nominal_segment(&["b", "a", "a", "c"]));
    }

    #[test]
    #[should_panic(expected = "not a prefix")]
    fn concat_encoded_rejects_diverged_dictionaries() {
        let front = nominal_segment(&["a", "b"]);
        let back = nominal_segment(&["b", "a"]);
        ColumnStore::concat_encoded(&front, &back);
    }

    #[test]
    #[should_panic(expected = "segment attribute name mismatch")]
    fn merge_rejects_mismatched_schemas() {
        ColumnStore::merge_segments(vec![
            ColumnStore::from_columns(vec![Attribute::numeric("a")], vec![vec![]]),
            ColumnStore::from_columns(vec![Attribute::numeric("b")], vec![vec![]]),
        ]);
    }

    #[test]
    fn binary_codec_round_trips_bit_identically() {
        for store in [store(), ColumnStore::from_columns(vec![], vec![])] {
            let mut writer = ByteWriter::new();
            store.encode_binary(&mut writer);
            let bytes = writer.into_bytes();
            let mut reader = ByteReader::new(&bytes);
            let decoded = ColumnStore::decode_binary(&mut reader).unwrap();
            assert!(reader.is_exhausted());
            assert_eq!(decoded, store);
            // The derived state is rebuilt too, not just the PartialEq
            // surface.
            assert_eq!(decoded.num_rows(), store.num_rows());
            for (col, attribute) in store.attributes().iter().enumerate() {
                assert_eq!(decoded.column_index(&attribute.name), Some(col));
            }
        }
    }

    #[test]
    fn binary_decode_rejects_any_truncation() {
        let mut writer = ByteWriter::new();
        store().encode_binary(&mut writer);
        let bytes = writer.into_bytes();
        for cut in 0..bytes.len() {
            let mut reader = ByteReader::new(&bytes[..cut]);
            assert!(
                ColumnStore::decode_binary(&mut reader).is_err(),
                "truncation at byte {cut} was not detected"
            );
        }
    }

    #[test]
    fn binary_decode_rejects_structural_corruption() {
        let mut writer = ByteWriter::new();
        store().encode_binary(&mut writer);
        let bytes = writer.into_bytes();

        // A bogus attribute-kind tag right after the first column name.
        let mut corrupt = bytes.clone();
        // Header: u32 columns + u64 rows + u32 name len + "size".
        let kind_at = 4 + 8 + 4 + 4;
        corrupt[kind_at] = 7;
        let mut reader = ByteReader::new(&corrupt);
        assert!(matches!(
            ColumnStore::decode_binary(&mut reader),
            Err(CodecError::Invalid(_))
        ));

        // An impossible bit width: the last column ("script", 2-entry
        // dictionary) ends with width byte + one packed byte, so the width
        // sits at len-2.  Its only legal value is 1.
        let mut corrupt = bytes.clone();
        let len = corrupt.len();
        corrupt[len - 2] = 63;
        let mut reader = ByteReader::new(&corrupt);
        match ColumnStore::decode_binary(&mut reader) {
            Err(CodecError::Invalid(message)) => {
                assert!(message.contains("impossible bit width"), "{message}")
            }
            other => panic!("expected an invalid-width error, got {other:?}"),
        }

        // An absurd row count fails fast instead of allocating: every
        // column carries at least a ceil(rows/8)-byte presence bitmap.
        let mut corrupt = bytes;
        corrupt[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut reader = ByteReader::new(&corrupt);
        assert!(matches!(
            ColumnStore::decode_binary(&mut reader),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn binary_decode_rejects_out_of_range_packed_ids() {
        // Four 2-bit ids over a 3-entry dictionary pack into one byte
        // (the last byte of the encoding); forcing it to 0xFF yields ids
        // of 3, one past the dictionary.
        let store = nominal_segment(&["a", "b", "c", "a"]);
        let mut writer = ByteWriter::new();
        store.encode_binary(&mut writer);
        let mut corrupt = writer.into_bytes();
        let len = corrupt.len();
        assert_eq!(corrupt[len - 1], 0b0010_0100);
        corrupt[len - 1] = 0xFF;
        let mut reader = ByteReader::new(&corrupt);
        match ColumnStore::decode_binary(&mut reader) {
            Err(CodecError::Invalid(message)) => {
                assert!(message.contains("out of range"), "{message}")
            }
            other => panic!("expected an out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn binary_decode_rejects_short_presence_bitmap() {
        // 20 all-missing rows need a 3-byte presence bitmap; cutting into
        // it must surface as truncation, not a bad reassembly.
        let store = ColumnStore::from_columns(
            vec![Attribute::numeric("size")],
            vec![vec![AttrValue::Missing; 20]],
        );
        let mut writer = ByteWriter::new();
        store.encode_binary(&mut writer);
        let bytes = writer.into_bytes();
        let mut reader = ByteReader::new(&bytes[..bytes.len() - 2]);
        assert!(matches!(
            ColumnStore::decode_binary(&mut reader),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn binary_codec_round_trips_adversarial_cells_bit_exactly() {
        // NaN, infinities, -0.0 and extreme magnitudes must survive with
        // their exact bit patterns (PartialEq treats NaN as unequal, so
        // compare via to_bits).  The mixed column also forces the
        // kind-bitmap path, and the constant nominal column a zero-bit
        // dictionary width.
        let mut constant = Attribute::nominal("constant");
        let only = constant.dictionary.intern("only");
        let mut mixed = Attribute::nominal("mixed");
        let tag = mixed.dictionary.intern("tag");
        let store = ColumnStore::from_columns(
            vec![Attribute::numeric("value"), constant, mixed],
            vec![
                vec![
                    AttrValue::Num(f64::NAN),
                    AttrValue::Num(f64::INFINITY),
                    AttrValue::Num(f64::NEG_INFINITY),
                    AttrValue::Num(-0.0),
                    AttrValue::Num(f64::MAX),
                    AttrValue::Num(f64::MIN_POSITIVE),
                ],
                vec![AttrValue::Nom(only); 6],
                vec![
                    AttrValue::Nom(tag),
                    AttrValue::Num(2.5),
                    AttrValue::Missing,
                    AttrValue::Nom(tag),
                    AttrValue::Num(-7.0),
                    AttrValue::Missing,
                ],
            ],
        );
        let mut writer = ByteWriter::new();
        store.encode_binary(&mut writer);
        let bytes = writer.into_bytes();
        let mut reader = ByteReader::new(&bytes);
        let decoded = ColumnStore::decode_binary(&mut reader).unwrap();
        assert!(reader.is_exhausted());
        for col in 0..store.num_columns() {
            for row in 0..store.num_rows() {
                match (store.value(row, col), decoded.value(row, col)) {
                    (AttrValue::Num(a), AttrValue::Num(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "cell ({row}, {col})")
                    }
                    (a, b) => assert_eq!(a, b, "cell ({row}, {col})"),
                }
            }
        }
    }

    #[test]
    fn binary_codec_round_trips_all_missing_and_empty_columns() {
        for store in [
            ColumnStore::from_columns(
                vec![Attribute::numeric("a"), Attribute::nominal("b")],
                vec![vec![AttrValue::Missing; 9], vec![AttrValue::Missing; 9]],
            ),
            ColumnStore::from_columns(
                vec![Attribute::numeric("a"), Attribute::nominal("b")],
                vec![vec![], vec![]],
            ),
        ] {
            let mut writer = ByteWriter::new();
            store.encode_binary(&mut writer);
            let bytes = writer.into_bytes();
            let mut reader = ByteReader::new(&bytes);
            let decoded = ColumnStore::decode_binary(&mut reader).unwrap();
            assert!(reader.is_exhausted());
            assert_eq!(decoded, store);
        }
    }

    #[test]
    fn decoded_columns_share_their_buffers_without_copying() {
        let store = store();
        let shared = store.column_data(1);
        // The accessor hands out the same allocation, not a copy.
        assert!(std::ptr::eq(shared.as_slice(), store.column(1)));
    }
}
