//! Column-major storage for encoded feature columns.
//!
//! The PerfXplain hot path classifies *pairs* of rows, so the natural data
//! layout is one contiguous column per raw feature: each cell is an
//! [`AttrValue`] (numeric, interned nominal, or missing) and each nominal
//! column carries the interning dictionary of its
//! [`Attribute`](crate::dataset::Attribute).  A [`ColumnStore`] is built
//! once per log and then read millions of times without further allocation;
//! the dataset the split search consumes is encoded straight from these
//! columns.
//!
//! # Segments
//!
//! Large logs are encoded as **segments**: each shard of the row space is
//! encoded independently into its own `ColumnStore` — same schema, but a
//! *local* dictionary per attribute — and [`ColumnStore::merge_segments`]
//! stitches the shards back into one global store by remapping every local
//! dictionary id onto a merged global dictionary.  Because each local
//! dictionary interns values in first-occurrence order and segments are
//! merged in row order, the merged store is **bit-identical** to encoding
//! all rows in one pass: same ids, same cells, same dictionary order.

use crate::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use crate::dataset::{AttrKind, AttrValue, Attribute};
use crate::hash::FxHashMap;

/// Cell tags of the binary column encoding.
const CELL_MISSING: u8 = 0;
const CELL_NUM: u8 = 1;
const CELL_NOM: u8 = 2;

/// An immutable column-major table of encoded feature values.
#[derive(Debug, Clone, Default)]
pub struct ColumnStore {
    attributes: Vec<Attribute>,
    columns: Vec<Vec<AttrValue>>,
    index: FxHashMap<String, usize>,
    rows: usize,
}

impl PartialEq for ColumnStore {
    fn eq(&self, other: &Self) -> bool {
        // The name index and row count are derived from the columns.
        self.attributes == other.attributes && self.columns == other.columns
    }
}

/// The result of merging per-shard segment stores: the global store plus the
/// per-segment, per-column dictionary remap tables
/// (`remaps[segment][column][local_id]` = global id) so callers can remap
/// any side data they keyed by local ids.
#[derive(Debug, Clone)]
pub struct MergedStore {
    /// The merged global store.
    pub store: ColumnStore,
    /// `remaps[segment][column][local_id]` = global dictionary id.
    pub remaps: Vec<Vec<Vec<u32>>>,
}

impl ColumnStore {
    /// Builds a store from per-attribute columns.
    ///
    /// # Panics
    /// Panics when the number of columns does not match the number of
    /// attributes or when the columns are ragged.
    pub fn from_columns(attributes: Vec<Attribute>, columns: Vec<Vec<AttrValue>>) -> Self {
        assert_eq!(
            attributes.len(),
            columns.len(),
            "attribute/column count mismatch"
        );
        let rows = columns.first().map(Vec::len).unwrap_or(0);
        for (attribute, column) in attributes.iter().zip(&columns) {
            assert_eq!(
                column.len(),
                rows,
                "ragged column {} ({} rows, expected {rows})",
                attribute.name,
                column.len()
            );
        }
        let index = attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        ColumnStore {
            attributes,
            columns,
            index,
            rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.attributes.len()
    }

    /// The schema.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute of column `col`.
    pub fn attribute(&self, col: usize) -> &Attribute {
        &self.attributes[col]
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The cells of column `col`.
    pub fn column(&self, col: usize) -> &[AttrValue] {
        &self.columns[col]
    }

    /// The cell at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> AttrValue {
        self.columns[col][row]
    }

    /// Merges independently encoded segment stores into one global store.
    ///
    /// Every segment must share the schema of the first (same attribute
    /// names and kinds, in the same order); dictionaries are local to each
    /// segment.  The merged store concatenates the segments' rows in order
    /// and rebuilds one global dictionary per attribute by interning each
    /// segment's dictionary values in segment order — which is exactly
    /// first-occurrence order over the concatenated rows, so the result is
    /// bit-identical to a single-pass encoding.
    ///
    /// # Panics
    /// Panics when `segments` is empty or the schemas disagree.
    pub fn merge_segments(segments: Vec<ColumnStore>) -> MergedStore {
        assert!(!segments.is_empty(), "merge_segments needs >= 1 segment");
        let num_columns = segments[0].num_columns();
        for segment in &segments[1..] {
            assert_eq!(
                segment.num_columns(),
                num_columns,
                "segment schema width mismatch"
            );
            for (first, this) in segments[0].attributes.iter().zip(&segment.attributes) {
                assert_eq!(first.name, this.name, "segment attribute name mismatch");
                assert_eq!(
                    first.kind, this.kind,
                    "segment attribute kind mismatch on {}",
                    first.name
                );
            }
        }

        // Global attributes: the shared schema with fresh dictionaries.
        // Note that even numeric attributes can carry dictionary entries
        // (mixed-type columns intern their non-numeric cells), so every
        // attribute's dictionary is merged, not just the nominal ones.
        let mut attributes: Vec<Attribute> = segments[0]
            .attributes
            .iter()
            .map(|a| Attribute {
                name: a.name.clone(),
                kind: a.kind,
                dictionary: Default::default(),
            })
            .collect();
        let mut remaps: Vec<Vec<Vec<u32>>> = Vec::with_capacity(segments.len());
        for segment in &segments {
            let mut segment_remap = Vec::with_capacity(num_columns);
            for (col, attribute) in segment.attributes.iter().enumerate() {
                let global = &mut attributes[col].dictionary;
                let remap: Vec<u32> = attribute
                    .dictionary
                    .iter()
                    .map(|(_, value)| global.intern(value))
                    .collect();
                segment_remap.push(remap);
            }
            remaps.push(segment_remap);
        }

        let rows: usize = segments.iter().map(|s| s.rows).sum();
        let mut columns: Vec<Vec<AttrValue>> =
            (0..num_columns).map(|_| Vec::with_capacity(rows)).collect();
        for (segment, segment_remap) in segments.iter().zip(&remaps) {
            for (col, column) in segment.columns.iter().enumerate() {
                let remap = &segment_remap[col];
                columns[col].extend(column.iter().map(|cell| match cell {
                    AttrValue::Nom(id) => AttrValue::Nom(remap[*id as usize]),
                    other => *other,
                }));
            }
        }

        MergedStore {
            store: ColumnStore::from_columns(attributes, columns),
            remaps,
        }
    }

    /// Appends the store's binary encoding to `writer`.
    ///
    /// The format is column-major and self-delimiting: schema first (per
    /// attribute: name, kind, dictionary values in intern order), then one
    /// cell stream per column (tag byte + payload).  No text formatting and
    /// no per-cell allocation on either side — this is the on-disk form the
    /// snapshot store serves cold starts from, bypassing serde-JSON
    /// entirely.  Decode with [`ColumnStore::decode_binary`].
    pub fn encode_binary(&self, writer: &mut ByteWriter) {
        writer.put_u32(self.attributes.len() as u32);
        writer.put_u64(self.rows as u64);
        for attribute in &self.attributes {
            writer.put_str(&attribute.name);
            writer.put_u8(match attribute.kind {
                AttrKind::Numeric => 0,
                AttrKind::Nominal => 1,
            });
            writer.put_u32(attribute.dictionary.len() as u32);
            for (_, value) in attribute.dictionary.iter() {
                writer.put_str(value);
            }
        }
        for column in &self.columns {
            for cell in column {
                match cell {
                    AttrValue::Missing => writer.put_u8(CELL_MISSING),
                    AttrValue::Num(v) => {
                        writer.put_u8(CELL_NUM);
                        writer.put_f64(*v);
                    }
                    AttrValue::Nom(id) => {
                        writer.put_u8(CELL_NOM);
                        writer.put_u32(*id);
                    }
                }
            }
        }
    }

    /// Decodes a store previously written by [`ColumnStore::encode_binary`].
    ///
    /// Every read is checked: truncated input, invalid kind/cell tags,
    /// duplicate dictionary entries and out-of-range nominal ids all return
    /// a typed [`CodecError`] — corrupt snapshot files must never panic the
    /// process that opens them.  The decoded store is bit-identical to the
    /// encoded one (dictionary ids are re-interned in stored order).
    pub fn decode_binary(reader: &mut ByteReader<'_>) -> CodecResult<ColumnStore> {
        let num_columns = reader.get_u32()? as usize;
        let rows = reader.get_u64()? as usize;
        // Corrupt counts must fail at the first checked read, not via an
        // attempted count-sized allocation: every column needs at least one
        // byte of schema and every cell at least its tag byte.
        if num_columns > reader.remaining() {
            return Err(CodecError::Invalid(format!(
                "column count {num_columns} exceeds the {} remaining byte(s)",
                reader.remaining()
            )));
        }
        if num_columns > 0 && rows > reader.remaining() {
            return Err(CodecError::Invalid(format!(
                "row count {rows} exceeds the {} remaining byte(s)",
                reader.remaining()
            )));
        }
        let mut attributes = Vec::with_capacity(num_columns);
        for _ in 0..num_columns {
            let name = reader.get_str()?.to_string();
            let kind = match reader.get_u8()? {
                0 => AttrKind::Numeric,
                1 => AttrKind::Nominal,
                tag => {
                    return Err(CodecError::Invalid(format!(
                        "unknown attribute kind tag {tag} on column '{name}'"
                    )))
                }
            };
            let mut attribute = match kind {
                AttrKind::Numeric => Attribute::numeric(name),
                AttrKind::Nominal => Attribute::nominal(name),
            };
            let dict_len = reader.get_u32()? as usize;
            for expected in 0..dict_len {
                let value = reader.get_str()?;
                let id = attribute.dictionary.intern(value) as usize;
                if id != expected {
                    return Err(CodecError::Invalid(format!(
                        "duplicate dictionary entry '{value}' on column '{}'",
                        attribute.name
                    )));
                }
            }
            attributes.push(attribute);
        }
        let mut columns = Vec::with_capacity(num_columns);
        for attribute in &attributes {
            // Capacity is clamped by the bytes actually left (each cell
            // costs at least its tag byte): a corrupt row count must fail
            // at a checked read, not by provoking a huge allocation first.
            let mut column = Vec::with_capacity(rows.min(reader.remaining()));
            for _ in 0..rows {
                let cell = match reader.get_u8()? {
                    CELL_MISSING => AttrValue::Missing,
                    CELL_NUM => AttrValue::Num(reader.get_f64()?),
                    CELL_NOM => {
                        let id = reader.get_u32()?;
                        if id as usize >= attribute.dictionary.len() {
                            return Err(CodecError::Invalid(format!(
                                "nominal id {id} out of range on column '{}' \
                                 (dictionary has {} entries)",
                                attribute.name,
                                attribute.dictionary.len()
                            )));
                        }
                        AttrValue::Nom(id)
                    }
                    tag => {
                        return Err(CodecError::Invalid(format!(
                            "unknown cell tag {tag} on column '{}'",
                            attribute.name
                        )))
                    }
                };
                column.push(cell);
            }
            columns.push(column);
        }
        Ok(ColumnStore::from_columns(attributes, columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AttrKind;

    fn store() -> ColumnStore {
        let mut script = Attribute::nominal("script");
        let filter = script.dictionary.intern("filter.pig");
        let group = script.dictionary.intern("group.pig");
        ColumnStore::from_columns(
            vec![Attribute::numeric("size"), script],
            vec![
                vec![AttrValue::Num(1.0), AttrValue::Missing, AttrValue::Num(3.0)],
                vec![
                    AttrValue::Nom(filter),
                    AttrValue::Nom(group),
                    AttrValue::Nom(filter),
                ],
            ],
        )
    }

    #[test]
    fn accessors_expose_cells_and_schema() {
        let store = store();
        assert_eq!(store.num_rows(), 3);
        assert_eq!(store.num_columns(), 2);
        assert_eq!(store.column_index("script"), Some(1));
        assert_eq!(store.column_index("nope"), None);
        assert_eq!(store.value(0, 0), AttrValue::Num(1.0));
        assert!(store.value(1, 0).is_missing());
        assert_eq!(store.attribute(1).kind, AttrKind::Nominal);
        assert_eq!(store.attribute(1).dictionary.resolve(0), Some("filter.pig"));
        assert_eq!(store.column(0).len(), 3);
    }

    #[test]
    fn empty_store_is_fine() {
        let store = ColumnStore::from_columns(vec![], vec![]);
        assert_eq!(store.num_rows(), 0);
        assert_eq!(store.num_columns(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged column")]
    fn ragged_columns_are_rejected() {
        ColumnStore::from_columns(
            vec![Attribute::numeric("a"), Attribute::numeric("b")],
            vec![vec![AttrValue::Num(1.0)], vec![]],
        );
    }

    /// Encodes `values` into a one-column store with a local dictionary.
    fn nominal_segment(values: &[&str]) -> ColumnStore {
        let mut attribute = Attribute::nominal("script");
        let column = values
            .iter()
            .map(|v| AttrValue::Nom(attribute.dictionary.intern(v)))
            .collect();
        ColumnStore::from_columns(vec![attribute], vec![column])
    }

    #[test]
    fn merged_segments_are_bit_identical_to_a_single_pass() {
        // Shards with overlapping and disjoint dictionary entries, in
        // orders that differ from the global first-occurrence order.
        let all = ["b", "a", "b", "c", "a", "d", "e", "c"];
        let single = nominal_segment(&all);
        for split in 1..all.len() {
            let merged = ColumnStore::merge_segments(vec![
                nominal_segment(&all[..split]),
                nominal_segment(&all[split..]),
            ]);
            assert_eq!(merged.store, single, "split at {split} diverges");
            assert_eq!(merged.remaps.len(), 2);
        }
    }

    #[test]
    fn merge_remaps_local_ids_onto_the_global_dictionary() {
        let merged = ColumnStore::merge_segments(vec![
            nominal_segment(&["x", "y"]),
            nominal_segment(&["y", "z"]),
        ]);
        let dictionary = &merged.store.attribute(0).dictionary;
        assert_eq!(dictionary.resolve(0), Some("x"));
        assert_eq!(dictionary.resolve(1), Some("y"));
        assert_eq!(dictionary.resolve(2), Some("z"));
        // Segment 1's local ids 0 ("y") and 1 ("z") map to global 1 and 2.
        assert_eq!(merged.remaps[1][0], vec![1, 2]);
        assert_eq!(merged.store.value(2, 0), AttrValue::Nom(1));
        assert_eq!(merged.store.value(3, 0), AttrValue::Nom(2));
    }

    #[test]
    fn merging_one_segment_is_the_identity() {
        let store = store();
        let merged = ColumnStore::merge_segments(vec![store.clone()]);
        assert_eq!(merged.store, store);
    }

    #[test]
    #[should_panic(expected = "segment attribute name mismatch")]
    fn merge_rejects_mismatched_schemas() {
        ColumnStore::merge_segments(vec![
            ColumnStore::from_columns(vec![Attribute::numeric("a")], vec![vec![]]),
            ColumnStore::from_columns(vec![Attribute::numeric("b")], vec![vec![]]),
        ]);
    }

    #[test]
    fn binary_codec_round_trips_bit_identically() {
        for store in [store(), ColumnStore::from_columns(vec![], vec![])] {
            let mut writer = ByteWriter::new();
            store.encode_binary(&mut writer);
            let bytes = writer.into_bytes();
            let mut reader = ByteReader::new(&bytes);
            let decoded = ColumnStore::decode_binary(&mut reader).unwrap();
            assert!(reader.is_exhausted());
            assert_eq!(decoded, store);
            // The derived state is rebuilt too, not just the PartialEq
            // surface.
            assert_eq!(decoded.num_rows(), store.num_rows());
            for (col, attribute) in store.attributes().iter().enumerate() {
                assert_eq!(decoded.column_index(&attribute.name), Some(col));
            }
        }
    }

    #[test]
    fn binary_decode_rejects_any_truncation() {
        let mut writer = ByteWriter::new();
        store().encode_binary(&mut writer);
        let bytes = writer.into_bytes();
        for cut in 0..bytes.len() {
            let mut reader = ByteReader::new(&bytes[..cut]);
            assert!(
                ColumnStore::decode_binary(&mut reader).is_err(),
                "truncation at byte {cut} was not detected"
            );
        }
    }

    #[test]
    fn binary_decode_rejects_structural_corruption() {
        let mut writer = ByteWriter::new();
        store().encode_binary(&mut writer);
        let bytes = writer.into_bytes();

        // An out-of-range nominal id: patch the last cell (a Nom tag +
        // u32 id) to reference a dictionary entry that does not exist.
        let mut corrupt = bytes.clone();
        let len = corrupt.len();
        corrupt[len - 4..].copy_from_slice(&99u32.to_le_bytes());
        let mut reader = ByteReader::new(&corrupt);
        assert!(matches!(
            ColumnStore::decode_binary(&mut reader),
            Err(CodecError::Invalid(_))
        ));

        // A bogus attribute-kind tag right after the first column name.
        let mut corrupt = bytes.clone();
        // Header: u32 columns + u64 rows + u32 name len + "size".
        let kind_at = 4 + 8 + 4 + 4;
        corrupt[kind_at] = 7;
        let mut reader = ByteReader::new(&corrupt);
        assert!(matches!(
            ColumnStore::decode_binary(&mut reader),
            Err(CodecError::Invalid(_))
        ));

        // An absurd row count fails fast instead of allocating.
        let mut corrupt = bytes;
        corrupt[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut reader = ByteReader::new(&corrupt);
        assert!(matches!(
            ColumnStore::decode_binary(&mut reader),
            Err(CodecError::Invalid(_))
        ));
    }
}
