//! Column-major storage for encoded feature columns.
//!
//! The PerfXplain hot path classifies *pairs* of rows, so the natural data
//! layout is one contiguous column per raw feature: each cell is an
//! [`AttrValue`] (numeric, interned nominal, or missing) and each nominal
//! column carries the interning dictionary of its
//! [`Attribute`](crate::dataset::Attribute).  A [`ColumnStore`] is built
//! once per log and then read millions of times without further allocation;
//! the dataset the split search consumes is encoded straight from these
//! columns.
//!
//! # Segments
//!
//! Large logs are encoded as **segments**: each shard of the row space is
//! encoded independently into its own `ColumnStore` — same schema, but a
//! *local* dictionary per attribute — and [`ColumnStore::merge_segments`]
//! stitches the shards back into one global store by remapping every local
//! dictionary id onto a merged global dictionary.  Because each local
//! dictionary interns values in first-occurrence order and segments are
//! merged in row order, the merged store is **bit-identical** to encoding
//! all rows in one pass: same ids, same cells, same dictionary order.

use crate::dataset::{AttrValue, Attribute};
use crate::hash::FxHashMap;

/// An immutable column-major table of encoded feature values.
#[derive(Debug, Clone, Default)]
pub struct ColumnStore {
    attributes: Vec<Attribute>,
    columns: Vec<Vec<AttrValue>>,
    index: FxHashMap<String, usize>,
    rows: usize,
}

impl PartialEq for ColumnStore {
    fn eq(&self, other: &Self) -> bool {
        // The name index and row count are derived from the columns.
        self.attributes == other.attributes && self.columns == other.columns
    }
}

/// The result of merging per-shard segment stores: the global store plus the
/// per-segment, per-column dictionary remap tables
/// (`remaps[segment][column][local_id]` = global id) so callers can remap
/// any side data they keyed by local ids.
#[derive(Debug, Clone)]
pub struct MergedStore {
    /// The merged global store.
    pub store: ColumnStore,
    /// `remaps[segment][column][local_id]` = global dictionary id.
    pub remaps: Vec<Vec<Vec<u32>>>,
}

impl ColumnStore {
    /// Builds a store from per-attribute columns.
    ///
    /// # Panics
    /// Panics when the number of columns does not match the number of
    /// attributes or when the columns are ragged.
    pub fn from_columns(attributes: Vec<Attribute>, columns: Vec<Vec<AttrValue>>) -> Self {
        assert_eq!(
            attributes.len(),
            columns.len(),
            "attribute/column count mismatch"
        );
        let rows = columns.first().map(Vec::len).unwrap_or(0);
        for (attribute, column) in attributes.iter().zip(&columns) {
            assert_eq!(
                column.len(),
                rows,
                "ragged column {} ({} rows, expected {rows})",
                attribute.name,
                column.len()
            );
        }
        let index = attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        ColumnStore {
            attributes,
            columns,
            index,
            rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.attributes.len()
    }

    /// The schema.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute of column `col`.
    pub fn attribute(&self, col: usize) -> &Attribute {
        &self.attributes[col]
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The cells of column `col`.
    pub fn column(&self, col: usize) -> &[AttrValue] {
        &self.columns[col]
    }

    /// The cell at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> AttrValue {
        self.columns[col][row]
    }

    /// Merges independently encoded segment stores into one global store.
    ///
    /// Every segment must share the schema of the first (same attribute
    /// names and kinds, in the same order); dictionaries are local to each
    /// segment.  The merged store concatenates the segments' rows in order
    /// and rebuilds one global dictionary per attribute by interning each
    /// segment's dictionary values in segment order — which is exactly
    /// first-occurrence order over the concatenated rows, so the result is
    /// bit-identical to a single-pass encoding.
    ///
    /// # Panics
    /// Panics when `segments` is empty or the schemas disagree.
    pub fn merge_segments(segments: Vec<ColumnStore>) -> MergedStore {
        assert!(!segments.is_empty(), "merge_segments needs >= 1 segment");
        let num_columns = segments[0].num_columns();
        for segment in &segments[1..] {
            assert_eq!(
                segment.num_columns(),
                num_columns,
                "segment schema width mismatch"
            );
            for (first, this) in segments[0].attributes.iter().zip(&segment.attributes) {
                assert_eq!(first.name, this.name, "segment attribute name mismatch");
                assert_eq!(
                    first.kind, this.kind,
                    "segment attribute kind mismatch on {}",
                    first.name
                );
            }
        }

        // Global attributes: the shared schema with fresh dictionaries.
        // Note that even numeric attributes can carry dictionary entries
        // (mixed-type columns intern their non-numeric cells), so every
        // attribute's dictionary is merged, not just the nominal ones.
        let mut attributes: Vec<Attribute> = segments[0]
            .attributes
            .iter()
            .map(|a| Attribute {
                name: a.name.clone(),
                kind: a.kind,
                dictionary: Default::default(),
            })
            .collect();
        let mut remaps: Vec<Vec<Vec<u32>>> = Vec::with_capacity(segments.len());
        for segment in &segments {
            let mut segment_remap = Vec::with_capacity(num_columns);
            for (col, attribute) in segment.attributes.iter().enumerate() {
                let global = &mut attributes[col].dictionary;
                let remap: Vec<u32> = attribute
                    .dictionary
                    .iter()
                    .map(|(_, value)| global.intern(value))
                    .collect();
                segment_remap.push(remap);
            }
            remaps.push(segment_remap);
        }

        let rows: usize = segments.iter().map(|s| s.rows).sum();
        let mut columns: Vec<Vec<AttrValue>> =
            (0..num_columns).map(|_| Vec::with_capacity(rows)).collect();
        for (segment, segment_remap) in segments.iter().zip(&remaps) {
            for (col, column) in segment.columns.iter().enumerate() {
                let remap = &segment_remap[col];
                columns[col].extend(column.iter().map(|cell| match cell {
                    AttrValue::Nom(id) => AttrValue::Nom(remap[*id as usize]),
                    other => *other,
                }));
            }
        }

        MergedStore {
            store: ColumnStore::from_columns(attributes, columns),
            remaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AttrKind;

    fn store() -> ColumnStore {
        let mut script = Attribute::nominal("script");
        let filter = script.dictionary.intern("filter.pig");
        let group = script.dictionary.intern("group.pig");
        ColumnStore::from_columns(
            vec![Attribute::numeric("size"), script],
            vec![
                vec![AttrValue::Num(1.0), AttrValue::Missing, AttrValue::Num(3.0)],
                vec![
                    AttrValue::Nom(filter),
                    AttrValue::Nom(group),
                    AttrValue::Nom(filter),
                ],
            ],
        )
    }

    #[test]
    fn accessors_expose_cells_and_schema() {
        let store = store();
        assert_eq!(store.num_rows(), 3);
        assert_eq!(store.num_columns(), 2);
        assert_eq!(store.column_index("script"), Some(1));
        assert_eq!(store.column_index("nope"), None);
        assert_eq!(store.value(0, 0), AttrValue::Num(1.0));
        assert!(store.value(1, 0).is_missing());
        assert_eq!(store.attribute(1).kind, AttrKind::Nominal);
        assert_eq!(store.attribute(1).dictionary.resolve(0), Some("filter.pig"));
        assert_eq!(store.column(0).len(), 3);
    }

    #[test]
    fn empty_store_is_fine() {
        let store = ColumnStore::from_columns(vec![], vec![]);
        assert_eq!(store.num_rows(), 0);
        assert_eq!(store.num_columns(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged column")]
    fn ragged_columns_are_rejected() {
        ColumnStore::from_columns(
            vec![Attribute::numeric("a"), Attribute::numeric("b")],
            vec![vec![AttrValue::Num(1.0)], vec![]],
        );
    }

    /// Encodes `values` into a one-column store with a local dictionary.
    fn nominal_segment(values: &[&str]) -> ColumnStore {
        let mut attribute = Attribute::nominal("script");
        let column = values
            .iter()
            .map(|v| AttrValue::Nom(attribute.dictionary.intern(v)))
            .collect();
        ColumnStore::from_columns(vec![attribute], vec![column])
    }

    #[test]
    fn merged_segments_are_bit_identical_to_a_single_pass() {
        // Shards with overlapping and disjoint dictionary entries, in
        // orders that differ from the global first-occurrence order.
        let all = ["b", "a", "b", "c", "a", "d", "e", "c"];
        let single = nominal_segment(&all);
        for split in 1..all.len() {
            let merged = ColumnStore::merge_segments(vec![
                nominal_segment(&all[..split]),
                nominal_segment(&all[split..]),
            ]);
            assert_eq!(merged.store, single, "split at {split} diverges");
            assert_eq!(merged.remaps.len(), 2);
        }
    }

    #[test]
    fn merge_remaps_local_ids_onto_the_global_dictionary() {
        let merged = ColumnStore::merge_segments(vec![
            nominal_segment(&["x", "y"]),
            nominal_segment(&["y", "z"]),
        ]);
        let dictionary = &merged.store.attribute(0).dictionary;
        assert_eq!(dictionary.resolve(0), Some("x"));
        assert_eq!(dictionary.resolve(1), Some("y"));
        assert_eq!(dictionary.resolve(2), Some("z"));
        // Segment 1's local ids 0 ("y") and 1 ("z") map to global 1 and 2.
        assert_eq!(merged.remaps[1][0], vec![1, 2]);
        assert_eq!(merged.store.value(2, 0), AttrValue::Nom(1));
        assert_eq!(merged.store.value(3, 0), AttrValue::Nom(2));
    }

    #[test]
    fn merging_one_segment_is_the_identity() {
        let store = store();
        let merged = ColumnStore::merge_segments(vec![store.clone()]);
        assert_eq!(merged.store, store);
    }

    #[test]
    #[should_panic(expected = "segment attribute name mismatch")]
    fn merge_rejects_mismatched_schemas() {
        ColumnStore::merge_segments(vec![
            ColumnStore::from_columns(vec![Attribute::numeric("a")], vec![vec![]]),
            ColumnStore::from_columns(vec![Attribute::numeric("b")], vec![vec![]]),
        ]);
    }
}
