//! Column-major storage for encoded feature columns.
//!
//! The PerfXplain hot path classifies *pairs* of rows, so the natural data
//! layout is one contiguous column per raw feature: each cell is an
//! [`AttrValue`] (numeric, interned nominal, or missing) and each nominal
//! column carries the interning dictionary of its
//! [`Attribute`](crate::dataset::Attribute).  A [`ColumnStore`] is built
//! once per log and then read millions of times without further allocation;
//! the dataset the split search consumes is encoded straight from these
//! columns.

use crate::dataset::{AttrValue, Attribute};
use std::collections::HashMap;

/// An immutable column-major table of encoded feature values.
#[derive(Debug, Clone, Default)]
pub struct ColumnStore {
    attributes: Vec<Attribute>,
    columns: Vec<Vec<AttrValue>>,
    index: HashMap<String, usize>,
    rows: usize,
}

impl ColumnStore {
    /// Builds a store from per-attribute columns.
    ///
    /// # Panics
    /// Panics when the number of columns does not match the number of
    /// attributes or when the columns are ragged.
    pub fn from_columns(attributes: Vec<Attribute>, columns: Vec<Vec<AttrValue>>) -> Self {
        assert_eq!(
            attributes.len(),
            columns.len(),
            "attribute/column count mismatch"
        );
        let rows = columns.first().map(Vec::len).unwrap_or(0);
        for (attribute, column) in attributes.iter().zip(&columns) {
            assert_eq!(
                column.len(),
                rows,
                "ragged column {} ({} rows, expected {rows})",
                attribute.name,
                column.len()
            );
        }
        let index = attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        ColumnStore {
            attributes,
            columns,
            index,
            rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.attributes.len()
    }

    /// The schema.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute of column `col`.
    pub fn attribute(&self, col: usize) -> &Attribute {
        &self.attributes[col]
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The cells of column `col`.
    pub fn column(&self, col: usize) -> &[AttrValue] {
        &self.columns[col]
    }

    /// The cell at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> AttrValue {
        self.columns[col][row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AttrKind;

    fn store() -> ColumnStore {
        let mut script = Attribute::nominal("script");
        let filter = script.dictionary.intern("filter.pig");
        let group = script.dictionary.intern("group.pig");
        ColumnStore::from_columns(
            vec![Attribute::numeric("size"), script],
            vec![
                vec![AttrValue::Num(1.0), AttrValue::Missing, AttrValue::Num(3.0)],
                vec![
                    AttrValue::Nom(filter),
                    AttrValue::Nom(group),
                    AttrValue::Nom(filter),
                ],
            ],
        )
    }

    #[test]
    fn accessors_expose_cells_and_schema() {
        let store = store();
        assert_eq!(store.num_rows(), 3);
        assert_eq!(store.num_columns(), 2);
        assert_eq!(store.column_index("script"), Some(1));
        assert_eq!(store.column_index("nope"), None);
        assert_eq!(store.value(0, 0), AttrValue::Num(1.0));
        assert!(store.value(1, 0).is_missing());
        assert_eq!(store.attribute(1).kind, AttrKind::Nominal);
        assert_eq!(store.attribute(1).dictionary.resolve(0), Some("filter.pig"));
        assert_eq!(store.column(0).len(), 3);
    }

    #[test]
    fn empty_store_is_fine() {
        let store = ColumnStore::from_columns(vec![], vec![]);
        assert_eq!(store.num_rows(), 0);
        assert_eq!(store.num_columns(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged column")]
    fn ragged_columns_are_rejected() {
        ColumnStore::from_columns(
            vec![Attribute::numeric("a"), Attribute::numeric("b")],
            vec![vec![AttrValue::Num(1.0)], vec![]],
        );
    }
}
