//! Small statistics helpers: mean, standard deviation and the percentile-rank
//! normalisation used by `normalizeScore` in Algorithm 1.
//!
//! The paper explains that raw generality scores tend to be much smaller than
//! raw precision scores (especially as explanations grow wider), so before
//! combining the two with the 0.8/0.2 weighting it replaces each raw score by
//! its *percentile rank* among the candidate predicates of the current
//! iteration.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0.0 for fewer than two
/// values.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Population standard deviation (n denominator); 0.0 for an empty slice.
pub fn stddev_population(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Replaces every value with its percentile rank in `[0, 1]` among the input
/// values (mid-rank for ties).  A single value maps to 1.0; an empty input
/// yields an empty output.
///
/// This is the `normalizeScore` transformation of Algorithm 1: the absolute
/// magnitudes of precision and generality stop mattering, only how a
/// candidate ranks against the other candidates of the same iteration.
pub fn percentile_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    values
        .iter()
        .map(|&v| {
            let below = values.iter().filter(|&&o| o < v).count() as f64;
            let equal = values
                .iter()
                .filter(|&&o| (o - v).abs() <= f64::EPSILON)
                .count() as f64;
            // Mid-rank for ties, scaled to [0, 1].
            (below + 0.5 * equal) / n as f64
        })
        .collect()
}

/// Mean and sample standard deviation in one pass over repeated experiment
/// runs; convenience for the evaluation harness.
pub fn mean_and_stddev(values: &[f64]) -> (f64, f64) {
    (mean(values), stddev(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
        assert!((stddev_population(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_ranks_preserve_order() {
        let ranks = percentile_ranks(&[0.9, 0.1, 0.5]);
        assert!(ranks[0] > ranks[2] && ranks[2] > ranks[1]);
        assert!(ranks.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn percentile_ranks_handle_ties() {
        let ranks = percentile_ranks(&[0.5, 0.5, 0.5, 0.5]);
        assert!(ranks.iter().all(|&r| (r - 0.5).abs() < 1e-12));
    }

    #[test]
    fn percentile_ranks_edge_cases() {
        assert!(percentile_ranks(&[]).is_empty());
        assert_eq!(percentile_ranks(&[0.3]), vec![1.0]);
    }

    #[test]
    fn normalisation_equalises_scales() {
        // Precision-like scores near 1.0 and generality-like scores near 0.01
        // become comparable after rank normalisation.
        let precisions = [0.99, 0.95, 0.90];
        let generalities = [0.01, 0.02, 0.03];
        let p_ranks = percentile_ranks(&precisions);
        let g_ranks = percentile_ranks(&generalities);
        // The best generality now scores as high as the best precision.
        let best_p = p_ranks.iter().cloned().fold(f64::MIN, f64::max);
        let best_g = g_ranks.iter().cloned().fold(f64::MIN, f64::max);
        assert!((best_p - best_g).abs() < 1e-12);
    }

    #[test]
    fn mean_and_stddev_pair() {
        let (m, s) = mean_and_stddev(&[1.0, 2.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
