//! Per-attribute best-predicate (split) search.
//!
//! For a given attribute the search considers atomic tests of the form
//! `attribute op constant`:
//!
//! * nominal attributes: equality with each observed dictionary value
//!   (`= v`), as in the paper ("for nominal attributes, the only operator it
//!   considers is equality");
//! * numeric attributes: `<= t` and `> t` for C4.5-style candidate thresholds
//!   (mid-points between consecutive distinct observed values), plus equality
//!   with each distinct value so that explanations such as
//!   `numinstances <= 12` and `blocksize = 256MB` can both be produced.
//!
//! Instances with a missing value for the attribute never satisfy a test on
//! that attribute; they count toward the "outside" partition, mirroring how
//! PerfXplain treats non-applicable comparison features.  NaN feature values
//! are treated as missing: they satisfy no comparison and contribute no
//! candidate.
//!
//! # The sweep
//!
//! The search is a **single-sort sweep**: the present values are sorted once
//! (O(n log n)), and every candidate test is then scored in O(1) from running
//! prefix [`CellCounts`] — `<= t` partitions are prefixes of the sorted
//! order, `> t` partitions are their complements, and `= v` partitions are
//! the (almost always single-value) band of distinct values within the
//! equality tolerance of `v`.  Total cost per (node, attribute) is
//! O(n log n + d) for d candidate tests, where the naive evaluator rescanned
//! all n instances per candidate, i.e. O(d·n) — quadratic on continuous
//! attributes such as runtimes, where d grows with n.
//!
//! The sweep visits candidates in the exact order the naive evaluator did
//! (all `<= / >` thresholds in ascending order, then all equalities in
//! ascending order) and applies the same better-than comparison, so the
//! winning [`SplitCandidate`] — gain, counts and tie-breaks included — is
//! bit-identical.  The retained naive implementation
//! ([`crate::oracle`], compiled for tests only) is the proptest oracle for
//! that equivalence.

use crate::dataset::{AttrKind, AttrValue, Dataset};
use crate::entropy::{information_gain, CellCounts};
use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operator of an atomic test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestOp {
    /// Equality (numeric or nominal).
    Eq,
    /// `<=` on a numeric attribute.
    Le,
    /// `>` on a numeric attribute.
    Gt,
}

impl fmt::Display for TestOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestOp::Eq => write!(f, "="),
            TestOp::Le => write!(f, "<="),
            TestOp::Gt => write!(f, ">"),
        }
    }
}

/// The constant of an atomic test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TestConstant {
    /// Numeric threshold or value.
    Num(f64),
    /// Interned nominal value.
    Nom(u32),
}

/// An atomic test `attribute op constant`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestAtom {
    /// Index of the attribute in the dataset schema.
    pub attribute: usize,
    /// Operator.
    pub op: TestOp,
    /// Constant.
    pub constant: TestConstant,
}

impl TestAtom {
    /// Evaluates the test on a single value of the attribute.
    /// Missing values never satisfy a test.
    pub fn matches_value(&self, value: AttrValue) -> bool {
        match (self.op, self.constant, value) {
            (_, _, AttrValue::Missing) => false,
            (TestOp::Eq, TestConstant::Num(c), AttrValue::Num(v)) => {
                (v - c).abs() <= f64::EPSILON * c.abs().max(1.0)
            }
            (TestOp::Le, TestConstant::Num(c), AttrValue::Num(v)) => v <= c,
            (TestOp::Gt, TestConstant::Num(c), AttrValue::Num(v)) => v > c,
            (TestOp::Eq, TestConstant::Nom(c), AttrValue::Nom(v)) => v == c,
            // Type mismatches (e.g. numeric test against a nominal value)
            // never match; they indicate schema drift, not an error.
            _ => false,
        }
    }

    /// Evaluates the test on row `i` of `data`.
    pub fn matches_row(&self, data: &Dataset, i: usize) -> bool {
        self.matches_value(data.value(i, self.attribute))
    }

    /// Renders the test against a dataset schema (resolving nominal values).
    pub fn display<'a>(&'a self, data: &'a Dataset) -> TestAtomDisplay<'a> {
        TestAtomDisplay { atom: self, data }
    }
}

/// Helper for rendering a [`TestAtom`] with resolved attribute and value
/// names.
pub struct TestAtomDisplay<'a> {
    atom: &'a TestAtom,
    data: &'a Dataset,
}

impl fmt::Display for TestAtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let attr = &self.data.attributes()[self.atom.attribute];
        write!(f, "{} {} ", attr.name, self.atom.op)?;
        match self.atom.constant {
            TestConstant::Num(v) => write!(f, "{v}"),
            TestConstant::Nom(id) => {
                write!(f, "{}", attr.dictionary.resolve(id).unwrap_or("<unknown>"))
            }
        }
    }
}

/// A candidate split: the best atomic test found for one attribute together
/// with its information gain and the partition counts it induces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// The winning test.
    pub atom: TestAtom,
    /// Information gain of the test over the considered instances.
    pub gain: f64,
    /// Counts of instances satisfying the test.
    pub inside: CellCounts,
    /// Counts of instances not satisfying the test (including missing).
    pub outside: CellCounts,
}

impl SplitCandidate {
    /// Fraction of considered instances that satisfy the test.
    pub fn coverage(&self) -> f64 {
        let total = self.inside.total() + self.outside.total();
        if total == 0 {
            0.0
        } else {
            self.inside.total() as f64 / total as f64
        }
    }

    /// Fraction of positive instances among those satisfying the test
    /// (`None` if nothing satisfies it).
    pub fn inside_precision(&self) -> Option<f64> {
        if self.inside.total() == 0 {
            None
        } else {
            Some(self.inside.positive as f64 / self.inside.total() as f64)
        }
    }
}

/// The running winner of the candidate visit order.  Replacement requires a
/// gain strictly above `best + 1e-12`, or a within-tolerance tie broken by a
/// strictly larger inside partition — the exact comparison the naive
/// evaluator applied, so the sweep's winner (ties included) is bit-identical
/// to the oracle's.
struct RunningBest {
    best: Option<SplitCandidate>,
}

impl RunningBest {
    fn new() -> Self {
        RunningBest { best: None }
    }

    /// Scores one candidate partition and keeps it if it beats the running
    /// best.  A vacuous test (matching nothing) can never be part of an
    /// applicable explanation and is skipped.
    fn offer(&mut self, atom: TestAtom, inside: CellCounts, outside: CellCounts) {
        if inside.total() == 0 {
            return;
        }
        let gain = information_gain(inside, outside);
        let better = match &self.best {
            None => true,
            Some(b) => {
                gain > b.gain + 1e-12
                    || ((gain - b.gain).abs() <= 1e-12 && inside.total() > b.inside.total())
            }
        };
        if better {
            self.best = Some(SplitCandidate {
                atom,
                gain,
                inside,
                outside,
            });
        }
    }
}

/// The contiguous range of distinct sorted values matching an equality test
/// centered on the finite value `distinct[i]`, found with the exact
/// [`TestAtom::matches_value`] predicate (the band is contiguous because f64
/// subtraction is monotone in its first operand, and a finite center always
/// matches itself: `|c - c| = 0 <= eps`).  The band is almost always
/// `[i, i]`; it widens only when adjacent distinct values sit within the
/// equality tolerance.
fn eq_band(distinct: &[f64], i: usize, atom: &TestAtom) -> (usize, usize) {
    let matches = |v: f64| atom.matches_value(AttrValue::Num(v));
    let mut lo = i;
    while lo > 0 && matches(distinct[lo - 1]) {
        lo -= 1;
    }
    let mut hi = i;
    while hi + 1 < distinct.len() && matches(distinct[hi + 1]) {
        hi += 1;
    }
    (lo, hi)
}

/// The numeric sweep: sort the present values once, then score every
/// threshold and equality candidate in O(1) from prefix counts.
fn sweep_numeric(
    data: &Dataset,
    indices: &[usize],
    attribute: usize,
    allow: &impl Fn(&TestAtom) -> bool,
) -> Option<SplitCandidate> {
    // One pass: class counts over every instance (missing, NaN and
    // type-mismatched cells satisfy no numeric test — they are permanent
    // "outside" members) plus the present `(value, label)` pairs.
    let mut total = CellCounts::default();
    let mut values: Vec<(f64, bool)> = Vec::with_capacity(indices.len());
    for &i in indices {
        let label = data.label(i);
        total.record(label);
        if let AttrValue::Num(v) = data.value(i, attribute) {
            if !v.is_nan() {
                values.push((v, label));
            }
        }
    }
    if values.is_empty() {
        return None;
    }
    // The single sort.  Stable, so values comparing equal (-0.0 vs 0.0)
    // keep index order and the distinct list retains the first-seen
    // representative — the same constant the naive sort+dedup kept.
    values.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN values were filtered"));

    // Distinct values with per-value class counts and running prefix
    // counts: `prefix[j]` covers `distinct[..j]`.
    let mut distinct: Vec<f64> = Vec::new();
    let mut cells: Vec<CellCounts> = Vec::new();
    for &(v, label) in &values {
        if distinct.last().is_none_or(|&last| last != v) {
            distinct.push(v);
            cells.push(CellCounts::default());
        }
        cells.last_mut().expect("just pushed").record(label);
    }
    let k = distinct.len();
    let mut prefix: Vec<CellCounts> = Vec::with_capacity(k + 1);
    prefix.push(CellCounts::default());
    for cell in &cells {
        prefix.push(prefix.last().copied().expect("seeded").plus(*cell));
    }
    let present = prefix[k];

    let mut best = RunningBest::new();

    // Phase 1: the mid-point thresholds, in ascending order (the naive
    // candidate order).  Mid-points are non-decreasing, so one pointer
    // (`below` = number of distinct values <= current threshold) advances
    // monotonically across the whole phase.
    let mut below = 0usize;
    // Bookkeeping for the redundant-equality suppression in phase 2: the
    // prefix length of the first `<=` partition and the suffix start of the
    // last `>` partition, recorded only when that twin was actually scored
    // (allowed and non-vacuous).
    let mut first_le_prefix = None;
    let mut last_gt_suffix = None;
    for i in 0..k.saturating_sub(1) {
        let threshold = (distinct[i] + distinct[i + 1]) / 2.0;
        if threshold.is_nan() {
            // Only adjacent -inf/+inf values produce a NaN mid-point; both
            // tests on it are vacuous (nothing compares against NaN), so
            // the naive evaluator skipped them too.
            continue;
        }
        while below < k && distinct[below] <= threshold {
            below += 1;
        }
        let le = TestAtom {
            attribute,
            op: TestOp::Le,
            constant: TestConstant::Num(threshold),
        };
        if allow(&le) {
            if i == 0 {
                // Never vacuous: the mid-point is >= distinct[0].
                first_le_prefix = Some(below);
            }
            best.offer(le, prefix[below], total.minus(prefix[below]));
        }
        let gt = TestAtom {
            attribute,
            op: TestOp::Gt,
            constant: TestConstant::Num(threshold),
        };
        if allow(&gt) {
            if i == k - 2 && below < k {
                // `below == k` would make the `>` side vacuous (the
                // mid-point rounded up onto the last value): not a twin.
                last_gt_suffix = Some(below);
            }
            let inside = present.minus(prefix[below]);
            best.offer(gt, inside, total.minus(inside));
        }
    }

    // Phase 2: the equality candidates, in ascending order.  Non-finite
    // values take part in the ordering (every `Le`/`Gt` above treats them
    // normally) but produce no equality candidate: the relative tolerance
    // degenerates on ±inf (`eps = inf`, so `= inf` would match every
    // *finite* value and not inf itself — an inverted predicate no
    // explanation should ever state).
    for i in 0..k {
        if !distinct[i].is_finite() {
            continue;
        }
        let atom = TestAtom {
            attribute,
            op: TestOp::Eq,
            constant: TestConstant::Num(distinct[i]),
        };
        let (lo, hi) = eq_band(&distinct, i, &atom);
        // Redundant-equality suppression: an `=` candidate whose inside
        // rows are exactly those of an already-scored adjacent mid-point
        // (`<=` over the same leading band, or `>` over the same trailing
        // band) carries the identical gain and counts, so under the
        // strictly-better replacement rule it can never displace anything
        // its twin could not — skip it without scoring.
        if (lo == 0 && first_le_prefix == Some(hi + 1))
            || (hi + 1 == k && last_gt_suffix == Some(lo))
        {
            continue;
        }
        if allow(&atom) {
            let inside = prefix[hi + 1].minus(prefix[lo]);
            best.offer(atom, inside, total.minus(inside));
        }
    }
    best.best
}

/// The nominal sweep: one counting pass (FxHash-deduplicated, first-seen
/// candidate order preserved), then O(1) scoring per distinct value.
fn sweep_nominal(
    data: &Dataset,
    indices: &[usize],
    attribute: usize,
    allow: &impl Fn(&TestAtom) -> bool,
) -> Option<SplitCandidate> {
    let mut total = CellCounts::default();
    let mut order: Vec<u32> = Vec::new();
    let mut counts: FxHashMap<u32, CellCounts> = FxHashMap::default();
    for &i in indices {
        let label = data.label(i);
        total.record(label);
        if let AttrValue::Nom(v) = data.value(i, attribute) {
            match counts.get_mut(&v) {
                Some(cell) => cell.record(label),
                None => {
                    let mut cell = CellCounts::default();
                    cell.record(label);
                    counts.insert(v, cell);
                    order.push(v);
                }
            }
        }
    }
    let mut best = RunningBest::new();
    for v in order {
        let atom = TestAtom {
            attribute,
            op: TestOp::Eq,
            constant: TestConstant::Nom(v),
        };
        if allow(&atom) {
            let inside = *counts.get(&v).expect("counted above");
            best.offer(atom, inside, total.minus(inside));
        }
    }
    best.best
}

/// Finds the atomic test on `attribute` with the highest information gain
/// over the instances listed in `indices`.
///
/// Returns `None` when the attribute has no observed (non-missing, non-NaN)
/// values among the instances, or when every candidate test is vacuous or
/// filtered out.
pub fn best_split_for_attribute(
    data: &Dataset,
    indices: &[usize],
    attribute: usize,
) -> Option<SplitCandidate> {
    best_split_for_attribute_filtered(data, indices, attribute, |_| true)
}

/// Like [`best_split_for_attribute`] but only considers candidate tests
/// accepted by `allow`.
///
/// PerfXplain uses the filter to enforce *applicability*: an explanation must
/// hold for the pair of interest, so only tests that the pair of interest
/// satisfies are eligible.  The filter is threaded through the sweep itself,
/// so the greedy explanation loop pays O(n log n + d) per attribute exactly
/// like the unfiltered tree search.
pub fn best_split_for_attribute_filtered(
    data: &Dataset,
    indices: &[usize],
    attribute: usize,
    allow: impl Fn(&TestAtom) -> bool,
) -> Option<SplitCandidate> {
    match data.attributes()[attribute].kind {
        AttrKind::Nominal => sweep_nominal(data, indices, attribute, &allow),
        AttrKind::Numeric => sweep_numeric(data, indices, attribute, &allow),
    }
}

/// Number of (instance × attribute) cells below which [`best_split`] stays
/// serial: the sweep clears small nodes in microseconds, well under the
/// ~100 µs a `std::thread::scope` setup costs.
pub const PARALLEL_SPLIT_MIN_CELLS: usize = 1 << 14;

/// Finds the best split over *all* attributes; convenience used by the
/// decision-tree learner.
///
/// On multi-core machines the per-attribute sweeps fan out over
/// [`crate::shard::map_chunks_gated`] threads once the node holds at least
/// [`PARALLEL_SPLIT_MIN_CELLS`] cells; the per-attribute results are then
/// folded in attribute order with the original comparison, so the winner
/// (ties included) is independent of the fan-out.
pub fn best_split(data: &Dataset, indices: &[usize]) -> Option<SplitCandidate> {
    let attributes: Vec<usize> = (0..data.num_attributes()).collect();
    let per_attribute: Vec<Option<SplitCandidate>> = crate::shard::map_chunks_gated(
        &attributes,
        indices.len().saturating_mul(attributes.len()),
        PARALLEL_SPLIT_MIN_CELLS,
        |chunk| {
            chunk
                .iter()
                .map(|&attribute| best_split_for_attribute(data, indices, attribute))
                .collect()
        },
    );
    let mut best: Option<SplitCandidate> = None;
    for candidate in per_attribute.into_iter().flatten() {
        let better = match &best {
            None => true,
            Some(b) => candidate.gain > b.gain + 1e-12,
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Attribute;

    fn numeric_dataset() -> Dataset {
        // label = x > 5
        let mut ds = Dataset::new(vec![Attribute::numeric("x"), Attribute::numeric("noise")]);
        for i in 0..10 {
            let x = i as f64;
            ds.push(
                vec![AttrValue::Num(x), AttrValue::Num((i % 3) as f64)],
                x > 5.0,
            );
        }
        ds
    }

    fn nominal_dataset() -> Dataset {
        let mut ds = Dataset::new(vec![Attribute::nominal("color")]);
        let red = ds.attribute_mut(0).dictionary.intern("red");
        let blue = ds.attribute_mut(0).dictionary.intern("blue");
        for _ in 0..5 {
            ds.push(vec![AttrValue::Nom(red)], true);
            ds.push(vec![AttrValue::Nom(blue)], false);
        }
        ds
    }

    fn all_indices(ds: &Dataset) -> Vec<usize> {
        (0..ds.len()).collect()
    }

    #[test]
    fn numeric_threshold_is_found() {
        let ds = numeric_dataset();
        let idx = all_indices(&ds);
        let split = best_split_for_attribute(&ds, &idx, 0).expect("split");
        // The perfect threshold lies between 5 and 6.
        match (split.atom.op, split.atom.constant) {
            (TestOp::Gt, TestConstant::Num(t)) => assert!((t - 5.5).abs() < 1e-9),
            (TestOp::Le, TestConstant::Num(t)) => assert!((t - 5.5).abs() < 1e-9),
            other => panic!("unexpected winning atom {other:?}"),
        }
        assert!(split.gain > 0.9);
    }

    #[test]
    fn noise_attribute_has_lower_gain() {
        let ds = numeric_dataset();
        let idx = all_indices(&ds);
        let informative = best_split_for_attribute(&ds, &idx, 0).unwrap();
        let noisy = best_split_for_attribute(&ds, &idx, 1).unwrap();
        assert!(informative.gain > noisy.gain);
        let overall = best_split(&ds, &idx).unwrap();
        assert_eq!(overall.atom.attribute, 0);
    }

    #[test]
    fn nominal_equality_is_found() {
        let ds = nominal_dataset();
        let idx = all_indices(&ds);
        let split = best_split_for_attribute(&ds, &idx, 0).expect("split");
        assert_eq!(split.atom.op, TestOp::Eq);
        assert!(split.gain > 0.99);
        assert_eq!(split.inside.total(), 5);
    }

    #[test]
    fn missing_values_do_not_match() {
        let atom = TestAtom {
            attribute: 0,
            op: TestOp::Le,
            constant: TestConstant::Num(10.0),
        };
        assert!(!atom.matches_value(AttrValue::Missing));
        assert!(atom.matches_value(AttrValue::Num(3.0)));
        assert!(!atom.matches_value(AttrValue::Num(30.0)));
    }

    #[test]
    fn attribute_with_only_missing_values_yields_none() {
        let mut ds = Dataset::new(vec![Attribute::numeric("x")]);
        ds.push(vec![AttrValue::Missing], true);
        ds.push(vec![AttrValue::Missing], false);
        assert!(best_split_for_attribute(&ds, &[0, 1], 0).is_none());
    }

    #[test]
    fn nan_values_are_treated_as_missing() {
        // Once upon a time a single NaN cell panicked the whole service;
        // now NaN behaves exactly like Missing: no candidate is built from
        // it and no test matches it.
        let mut with_nan = Dataset::new(vec![Attribute::numeric("x")]);
        let mut with_missing = Dataset::new(vec![Attribute::numeric("x")]);
        for i in 0..12 {
            let label = i >= 6;
            if i % 4 == 0 {
                with_nan.push(vec![AttrValue::Num(f64::NAN)], label);
                with_missing.push(vec![AttrValue::Missing], label);
            } else {
                with_nan.push(vec![AttrValue::Num(i as f64)], label);
                with_missing.push(vec![AttrValue::Num(i as f64)], label);
            }
        }
        let idx = all_indices(&with_nan);
        let a = best_split_for_attribute(&with_nan, &idx, 0).expect("split");
        let b = best_split_for_attribute(&with_missing, &idx, 0).expect("split");
        assert_eq!(a, b);

        // A column of nothing but NaN yields no candidate at all.
        let mut all_nan = Dataset::new(vec![Attribute::numeric("x")]);
        all_nan.push(vec![AttrValue::Num(f64::NAN)], true);
        all_nan.push(vec![AttrValue::Num(f64::NAN)], false);
        assert!(best_split_for_attribute(&all_nan, &[0, 1], 0).is_none());
    }

    #[test]
    fn infinite_values_produce_no_equality_candidate() {
        // `= inf` degenerates (eps = inf): it would match every *finite*
        // value and not inf itself — an inverted predicate.  With the
        // search restricted to equality tests, the perfectly-separating
        // (but inverted) Eq(inf) must not be offered; a finite equality
        // wins instead, and its partition agrees with its own atom.
        let mut ds = Dataset::new(vec![Attribute::numeric("x")]);
        ds.push(vec![AttrValue::Num(1.0)], false);
        ds.push(vec![AttrValue::Num(2.0)], true);
        ds.push(vec![AttrValue::Num(f64::INFINITY)], true);
        ds.push(vec![AttrValue::Num(f64::NEG_INFINITY)], false);
        let idx = all_indices(&ds);
        let split = best_split_for_attribute_filtered(&ds, &idx, 0, |atom| atom.op == TestOp::Eq)
            .expect("a finite equality candidate exists");
        match split.atom.constant {
            TestConstant::Num(c) => assert!(c.is_finite(), "non-finite Eq constant {c}"),
            other => panic!("unexpected constant {other:?}"),
        }
        let inside = idx
            .iter()
            .filter(|&&i| split.atom.matches_row(&ds, i))
            .count();
        assert_eq!(inside, split.inside.total());
        // The ordering tests still see the infinite values: an unrestricted
        // search separates the classes perfectly with a threshold.
        let unrestricted = best_split_for_attribute(&ds, &idx, 0).unwrap();
        assert!(unrestricted.gain > 0.99);
    }

    #[test]
    fn subset_of_indices_is_respected() {
        let ds = numeric_dataset();
        // Only positives considered: any non-vacuous split has zero gain.
        let idx: Vec<usize> = (6..10).collect();
        let split = best_split_for_attribute(&ds, &idx, 0).unwrap();
        assert!(split.gain.abs() < 1e-9);
        assert_eq!(split.inside.total() + split.outside.total(), 4);
    }

    #[test]
    fn filtered_search_respects_the_filter() {
        let ds = numeric_dataset();
        let idx = all_indices(&ds);
        // Only allow equality tests; the perfect threshold split is excluded.
        let split = best_split_for_attribute_filtered(&ds, &idx, 0, |atom| atom.op == TestOp::Eq)
            .expect("split");
        assert_eq!(split.atom.op, TestOp::Eq);
        let unrestricted = best_split_for_attribute(&ds, &idx, 0).unwrap();
        assert!(unrestricted.gain >= split.gain);
        // A filter that rejects everything yields no candidate.
        assert!(best_split_for_attribute_filtered(&ds, &idx, 0, |_| false).is_none());
    }

    #[test]
    fn sweep_matches_the_naive_oracle_on_crafted_cases() {
        // Hand-picked shapes: ties, duplicate runs, missing values, NaN,
        // negative zero, a subset of indices and an equality-only filter.
        let mut ds = Dataset::new(vec![Attribute::numeric("x")]);
        let values = [
            3.0,
            1.0,
            3.0,
            -0.0,
            0.0,
            7.5,
            f64::NAN,
            1.0,
            3.0,
            -2.0,
            7.5,
            7.5,
        ];
        for (i, &v) in values.iter().enumerate() {
            ds.push(vec![AttrValue::Num(v)], i % 3 != 0);
        }
        ds.push(vec![AttrValue::Missing], true);
        let idx = all_indices(&ds);
        assert_eq!(
            best_split_for_attribute(&ds, &idx, 0),
            crate::oracle::best_split_for_attribute(&ds, &idx, 0),
        );
        let subset: Vec<usize> = idx.iter().copied().filter(|i| i % 2 == 0).collect();
        assert_eq!(
            best_split_for_attribute(&ds, &subset, 0),
            crate::oracle::best_split_for_attribute(&ds, &subset, 0),
        );
        let allow = |atom: &TestAtom| atom.matches_value(AttrValue::Num(3.0));
        assert_eq!(
            best_split_for_attribute_filtered(&ds, &idx, 0, allow),
            crate::oracle::best_split_for_attribute_filtered(&ds, &idx, 0, allow),
        );
    }

    #[test]
    fn display_renders_names() {
        let ds = nominal_dataset();
        let idx = all_indices(&ds);
        let split = best_split_for_attribute(&ds, &idx, 0).unwrap();
        let text = format!("{}", split.atom.display(&ds));
        assert!(text.starts_with("color = "));
    }
}
