//! Per-attribute best-predicate (split) search.
//!
//! For a given attribute the search considers atomic tests of the form
//! `attribute op constant`:
//!
//! * nominal attributes: equality with each observed dictionary value
//!   (`= v`), as in the paper ("for nominal attributes, the only operator it
//!   considers is equality");
//! * numeric attributes: `<= t` and `> t` for C4.5-style candidate thresholds
//!   (mid-points between consecutive distinct observed values), plus equality
//!   with each distinct value so that explanations such as
//!   `numinstances <= 12` and `blocksize = 256MB` can both be produced.
//!
//! Instances with a missing value for the attribute never satisfy a test on
//! that attribute; they count toward the "outside" partition, mirroring how
//! PerfXplain treats non-applicable comparison features.

use crate::dataset::{AttrKind, AttrValue, Dataset};
use crate::entropy::{information_gain, CellCounts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operator of an atomic test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestOp {
    /// Equality (numeric or nominal).
    Eq,
    /// `<=` on a numeric attribute.
    Le,
    /// `>` on a numeric attribute.
    Gt,
}

impl fmt::Display for TestOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestOp::Eq => write!(f, "="),
            TestOp::Le => write!(f, "<="),
            TestOp::Gt => write!(f, ">"),
        }
    }
}

/// The constant of an atomic test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TestConstant {
    /// Numeric threshold or value.
    Num(f64),
    /// Interned nominal value.
    Nom(u32),
}

/// An atomic test `attribute op constant`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestAtom {
    /// Index of the attribute in the dataset schema.
    pub attribute: usize,
    /// Operator.
    pub op: TestOp,
    /// Constant.
    pub constant: TestConstant,
}

impl TestAtom {
    /// Evaluates the test on a single value of the attribute.
    /// Missing values never satisfy a test.
    pub fn matches_value(&self, value: AttrValue) -> bool {
        match (self.op, self.constant, value) {
            (_, _, AttrValue::Missing) => false,
            (TestOp::Eq, TestConstant::Num(c), AttrValue::Num(v)) => {
                (v - c).abs() <= f64::EPSILON * c.abs().max(1.0)
            }
            (TestOp::Le, TestConstant::Num(c), AttrValue::Num(v)) => v <= c,
            (TestOp::Gt, TestConstant::Num(c), AttrValue::Num(v)) => v > c,
            (TestOp::Eq, TestConstant::Nom(c), AttrValue::Nom(v)) => v == c,
            // Type mismatches (e.g. numeric test against a nominal value)
            // never match; they indicate schema drift, not an error.
            _ => false,
        }
    }

    /// Evaluates the test on row `i` of `data`.
    pub fn matches_row(&self, data: &Dataset, i: usize) -> bool {
        self.matches_value(data.value(i, self.attribute))
    }

    /// Renders the test against a dataset schema (resolving nominal values).
    pub fn display<'a>(&'a self, data: &'a Dataset) -> TestAtomDisplay<'a> {
        TestAtomDisplay { atom: self, data }
    }
}

/// Helper for rendering a [`TestAtom`] with resolved attribute and value
/// names.
pub struct TestAtomDisplay<'a> {
    atom: &'a TestAtom,
    data: &'a Dataset,
}

impl fmt::Display for TestAtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let attr = &self.data.attributes()[self.atom.attribute];
        write!(f, "{} {} ", attr.name, self.atom.op)?;
        match self.atom.constant {
            TestConstant::Num(v) => write!(f, "{v}"),
            TestConstant::Nom(id) => {
                write!(f, "{}", attr.dictionary.resolve(id).unwrap_or("<unknown>"))
            }
        }
    }
}

/// A candidate split: the best atomic test found for one attribute together
/// with its information gain and the partition counts it induces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// The winning test.
    pub atom: TestAtom,
    /// Information gain of the test over the considered instances.
    pub gain: f64,
    /// Counts of instances satisfying the test.
    pub inside: CellCounts,
    /// Counts of instances not satisfying the test (including missing).
    pub outside: CellCounts,
}

impl SplitCandidate {
    /// Fraction of considered instances that satisfy the test.
    pub fn coverage(&self) -> f64 {
        let total = self.inside.total() + self.outside.total();
        if total == 0 {
            0.0
        } else {
            self.inside.total() as f64 / total as f64
        }
    }

    /// Fraction of positive instances among those satisfying the test
    /// (`None` if nothing satisfies it).
    pub fn inside_precision(&self) -> Option<f64> {
        if self.inside.total() == 0 {
            None
        } else {
            Some(self.inside.positive as f64 / self.inside.total() as f64)
        }
    }
}

fn evaluate_atom(data: &Dataset, indices: &[usize], atom: TestAtom) -> SplitCandidate {
    let mut inside = CellCounts::default();
    let mut outside = CellCounts::default();
    for &i in indices {
        let cell = if atom.matches_row(data, i) {
            &mut inside
        } else {
            &mut outside
        };
        if data.label(i) {
            cell.positive += 1;
        } else {
            cell.negative += 1;
        }
    }
    SplitCandidate {
        atom,
        gain: information_gain(inside, outside),
        inside,
        outside,
    }
}

/// Finds the atomic test on `attribute` with the highest information gain
/// over the instances listed in `indices`.
///
/// Returns `None` when the attribute has no observed (non-missing) values
/// among the instances, or when every candidate test yields zero gain *and*
/// either never matches or always matches (i.e. the test is vacuous).
pub fn best_split_for_attribute(
    data: &Dataset,
    indices: &[usize],
    attribute: usize,
) -> Option<SplitCandidate> {
    best_split_for_attribute_filtered(data, indices, attribute, |_| true)
}

/// Like [`best_split_for_attribute`] but only considers candidate tests
/// accepted by `allow`.
///
/// PerfXplain uses the filter to enforce *applicability*: an explanation must
/// hold for the pair of interest, so only tests that the pair of interest
/// satisfies are eligible.
pub fn best_split_for_attribute_filtered(
    data: &Dataset,
    indices: &[usize],
    attribute: usize,
    allow: impl Fn(&TestAtom) -> bool,
) -> Option<SplitCandidate> {
    let kind = data.attributes()[attribute].kind;
    let mut candidates: Vec<TestAtom> = Vec::new();

    match kind {
        AttrKind::Nominal => {
            let mut seen: Vec<u32> = Vec::new();
            for &i in indices {
                if let AttrValue::Nom(v) = data.value(i, attribute) {
                    if !seen.contains(&v) {
                        seen.push(v);
                    }
                }
            }
            for v in seen {
                candidates.push(TestAtom {
                    attribute,
                    op: TestOp::Eq,
                    constant: TestConstant::Nom(v),
                });
            }
        }
        AttrKind::Numeric => {
            let mut values: Vec<f64> = indices
                .iter()
                .filter_map(|&i| data.value(i, attribute).as_num())
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature value"));
            values.dedup();
            for window in values.windows(2) {
                let threshold = (window[0] + window[1]) / 2.0;
                candidates.push(TestAtom {
                    attribute,
                    op: TestOp::Le,
                    constant: TestConstant::Num(threshold),
                });
                candidates.push(TestAtom {
                    attribute,
                    op: TestOp::Gt,
                    constant: TestConstant::Num(threshold),
                });
            }
            for v in values {
                candidates.push(TestAtom {
                    attribute,
                    op: TestOp::Eq,
                    constant: TestConstant::Num(v),
                });
            }
        }
    }

    let mut best: Option<SplitCandidate> = None;
    for atom in candidates {
        if !allow(&atom) {
            continue;
        }
        let candidate = evaluate_atom(data, indices, atom);
        // A vacuous test (matches nothing) can never be part of an applicable
        // explanation; skip it.
        if candidate.inside.total() == 0 {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                candidate.gain > b.gain + 1e-12
                    || ((candidate.gain - b.gain).abs() <= 1e-12
                        && candidate.inside.total() > b.inside.total())
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

/// Finds the best split over *all* attributes; convenience used by the
/// decision-tree learner.
pub fn best_split(data: &Dataset, indices: &[usize]) -> Option<SplitCandidate> {
    let mut best: Option<SplitCandidate> = None;
    for attribute in 0..data.num_attributes() {
        if let Some(candidate) = best_split_for_attribute(data, indices, attribute) {
            let better = match &best {
                None => true,
                Some(b) => candidate.gain > b.gain + 1e-12,
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Attribute;

    fn numeric_dataset() -> Dataset {
        // label = x > 5
        let mut ds = Dataset::new(vec![Attribute::numeric("x"), Attribute::numeric("noise")]);
        for i in 0..10 {
            let x = i as f64;
            ds.push(
                vec![AttrValue::Num(x), AttrValue::Num((i % 3) as f64)],
                x > 5.0,
            );
        }
        ds
    }

    fn nominal_dataset() -> Dataset {
        let mut ds = Dataset::new(vec![Attribute::nominal("color")]);
        let red = ds.attribute_mut(0).dictionary.intern("red");
        let blue = ds.attribute_mut(0).dictionary.intern("blue");
        for _ in 0..5 {
            ds.push(vec![AttrValue::Nom(red)], true);
            ds.push(vec![AttrValue::Nom(blue)], false);
        }
        ds
    }

    fn all_indices(ds: &Dataset) -> Vec<usize> {
        (0..ds.len()).collect()
    }

    #[test]
    fn numeric_threshold_is_found() {
        let ds = numeric_dataset();
        let idx = all_indices(&ds);
        let split = best_split_for_attribute(&ds, &idx, 0).expect("split");
        // The perfect threshold lies between 5 and 6.
        match (split.atom.op, split.atom.constant) {
            (TestOp::Gt, TestConstant::Num(t)) => assert!((t - 5.5).abs() < 1e-9),
            (TestOp::Le, TestConstant::Num(t)) => assert!((t - 5.5).abs() < 1e-9),
            other => panic!("unexpected winning atom {other:?}"),
        }
        assert!(split.gain > 0.9);
    }

    #[test]
    fn noise_attribute_has_lower_gain() {
        let ds = numeric_dataset();
        let idx = all_indices(&ds);
        let informative = best_split_for_attribute(&ds, &idx, 0).unwrap();
        let noisy = best_split_for_attribute(&ds, &idx, 1).unwrap();
        assert!(informative.gain > noisy.gain);
        let overall = best_split(&ds, &idx).unwrap();
        assert_eq!(overall.atom.attribute, 0);
    }

    #[test]
    fn nominal_equality_is_found() {
        let ds = nominal_dataset();
        let idx = all_indices(&ds);
        let split = best_split_for_attribute(&ds, &idx, 0).expect("split");
        assert_eq!(split.atom.op, TestOp::Eq);
        assert!(split.gain > 0.99);
        assert_eq!(split.inside.total(), 5);
    }

    #[test]
    fn missing_values_do_not_match() {
        let atom = TestAtom {
            attribute: 0,
            op: TestOp::Le,
            constant: TestConstant::Num(10.0),
        };
        assert!(!atom.matches_value(AttrValue::Missing));
        assert!(atom.matches_value(AttrValue::Num(3.0)));
        assert!(!atom.matches_value(AttrValue::Num(30.0)));
    }

    #[test]
    fn attribute_with_only_missing_values_yields_none() {
        let mut ds = Dataset::new(vec![Attribute::numeric("x")]);
        ds.push(vec![AttrValue::Missing], true);
        ds.push(vec![AttrValue::Missing], false);
        assert!(best_split_for_attribute(&ds, &[0, 1], 0).is_none());
    }

    #[test]
    fn subset_of_indices_is_respected() {
        let ds = numeric_dataset();
        // Only positives considered: any non-vacuous split has zero gain.
        let idx: Vec<usize> = (6..10).collect();
        let split = best_split_for_attribute(&ds, &idx, 0).unwrap();
        assert!(split.gain.abs() < 1e-9);
        assert_eq!(split.inside.total() + split.outside.total(), 4);
    }

    #[test]
    fn filtered_search_respects_the_filter() {
        let ds = numeric_dataset();
        let idx = all_indices(&ds);
        // Only allow equality tests; the perfect threshold split is excluded.
        let split = best_split_for_attribute_filtered(&ds, &idx, 0, |atom| atom.op == TestOp::Eq)
            .expect("split");
        assert_eq!(split.atom.op, TestOp::Eq);
        let unrestricted = best_split_for_attribute(&ds, &idx, 0).unwrap();
        assert!(unrestricted.gain >= split.gain);
        // A filter that rejects everything yields no candidate.
        assert!(best_split_for_attribute_filtered(&ds, &idx, 0, |_| false).is_none());
    }

    #[test]
    fn display_renders_names() {
        let ds = nominal_dataset();
        let idx = all_indices(&ds);
        let split = best_split_for_attribute(&ds, &idx, 0).unwrap();
        let text = format!("{}", split.atom.display(&ds));
        assert!(text.starts_with("color = "));
    }
}
