//! Length-prefixed binary encoding primitives.
//!
//! The persistent snapshot store serializes encoded column segments as
//! binary files: parsing JSON back into a million records costs orders of
//! magnitude more than memcpy-ing columns off disk, and the hot cold-start
//! path must never pay serde's text round trip.  This module provides the
//! two halves of that format:
//!
//! * [`ByteWriter`] — an append-only buffer with fixed-width little-endian
//!   primitives and length-prefixed strings/blocks.
//! * [`ByteReader`] — the matching cursor whose every read is checked:
//!   malformed or truncated input surfaces a typed [`CodecError`], never a
//!   panic and never an out-of-bounds slice.
//!
//! All multi-byte values are little-endian.  Strings and blocks are
//! prefixed with their byte length (`u32` for strings, `u64` for blocks),
//! so a reader can skip a block it does not understand and a truncated
//! file is detected at the first read past the end.

use std::fmt;

/// Decoding failure: the input is shorter than a read requires, or a read
/// value is structurally invalid (bad tag, bad UTF-8, id out of range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// A read completed but the value is invalid for its context.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => write!(
                f,
                "truncated input: needed {needed} more byte(s), {available} available"
            ),
            CodecError::Invalid(message) => write!(f, "invalid encoding: {message}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience result alias for decoding.
pub type CodecResult<T> = Result<T, CodecError>;

/// An append-only binary buffer (all primitives little-endian).
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates an empty writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (little-endian).
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_u32(value.len() as u32);
        self.buf.extend_from_slice(value.as_bytes());
    }

    /// Appends a `u64`-length-prefixed block produced by `fill`.
    ///
    /// The block length is patched in after `fill` runs, so the caller
    /// writes the block body with the ordinary `put_*` methods.
    pub fn put_block(&mut self, fill: impl FnOnce(&mut ByteWriter)) {
        let prefix_at = self.buf.len();
        self.put_u64(0);
        let body_at = self.buf.len();
        fill(self);
        let body_len = (self.buf.len() - body_at) as u64;
        self.buf[prefix_at..body_at].copy_from_slice(&body_len.to_le_bytes());
    }
}

/// A checked cursor over a byte slice (the counterpart of [`ByteWriter`]).
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `len` raw bytes.
    pub fn take(&mut self, len: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < len {
            return Err(CodecError::Truncated {
                needed: len,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and checks it fits a `usize` count of at least
    /// one-byte items in the remaining input — a cheap sanity bound that
    /// turns a corrupt length into [`CodecError::Invalid`] instead of an
    /// attempted multi-exabyte allocation.
    pub fn get_count(&mut self) -> CodecResult<usize> {
        let raw = self.get_u64()?;
        if raw > self.remaining() as u64 {
            return Err(CodecError::Invalid(format!(
                "count {raw} exceeds the {} remaining byte(s)",
                self.remaining()
            )));
        }
        Ok(raw as usize)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<&'a str> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|e| CodecError::Invalid(format!("string is not UTF-8: {e}")))
    }

    /// Reads a `u64`-length-prefixed block, returning a reader over exactly
    /// the block body (the outer cursor advances past it).
    pub fn get_block(&mut self) -> CodecResult<ByteReader<'a>> {
        let len = self.get_count()?;
        Ok(ByteReader::new(self.take(len)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-1.5e300);
        w.put_str("héllo");
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -1.5e300);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_str().unwrap(), "");
        assert!(r.is_exhausted());
    }

    #[test]
    fn blocks_are_length_prefixed_and_skippable() {
        let mut w = ByteWriter::new();
        w.put_block(|w| {
            w.put_str("inner");
            w.put_u32(9);
        });
        w.put_u8(42);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let mut block = r.get_block().unwrap();
        assert_eq!(block.get_str().unwrap(), "inner");
        assert_eq!(block.get_u32().unwrap(), 9);
        assert!(block.is_exhausted());
        // The outer cursor is already past the block.
        assert_eq!(r.get_u8().unwrap(), 42);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut w = ByteWriter::new();
        w.put_str("abcdef");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(matches!(
                r.get_str(),
                Err(CodecError::Truncated { .. }) | Err(CodecError::Invalid(_))
            ));
        }
    }

    #[test]
    fn corrupt_lengths_do_not_allocate() {
        // A count claiming more items than there are bytes left must be
        // rejected before any allocation sized by it.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_count(), Err(CodecError::Invalid(_))));

        // Bad UTF-8 is Invalid, not a panic.
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_raw(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(CodecError::Invalid(_))));
    }
}
