//! Length-prefixed binary encoding primitives.
//!
//! The persistent snapshot store serializes encoded column segments as
//! binary files: parsing JSON back into a million records costs orders of
//! magnitude more than memcpy-ing columns off disk, and the hot cold-start
//! path must never pay serde's text round trip.  This module provides the
//! two halves of that format:
//!
//! * [`ByteWriter`] — an append-only buffer with fixed-width little-endian
//!   primitives and length-prefixed strings/blocks.
//! * [`ByteReader`] — the matching cursor whose every read is checked:
//!   malformed or truncated input surfaces a typed [`CodecError`], never a
//!   panic and never an out-of-bounds slice.
//!
//! All multi-byte values are little-endian.  Strings and blocks are
//! prefixed with their byte length (`u32` for strings, `u64` for blocks),
//! so a reader can skip a block it does not understand and a truncated
//! file is detected at the first read past the end.
//!
//! # Bit-level compression primitives
//!
//! On top of the byte-level framing the module provides the three
//! primitives the v2 column segment format is built from:
//!
//! * **Bit packing** ([`ByteWriter::put_packed`] / [`ByteReader::get_packed`])
//!   — `n` values of a fixed bit width laid out LSB-first, the form
//!   dictionary ids are stored in (width = ⌈log₂(dictionary len)⌉,
//!   [`bits_needed`]).
//! * **Bitmaps** ([`ByteWriter::put_bitmap`] / [`ByteReader::get_bitmap`])
//!   — one bit per row, used for null/missing presence and for the
//!   numeric-vs-nominal kind split of mixed columns.
//! * **Numeric streams** ([`encode_f64_stream`] / [`decode_f64_stream`])
//!   — frame-of-reference or delta + frame-of-reference coding for columns
//!   whose values are integral `f64`s (the common case for sizes, counts
//!   and millisecond durations), falling back to raw IEEE-754 bit patterns
//!   whenever packing would not be strictly smaller — so NaN, ±inf, `-0.0`
//!   and fractional values always round-trip **bit-exactly**.

use crate::hash::FxHasher;
use std::fmt;
use std::hash::Hasher;

/// Decoding failure: the input is shorter than a read requires, or a read
/// value is structurally invalid (bad tag, bad UTF-8, id out of range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// A read completed but the value is invalid for its context.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => write!(
                f,
                "truncated input: needed {needed} more byte(s), {available} available"
            ),
            CodecError::Invalid(message) => write!(f, "invalid encoding: {message}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience result alias for decoding.
pub type CodecResult<T> = Result<T, CodecError>;

/// Number of bits needed to represent `value` (0 for 0).
///
/// A dictionary of `n` entries packs its ids at `bits_needed(n - 1)` bits;
/// a dictionary of one entry (or none) needs zero bits per id.
pub fn bits_needed(value: u64) -> u32 {
    u64::BITS - value.leading_zeros()
}

/// Bytes a packed stream of `count` values at `width` bits occupies.
pub fn packed_len(count: usize, width: u32) -> usize {
    ((count as u128 * width as u128).div_ceil(8)) as usize
}

/// Bytes a bitmap of `count` bits occupies.
pub fn bitmap_len(count: usize) -> usize {
    count.div_ceil(8)
}

/// An append-only binary buffer (all primitives little-endian).
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates an empty writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (little-endian).
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_u32(value.len() as u32);
        self.buf.extend_from_slice(value.as_bytes());
    }

    /// Appends a `u64`-length-prefixed block produced by `fill`.
    ///
    /// The block length is patched in after `fill` runs, so the caller
    /// writes the block body with the ordinary `put_*` methods.
    pub fn put_block(&mut self, fill: impl FnOnce(&mut ByteWriter)) {
        let prefix_at = self.buf.len();
        self.put_u64(0);
        let body_at = self.buf.len();
        fill(self);
        let body_len = (self.buf.len() - body_at) as u64;
        self.buf[prefix_at..body_at].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Appends a checksummed block: a `u32` body length, the FxHash-64
    /// fingerprint of the body, then the body produced by `fill`.  The
    /// matching [`ByteReader::get_checksummed_block`] verifies the
    /// fingerprint before handing the body out, so a flipped bit anywhere
    /// in the block surfaces as [`CodecError::Invalid`] instead of a
    /// silently corrupt decode — the framing the durable append journal
    /// stores its record batches in.
    pub fn put_checksummed_block(&mut self, fill: impl FnOnce(&mut ByteWriter)) {
        let prefix_at = self.buf.len();
        self.put_u32(0);
        self.put_u64(0);
        let body_at = self.buf.len();
        fill(self);
        let body_len = (self.buf.len() - body_at) as u32;
        let mut hasher = FxHasher::default();
        hasher.write(&self.buf[body_at..]);
        let fingerprint = hasher.finish();
        self.buf[prefix_at..prefix_at + 4].copy_from_slice(&body_len.to_le_bytes());
        self.buf[prefix_at + 4..body_at].copy_from_slice(&fingerprint.to_le_bytes());
    }

    /// Appends `values` bit-packed at `width` bits each, LSB-first within
    /// each byte, padded with zero bits to the next byte boundary.  Every
    /// value must fit in `width` bits (`width == 0` writes nothing and is
    /// only valid when every value is 0).
    pub fn put_packed(&mut self, values: &[u64], width: u32) {
        debug_assert!(width <= 64, "pack width {width} exceeds 64");
        if width == 0 {
            debug_assert!(values.iter().all(|&v| v == 0));
            return;
        }
        self.buf.reserve(packed_len(values.len(), width));
        let mut acc: u128 = 0;
        let mut bits: u32 = 0;
        for &value in values {
            debug_assert!(width == 64 || value < (1u64 << width));
            acc |= (value as u128) << bits;
            bits += width;
            while bits >= 8 {
                self.buf.push((acc & 0xff) as u8);
                acc >>= 8;
                bits -= 8;
            }
        }
        if bits > 0 {
            self.buf.push((acc & 0xff) as u8);
        }
    }

    /// Appends `bits` as a bitmap, LSB-first within each byte, padded with
    /// zero bits to the next byte boundary.
    pub fn put_bitmap(&mut self, bits: &[bool]) {
        self.buf.reserve(bitmap_len(bits.len()));
        for chunk in bits.chunks(8) {
            let mut byte = 0u8;
            for (i, &bit) in chunk.iter().enumerate() {
                byte |= (bit as u8) << i;
            }
            self.buf.push(byte);
        }
    }
}

/// A checked cursor over a byte slice (the counterpart of [`ByteWriter`]).
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `len` raw bytes.
    pub fn take(&mut self, len: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < len {
            return Err(CodecError::Truncated {
                needed: len,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and checks it fits a `usize` count of at least
    /// one-byte items in the remaining input — a cheap sanity bound that
    /// turns a corrupt length into [`CodecError::Invalid`] instead of an
    /// attempted multi-exabyte allocation.
    pub fn get_count(&mut self) -> CodecResult<usize> {
        let raw = self.get_u64()?;
        if raw > self.remaining() as u64 {
            return Err(CodecError::Invalid(format!(
                "count {raw} exceeds the {} remaining byte(s)",
                self.remaining()
            )));
        }
        Ok(raw as usize)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<&'a str> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|e| CodecError::Invalid(format!("string is not UTF-8: {e}")))
    }

    /// Reads a `u64`-length-prefixed block, returning a reader over exactly
    /// the block body (the outer cursor advances past it).
    pub fn get_block(&mut self) -> CodecResult<ByteReader<'a>> {
        let len = self.get_count()?;
        Ok(ByteReader::new(self.take(len)?))
    }

    /// Reads a checksummed block written by
    /// [`ByteWriter::put_checksummed_block`]: the `u32` body length and the
    /// `u64` FxHash-64 fingerprint are consumed, the body is fingerprinted
    /// and compared, and only a verified body is returned (as a reader over
    /// exactly the block; the outer cursor advances past it).  A length
    /// pointing past the input is [`CodecError::Truncated`]; a fingerprint
    /// mismatch is [`CodecError::Invalid`].  No allocation is sized by the
    /// untrusted length — the body is a borrowed slice.
    pub fn get_checksummed_block(&mut self) -> CodecResult<ByteReader<'a>> {
        let len = self.get_u32()? as usize;
        let expected = self.get_u64()?;
        let body = self.take(len)?;
        let mut hasher = FxHasher::default();
        hasher.write(body);
        let actual = hasher.finish();
        if actual != expected {
            return Err(CodecError::Invalid(format!(
                "checksummed block fingerprint mismatch: stored {expected:016x}, \
                 computed {actual:016x}"
            )));
        }
        Ok(ByteReader::new(body))
    }

    /// Reads `count` values bit-packed at `width` bits each (the inverse of
    /// [`ByteWriter::put_packed`]).  A width over 64 is [`CodecError::Invalid`];
    /// too few bytes is [`CodecError::Truncated`].  The output allocation is
    /// only made after the packed bytes were actually consumed, so a corrupt
    /// count cannot provoke an allocation larger than ~8× the input.
    pub fn get_packed(&mut self, count: usize, width: u32) -> CodecResult<Vec<u64>> {
        if width > 64 {
            return Err(CodecError::Invalid(format!(
                "impossible bit width {width} (values are at most 64 bits)"
            )));
        }
        if width == 0 {
            return Ok(vec![0; count]);
        }
        let bytes = self.take(packed_len(count, width))?;
        let mask: u64 = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut out = Vec::with_capacity(count);
        let mut acc: u128 = 0;
        let mut bits: u32 = 0;
        let mut iter = bytes.iter();
        for _ in 0..count {
            while bits < width {
                acc |= (*iter.next().expect("packed_len bounds the reads") as u128) << bits;
                bits += 8;
            }
            out.push((acc as u64) & mask);
            acc >>= width;
            bits -= width;
        }
        Ok(out)
    }

    /// Reads a bitmap of `count` bits (the inverse of
    /// [`ByteWriter::put_bitmap`]).  A bitmap shorter than `count` bits is
    /// [`CodecError::Truncated`]; the output allocation is only made after
    /// the bitmap bytes were actually consumed.
    pub fn get_bitmap(&mut self, count: usize) -> CodecResult<Vec<bool>> {
        let bytes = self.take(bitmap_len(count))?;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            out.push(bytes[i / 8] & (1 << (i % 8)) != 0);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Numeric stream codec (frame-of-reference / delta / raw)
// ---------------------------------------------------------------------------

/// Tags of the numeric stream encodings.
const NUM_RAW: u8 = 0;
const NUM_FOR: u8 = 1;
const NUM_DELTA: u8 = 2;

/// Returns the values as exact `i64`s when every one is a finite, integral
/// `f64` that round-trips bit-exactly through `i64` — the precondition for
/// frame-of-reference and delta coding.  NaN, ±inf, `-0.0` (whose bit
/// pattern `0 as f64` cannot reproduce), fractional values and magnitudes
/// outside `i64` all disqualify the column.
fn integral_values(values: &[f64]) -> Option<Vec<i64>> {
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        if !v.is_finite() || v < i64::MIN as f64 || v >= 9_223_372_036_854_775_808.0 {
            return None;
        }
        let i = v as i64;
        if (i as f64).to_bits() != v.to_bits() {
            return None;
        }
        out.push(i);
    }
    Some(out)
}

/// Appends `values` as a self-describing compressed numeric stream: a tag
/// byte, then frame-of-reference (`base + packed offsets`), delta +
/// frame-of-reference (`first, min delta + packed delta offsets`) or raw
/// IEEE-754 bit patterns — whichever is smallest.  Raw wins whenever the
/// values are not integral `i64`s (NaN, ±inf, `-0.0`, fractions, huge
/// magnitudes) or the packed forms would not actually save bytes, so the
/// stream always round-trips **bit-exactly** through
/// [`decode_f64_stream`].
pub fn encode_f64_stream(writer: &mut ByteWriter, values: &[f64]) {
    enum Plan {
        Raw,
        For { base: i64, width: u32 },
        Delta { min_d: i64, width: u32 },
    }
    let n = values.len();
    // Choose the smallest encoding; ties go to the earlier (simpler) plan.
    let mut best = (Plan::Raw, 8 * n);
    let ints = integral_values(values);
    if let Some(ints) = &ints {
        if let (Some(&min), Some(&max)) = (ints.iter().min(), ints.iter().max()) {
            let width = bits_needed((max as i128 - min as i128) as u64);
            let cost = 8 + 1 + packed_len(n, width);
            if cost < best.1 {
                best = (Plan::For { base: min, width }, cost);
            }
            if n >= 2 {
                let mut bounds: Option<(i64, i64)> = Some((i64::MAX, i64::MIN));
                for pair in ints.windows(2) {
                    bounds = match (bounds, pair[1].checked_sub(pair[0])) {
                        (Some((lo, hi)), Some(d)) => Some((lo.min(d), hi.max(d))),
                        _ => None,
                    };
                    if bounds.is_none() {
                        break;
                    }
                }
                if let Some((min_d, max_d)) = bounds {
                    let width = bits_needed((max_d as i128 - min_d as i128) as u64);
                    let cost = 8 + 8 + 1 + packed_len(n - 1, width);
                    if cost < best.1 {
                        best = (Plan::Delta { min_d, width }, cost);
                    }
                }
            }
        }
    }
    match best.0 {
        Plan::Delta { min_d, width } => {
            let ints = ints.as_ref().expect("delta plan implies integral values");
            writer.put_u8(NUM_DELTA);
            writer.put_u64(ints[0] as u64);
            writer.put_u64(min_d as u64);
            writer.put_u8(width as u8);
            let offsets: Vec<u64> = ints
                .windows(2)
                .map(|pair| ((pair[1] as i128 - pair[0] as i128) - min_d as i128) as u64)
                .collect();
            writer.put_packed(&offsets, width);
        }
        Plan::For { base, width } => {
            let ints = ints.as_ref().expect("FoR plan implies integral values");
            writer.put_u8(NUM_FOR);
            writer.put_u64(base as u64);
            writer.put_u8(width as u8);
            let offsets: Vec<u64> = ints
                .iter()
                .map(|&v| (v as i128 - base as i128) as u64)
                .collect();
            writer.put_packed(&offsets, width);
        }
        Plan::Raw => {
            writer.put_u8(NUM_RAW);
            for &v in values {
                writer.put_f64(v);
            }
        }
    }
}

/// Decodes a numeric stream of `count` values written by
/// [`encode_f64_stream`].  Every read is checked: unknown tags, impossible
/// bit widths and values overflowing `i64` are [`CodecError::Invalid`];
/// truncated payloads are [`CodecError::Truncated`].  The caller bounds
/// `count` (in the column format it is at most the row count, which is
/// itself bounded by the presence bitmap's consumed bytes).
pub fn decode_f64_stream(reader: &mut ByteReader<'_>, count: usize) -> CodecResult<Vec<f64>> {
    let overflow =
        || CodecError::Invalid("numeric stream value overflows the i64 range".to_string());
    match reader.get_u8()? {
        NUM_RAW => {
            let mut out = Vec::with_capacity(count.min(reader.remaining() / 8 + 1));
            for _ in 0..count {
                out.push(reader.get_f64()?);
            }
            Ok(out)
        }
        NUM_FOR => {
            let base = reader.get_u64()? as i64;
            let width = reader.get_u8()? as u32;
            let offsets = reader.get_packed(count, width)?;
            let mut out = Vec::with_capacity(count);
            for offset in offsets {
                let v = i64::try_from(base as i128 + offset as i128).map_err(|_| overflow())?;
                out.push(v as f64);
            }
            Ok(out)
        }
        NUM_DELTA => {
            if count == 0 {
                return Err(CodecError::Invalid(
                    "delta-coded numeric stream with zero values".to_string(),
                ));
            }
            let first = reader.get_u64()? as i64;
            let min_d = reader.get_u64()? as i64;
            let width = reader.get_u8()? as u32;
            let offsets = reader.get_packed(count - 1, width)?;
            let mut out = Vec::with_capacity(count);
            let mut prev = first;
            out.push(prev as f64);
            for offset in offsets {
                let delta = min_d as i128 + offset as i128;
                prev = i64::try_from(prev as i128 + delta).map_err(|_| overflow())?;
                out.push(prev as f64);
            }
            Ok(out)
        }
        tag => Err(CodecError::Invalid(format!(
            "unknown numeric stream tag {tag}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-1.5e300);
        w.put_str("héllo");
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -1.5e300);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_str().unwrap(), "");
        assert!(r.is_exhausted());
    }

    #[test]
    fn blocks_are_length_prefixed_and_skippable() {
        let mut w = ByteWriter::new();
        w.put_block(|w| {
            w.put_str("inner");
            w.put_u32(9);
        });
        w.put_u8(42);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let mut block = r.get_block().unwrap();
        assert_eq!(block.get_str().unwrap(), "inner");
        assert_eq!(block.get_u32().unwrap(), 9);
        assert!(block.is_exhausted());
        // The outer cursor is already past the block.
        assert_eq!(r.get_u8().unwrap(), 42);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut w = ByteWriter::new();
        w.put_str("abcdef");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(matches!(
                r.get_str(),
                Err(CodecError::Truncated { .. }) | Err(CodecError::Invalid(_))
            ));
        }
    }

    #[test]
    fn corrupt_lengths_do_not_allocate() {
        // A count claiming more items than there are bytes left must be
        // rejected before any allocation sized by it.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_count(), Err(CodecError::Invalid(_))));

        // Bad UTF-8 is Invalid, not a panic.
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_raw(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn checksummed_blocks_round_trip_and_detect_every_flip() {
        let mut w = ByteWriter::new();
        w.put_checksummed_block(|w| {
            w.put_str("payload");
            w.put_u64(1234);
        });
        w.put_u8(99);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let mut block = r.get_checksummed_block().unwrap();
        assert_eq!(block.get_str().unwrap(), "payload");
        assert_eq!(block.get_u64().unwrap(), 1234);
        assert!(block.is_exhausted());
        assert_eq!(r.get_u8().unwrap(), 99);

        // A flip anywhere — header or body — is detected, never a panic.
        for i in 0..bytes.len() - 1 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let mut r = ByteReader::new(&corrupt);
            assert!(
                r.get_checksummed_block().is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // Any truncation of the block itself is detected.
        for cut in 0..bytes.len() - 1 {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.get_checksummed_block().is_err(), "cut at {cut}");
        }

        // The empty block round-trips too.
        let mut w = ByteWriter::new();
        w.put_checksummed_block(|_| {});
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_checksummed_block().unwrap().is_exhausted());
        assert!(r.is_exhausted());
    }

    #[test]
    fn bits_needed_matches_ceil_log2() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(4), 3);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }

    #[test]
    fn packed_values_round_trip_at_every_width() {
        for width in 0..=64u32 {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..37u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & mask)
                .collect();
            let mut w = ByteWriter::new();
            w.put_packed(&values, width);
            assert_eq!(w.len(), packed_len(values.len(), width), "width {width}");
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.get_packed(values.len(), width).unwrap(), values);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn packed_stream_rejects_truncation_and_bad_widths() {
        let mut w = ByteWriter::new();
        w.put_packed(&[1, 2, 3, 4, 5], 7);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(matches!(
                r.get_packed(5, 7),
                Err(CodecError::Truncated { .. })
            ));
        }
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_packed(5, 65), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn bitmaps_round_trip_and_reject_truncation() {
        for count in [0usize, 1, 7, 8, 9, 64, 100] {
            let bits: Vec<bool> = (0..count).map(|i| i % 3 == 0).collect();
            let mut w = ByteWriter::new();
            w.put_bitmap(&bits);
            assert_eq!(w.len(), bitmap_len(count));
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.get_bitmap(count).unwrap(), bits);
            assert!(r.is_exhausted());
            if count > 0 {
                let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
                assert!(matches!(
                    r.get_bitmap(count),
                    Err(CodecError::Truncated { .. })
                ));
            }
        }
    }

    /// Bit-exact equality for `f64` vectors (`==` would miss NaN and `-0.0`).
    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "value {i}: {x} vs {y}");
        }
    }

    fn stream_round_trip(values: &[f64]) -> (u8, usize) {
        let mut w = ByteWriter::new();
        encode_f64_stream(&mut w, values);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = decode_f64_stream(&mut r, values.len()).unwrap();
        assert!(r.is_exhausted());
        assert_bits_eq(&decoded, values);
        (bytes[0], bytes.len())
    }

    #[test]
    fn numeric_streams_round_trip_bit_exactly() {
        // Adversarial payloads must fall back to raw and round-trip bitwise.
        let (tag, _) = stream_round_trip(&[
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            1.5,
            -1.0e300,
            4.9e-324,
            f64::MAX,
        ]);
        assert_eq!(tag, NUM_RAW);

        // Integral columns compress: a narrow range picks frame-of-reference
        // over raw by a wide margin.
        let values: Vec<f64> = (0..1000).map(|i| 600.0 + (i % 13) as f64).collect();
        let (tag, len) = stream_round_trip(&values);
        assert_eq!(tag, NUM_FOR);
        assert!(len < 8 * values.len() / 4, "FoR stream is {len} bytes");

        // A monotone ramp with small steps is a delta win.
        let values: Vec<f64> = (0..1000).map(|i| 1.0e12 + (i as f64) * 3.0).collect();
        let (tag, len) = stream_round_trip(&values);
        assert_eq!(tag, NUM_DELTA, "stream of {len} bytes");

        // Edge shapes: empty, single value, constant column, i64 extremes.
        stream_round_trip(&[]);
        stream_round_trip(&[42.0]);
        stream_round_trip(&[7.0; 100]);
        stream_round_trip(&[i64::MIN as f64, 0.0, 9.2233720368547e18]);
    }

    #[test]
    fn numeric_stream_decode_rejects_corruption() {
        let values: Vec<f64> = (0..100).map(|i| (i * 37 % 100) as f64).collect();
        let mut w = ByteWriter::new();
        encode_f64_stream(&mut w, &values);
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], NUM_FOR);

        // Any truncation is detected.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(decode_f64_stream(&mut r, values.len()).is_err());
        }
        // An impossible bit width (the byte after tag + 8-byte base).
        let mut corrupt = bytes.clone();
        corrupt[9] = 65;
        let mut r = ByteReader::new(&corrupt);
        assert!(matches!(
            decode_f64_stream(&mut r, values.len()),
            Err(CodecError::Invalid(_))
        ));
        // An unknown stream tag.
        let mut corrupt = bytes;
        corrupt[0] = 9;
        let mut r = ByteReader::new(&corrupt);
        assert!(matches!(
            decode_f64_stream(&mut r, values.len()),
            Err(CodecError::Invalid(_))
        ));
    }
}
