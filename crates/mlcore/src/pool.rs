//! A bounded worker pool: long-lived threads consuming queued jobs.
//!
//! [`shard::map_chunks`](crate::shard::map_chunks) spawns fresh
//! `std::thread::scope` threads on every call, which is the right shape for
//! one-shot sharded batch work but the wrong one for a *server*: a process
//! answering a stream of requests wants a **fixed** number of worker threads
//! (the concurrency bound the admission controller charges against) that
//! outlive any individual request.  [`WorkerPool`] is that primitive:
//!
//! * [`WorkerPool::execute`] enqueues an owned (`'static`) job — the shape
//!   network request handlers take, each job owning its `Arc`s.
//! * [`WorkerPool::map_chunks`] is the scoped counterpart of
//!   [`shard::map_chunks`](crate::shard::map_chunks): it fans a *borrowed*
//!   slice out over the pool's existing threads and blocks until every
//!   chunk is done, so batch callers reuse the pool instead of spawning
//!   per-call threads.  While it waits, the calling thread **helps**: it
//!   pulls queued jobs (its own chunks or anyone else's) and runs them
//!   inline, so a saturated — or nested — pool can never deadlock a
//!   `map_chunks` caller, and a pool of `t` threads gives batch work `t+1`
//!   active lanes.
//!
//! A job that panics is caught at the worker (the pool survives; `execute`
//! jobs are fire-and-forget, so their panics are swallowed after the catch),
//! and `map_chunks` re-raises the first chunk panic in the caller once every
//! chunk has settled — the same contract as `std::thread::scope`.  Poisoned
//! locks are *recovered*, never propagated: a panic that lands while one of
//! the pool's mutexes is held cannot corrupt the queue (every critical
//! section is a single push/pop/counter step), so treating poison as fatal
//! would only convert one bad job into a dead process-wide [`shared`] pool.
//! Under `--features failpoints` the `"pool.job"` site injects worker
//! faults between pop and run; faulted jobs are requeued, never dropped.
//!
//! The queue is intentionally unbounded: the pool's callers bound it.  The
//! server charges every job against a concurrent-cost budget *before*
//! submitting (its bounded admission queue is the real backpressure), and
//! `map_chunks` enqueues at most one job per chunk of a slice the caller
//! already holds.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// An enqueued job.  Jobs are type-erased closures; `map_chunks` erases the
/// *lifetime* too (see the safety argument there).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks `mutex`, recovering from poisoning instead of panicking.
///
/// Every critical section in this module is a handful of queue or counter
/// operations that leave the data consistent even if a panic lands mid-hold
/// (there are no multi-step invariants spanning an unwind point), so the
/// poison flag carries no information the pool needs — and propagating it
/// would turn one panicking job into a dead pool for every *other* caller
/// of the process-wide [`shared`] singleton.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Shared pool state: the job queue plus the shutdown flag, under one lock
/// so workers can wait on a single condvar.
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is enqueued or shutdown begins.
    work_ready: Condvar,
}

/// A fixed-size pool of worker threads consuming a shared job queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .field("queued", &self.queued())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` workers (clamped to `1..=`
    /// [`MAX_FANOUT`](crate::shard::MAX_FANOUT) — thread counts reach this
    /// constructor from server configuration, i.e. user input).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.clamp(1, crate::shard::MAX_FANOUT);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pxworker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        lock_recover(&self.shared.state).queue.len()
    }

    /// Enqueues an owned job.  Jobs run in FIFO order across the pool's
    /// workers; a panicking job is caught at the worker and does not take
    /// the pool down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.push(Box::new(job));
    }

    fn push(&self, job: Job) {
        let mut state = lock_recover(&self.shared.state);
        state.queue.push_back(job);
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Pops one queued job without blocking (used by helping waiters).
    fn try_pop(&self) -> Option<Job> {
        lock_recover(&self.shared.state).queue.pop_front()
    }

    /// Runs `f` over up to `chunks` contiguous chunks of `items` on the
    /// pool's workers and returns the per-chunk results in chunk order —
    /// the pool-backed counterpart of
    /// [`shard::map_chunks`](crate::shard::map_chunks), for callers that
    /// want a *bounded, reused* set of threads instead of a fresh
    /// `std::thread::scope` fan-out per call.  With `chunks <= 1` or fewer
    /// than two items, `f` runs inline on the caller.
    ///
    /// The calling thread helps while it waits (it executes queued jobs,
    /// its own or others'), so calling this from inside a pool job — or on
    /// a pool whose workers are all busy — makes progress instead of
    /// deadlocking.  If any chunk panics, the panic is re-raised here after
    /// all chunks have settled.
    pub fn map_chunks<T, R>(
        &self,
        items: &[T],
        chunks: usize,
        f: impl Fn(&[T]) -> R + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        if chunks <= 1 || items.len() <= 1 {
            return vec![f(items)];
        }
        let chunk_size = items
            .len()
            .div_ceil(chunks.min(crate::shard::MAX_FANOUT))
            .max(1);
        let chunk_slices: Vec<&[T]> = items.chunks(chunk_size).collect();
        let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
            chunk_slices.iter().map(|_| Mutex::new(None)).collect();
        let latch = Latch::new(chunk_slices.len());

        let f = &f;
        for (slot, chunk) in slots.iter().zip(&chunk_slices) {
            let latch = &latch;
            let task = move || {
                // The latch must count down even if `f` panics, or the
                // caller below would wait forever; the payload is parked in
                // the slot and re-raised by the caller.
                let outcome = catch_unwind(AssertUnwindSafe(|| f(chunk)));
                *lock_recover(slot) = Some(outcome);
                latch.count_down();
            };
            // SAFETY: `task` borrows `f`, `slots`, `chunk_slices` and
            // `latch`, all of which outlive this function call, and the
            // latch wait below does not return until every submitted task
            // has run to completion (the count-down is unconditional, even
            // on panic).  No borrowed task can therefore outlive its
            // borrows; erasing the lifetime to enqueue it alongside owned
            // jobs is sound — the exact argument scoped thread APIs make.
            let erased: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(Box::new(task))
            };
            self.push(erased);
        }

        // Help while waiting: drain queued jobs (ours or anyone's) so a
        // saturated or nested pool still makes progress.
        while !latch.is_done() {
            match self.try_pop() {
                Some(job) => {
                    // The helping waiter dequeues jobs exactly like a
                    // worker, so it passes the same failpoint: a faulted
                    // dequeue requeues the (never-run) job and keeps
                    // helping.
                    #[cfg(feature = "failpoints")]
                    {
                        let faulted = catch_unwind(AssertUnwindSafe(|| {
                            if let Some(failure) = crate::failpoints::trigger("pool.job") {
                                std::panic::panic_any(
                                    failure.into_io_error("pool.job").to_string(),
                                );
                            }
                        }))
                        .is_err();
                        if faulted {
                            self.push(job);
                            continue;
                        }
                    }
                    // Panics here are either our own chunks (parked in
                    // their slot by the wrapper) or another caller's
                    // `execute` job (fire-and-forget); neither may abort
                    // the wait, or borrowed tasks could outlive `f`.
                    let _ = catch_unwind(AssertUnwindSafe(job));
                }
                None => latch.wait_a_moment(),
            }
        }

        slots
            .into_iter()
            .map(|slot| {
                let outcome = slot
                    .into_inner()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .expect("latch released with an empty chunk slot");
                outcome.unwrap_or_else(|payload| resume_unwind(payload))
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = lock_recover(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        // The "pool.job" failpoint models a worker blowing up *around* a
        // job rather than inside it: an injected fault (or `Panic` action)
        // is caught here and the job is pushed back for the next pop, so a
        // chunk job's completion latch still counts down eventually — jobs
        // are retried, never lost.  Scripted once-then-succeed schedules
        // therefore converge; an `Always` panic would spin, which is the
        // chaos harness's problem, not the pool's.
        #[cfg(feature = "failpoints")]
        {
            let faulted = catch_unwind(AssertUnwindSafe(|| {
                if let Some(failure) = crate::failpoints::trigger("pool.job") {
                    std::panic::panic_any(failure.into_io_error("pool.job").to_string());
                }
            }))
            .is_err();
            if faulted {
                lock_recover(&shared.state).queue.push_back(job);
                shared.work_ready.notify_one();
                continue;
            }
        }
        // A panicking job must not take the worker (and with it the whole
        // pool's capacity) down.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// A completion latch: `map_chunks` waits on it while the pool runs the
/// chunks.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = lock_recover(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *lock_recover(&self.remaining) == 0
    }

    /// Waits briefly for the latch; the caller re-checks the queue between
    /// waits so it can keep helping.
    fn wait_a_moment(&self) {
        let remaining = lock_recover(&self.remaining);
        if *remaining > 0 {
            let _ = self
                .done
                .wait_timeout(remaining, Duration::from_millis(1))
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

/// The process-wide shared pool: one worker per hardware thread, created on
/// first use.  Batch APIs ([`XplainService::par_explain_batch`] in
/// `perfxplain-core`) fan out through this pool instead of spawning fresh
/// threads per call; servers with an explicit concurrency bound create
/// their own [`WorkerPool`] instead.
pub fn shared() -> &'static WorkerPool {
    static SHARED: OnceLock<WorkerPool> = OnceLock::new();
    SHARED.get_or_init(|| WorkerPool::new(crate::shard::hardware_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_owned_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers; all queued jobs ran first or were dropped?
                    // Drop drains nothing: shutdown only stops workers once the queue is
                    // empty (workers pop before checking the flag), so every job ran.
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn map_chunks_matches_the_scoped_fanout() {
        let pool = WorkerPool::new(3);
        let items: Vec<usize> = (0..1000).collect();
        for chunks in [1, 2, 3, 7, 100] {
            let pooled = pool.map_chunks(&items, chunks, |chunk| chunk.iter().sum::<usize>());
            let scoped =
                crate::shard::map_chunks(&items, chunks, |chunk| chunk.iter().sum::<usize>());
            assert_eq!(pooled, scoped, "{chunks} chunks diverge");
            let echoed: Vec<usize> = pool.map_chunks(&items, chunks, <[usize]>::to_vec).concat();
            assert_eq!(echoed, items);
        }
    }

    #[test]
    fn map_chunks_runs_inline_on_degenerate_inputs() {
        let pool = WorkerPool::new(2);
        let empty: Vec<usize> = Vec::new();
        assert_eq!(pool.map_chunks(&empty, 8, <[usize]>::len), vec![0]);
        assert_eq!(pool.map_chunks(&[7usize], 8, <[usize]>::len), vec![1]);
    }

    #[test]
    fn nested_map_chunks_does_not_deadlock() {
        // Every chunk of the outer call runs another map_chunks on the SAME
        // single-threaded pool: only caller-helping can make progress.
        let pool = WorkerPool::new(1);
        let items: Vec<usize> = (0..100).collect();
        let total: usize = pool
            .map_chunks(&items, 4, |chunk| {
                pool.map_chunks(chunk, 2, |inner| inner.iter().sum::<usize>())
                    .into_iter()
                    .sum::<usize>()
            })
            .into_iter()
            .sum();
        assert_eq!(total, items.iter().sum::<usize>());
    }

    #[test]
    fn map_chunks_propagates_chunk_panics_after_settling() {
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..10).collect();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_in = Arc::clone(&ran);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.map_chunks(&items, 5, |chunk| {
                ran_in.fetch_add(1, Ordering::SeqCst);
                if chunk[0] == 4 {
                    panic!("chunk exploded");
                }
                chunk.len()
            })
        }));
        assert!(outcome.is_err());
        // Every chunk settled before the panic was re-raised.
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        // The pool survives and keeps working.
        assert_eq!(pool.map_chunks(&items, 2, <[usize]>::len), vec![5, 5]);
    }

    #[test]
    fn panicking_execute_jobs_do_not_kill_workers() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("fire-and-forget panic"));
        let counter = Arc::new(AtomicUsize::new(0));
        let counter_in = Arc::clone(&counter);
        pool.execute(move || {
            counter_in.fetch_add(1, Ordering::SeqCst);
        });
        // The pool's single worker must still be alive to run the second
        // job; map_chunks would also pass since the caller helps, so poll
        // the counter instead.
        for _ in 0..1000 {
            if counter.load(Ordering::SeqCst) == 1 {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("worker died after a panicking job");
    }

    #[test]
    fn pool_survives_a_poisoned_lock() {
        let pool = WorkerPool::new(2);
        // Poison the queue lock the hard way: panic while holding it.
        let shared = Arc::clone(&pool.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.state.lock().unwrap();
            panic!("poison the pool lock");
        })
        .join();
        assert!(pool.shared.state.is_poisoned());
        // Every entry point recovers instead of propagating the poison.
        assert_eq!(pool.queued(), 0);
        let items: Vec<usize> = (0..100).collect();
        let total: usize = pool
            .map_chunks(&items, 4, |chunk| chunk.iter().sum::<usize>())
            .into_iter()
            .sum();
        assert_eq!(total, items.iter().sum::<usize>());
        let counter = Arc::new(AtomicUsize::new(0));
        let counter_in = Arc::clone(&counter);
        pool.execute(move || {
            counter_in.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool); // joins workers; the queued job ran first.
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = shared() as *const WorkerPool;
        let b = shared() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(shared().threads() >= 1);
    }
}
