//! The Relief feature-estimation algorithm.
//!
//! The RuleOfThumb baseline (Section 5.1 of the paper) ranks features by how
//! much impact they have on job runtime "in general"; the paper uses the
//! Relief technique (Robnik-Šikonja & Kononenko) because it handles numeric
//! and nominal attributes as well as missing values.
//!
//! This is the classic two-class Relief: for `m` randomly sampled instances,
//! find the nearest *hit* (same class) and nearest *miss* (other class) and
//! update each attribute weight by `diff(a, x, miss)/m - diff(a, x, hit)/m`,
//! where `diff` is the per-attribute distance contribution.  Missing values
//! are handled by assigning a neutral difference of `0.5`, a common
//! simplification of Kononenko's probabilistic treatment.

use crate::dataset::{AttrKind, AttrValue, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the Relief run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliefConfig {
    /// Number of sampled instances (`m`).  Clamped to the dataset size.
    pub iterations: usize,
    /// Seed for the instance sampler, for reproducible rankings.
    pub seed: u64,
}

impl Default for ReliefConfig {
    fn default() -> Self {
        ReliefConfig {
            iterations: 250,
            seed: 0x5eed,
        }
    }
}

/// Per-attribute difference in `[0, 1]`.
fn diff(kind: AttrKind, a: AttrValue, b: AttrValue, range: Option<(f64, f64)>) -> f64 {
    match (a, b) {
        (AttrValue::Missing, _) | (_, AttrValue::Missing) => 0.5,
        (AttrValue::Num(x), AttrValue::Num(y)) => match kind {
            AttrKind::Numeric => {
                let (lo, hi) = range.unwrap_or((0.0, 0.0));
                let span = hi - lo;
                if span <= f64::EPSILON {
                    0.0
                } else {
                    ((x - y).abs() / span).min(1.0)
                }
            }
            AttrKind::Nominal => {
                if (x - y).abs() <= f64::EPSILON {
                    0.0
                } else {
                    1.0
                }
            }
        },
        (AttrValue::Nom(x), AttrValue::Nom(y)) if x == y => 0.0,
        (AttrValue::Nom(_), AttrValue::Nom(_)) => 1.0,
        // Mixed storage kinds should not happen for a well-formed dataset;
        // treat them as maximally different.
        _ => 1.0,
    }
}

fn distance(data: &Dataset, ranges: &[Option<(f64, f64)>], i: usize, j: usize) -> f64 {
    let mut total = 0.0;
    for (a, attr) in data.attributes().iter().enumerate() {
        total += diff(attr.kind, data.value(i, a), data.value(j, a), ranges[a]);
    }
    total
}

/// Runs Relief and returns one weight per attribute (same order as the
/// dataset schema).  Higher weights indicate more relevant attributes.
///
/// Returns a vector of zeros when the dataset has fewer than two instances or
/// only a single class.
pub fn relief_weights(data: &Dataset, config: ReliefConfig) -> Vec<f64> {
    let n = data.len();
    let k = data.num_attributes();
    let mut weights = vec![0.0; k];
    if n < 2 {
        return weights;
    }
    let positives = data.num_positive();
    if positives == 0 || positives == n {
        return weights;
    }

    let ranges: Vec<Option<(f64, f64)>> = (0..k).map(|a| data.numeric_range(a)).collect();

    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    order.shuffle(&mut rng);
    let m = config.iterations.clamp(1, n);

    for &i in order.iter().take(m) {
        let mut nearest_hit: Option<(usize, f64)> = None;
        let mut nearest_miss: Option<(usize, f64)> = None;
        for j in 0..n {
            if j == i {
                continue;
            }
            let d = distance(data, &ranges, i, j);
            let slot = if data.label(j) == data.label(i) {
                &mut nearest_hit
            } else {
                &mut nearest_miss
            };
            let closer = match slot {
                None => true,
                Some((_, best)) => d < *best,
            };
            if closer {
                *slot = Some((j, d));
            }
        }
        let (Some((hit, _)), Some((miss, _))) = (nearest_hit, nearest_miss) else {
            continue;
        };
        for (a, attr) in data.attributes().iter().enumerate() {
            let d_hit = diff(attr.kind, data.value(i, a), data.value(hit, a), ranges[a]);
            let d_miss = diff(attr.kind, data.value(i, a), data.value(miss, a), ranges[a]);
            weights[a] += (d_miss - d_hit) / m as f64;
        }
    }
    weights
}

/// Ranks attribute indices by decreasing Relief weight.
pub fn rank_attributes(data: &Dataset, config: ReliefConfig) -> Vec<usize> {
    let weights = relief_weights(data, config);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Attribute;
    use rand::RngExt;

    /// Builds a dataset where attribute 0 fully determines the label,
    /// attribute 1 is random noise and attribute 2 is constant.
    fn informative_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(vec![
            Attribute::numeric("signal"),
            Attribute::numeric("noise"),
            Attribute::numeric("constant"),
        ]);
        for _ in 0..120 {
            let signal: f64 = rng.random_range(0.0..1.0);
            let noise: f64 = rng.random_range(0.0..1.0);
            ds.push(
                vec![
                    AttrValue::Num(signal),
                    AttrValue::Num(noise),
                    AttrValue::Num(42.0),
                ],
                signal > 0.5,
            );
        }
        ds
    }

    #[test]
    fn signal_outranks_noise_and_constant() {
        let ds = informative_dataset(7);
        let weights = relief_weights(&ds, ReliefConfig::default());
        assert!(weights[0] > weights[1], "weights: {weights:?}");
        assert!(weights[0] > weights[2], "weights: {weights:?}");
        let ranking = rank_attributes(&ds, ReliefConfig::default());
        assert_eq!(ranking[0], 0);
    }

    #[test]
    fn nominal_signal_is_detected() {
        let mut ds = Dataset::new(vec![
            Attribute::nominal("script"),
            Attribute::nominal("junk"),
        ]);
        let filter = ds.attribute_mut(0).dictionary.intern("filter.pig");
        let group = ds.attribute_mut(0).dictionary.intern("groupby.pig");
        let junk_a = ds.attribute_mut(1).dictionary.intern("a");
        let junk_b = ds.attribute_mut(1).dictionary.intern("b");
        for i in 0..60 {
            let script = if i % 2 == 0 { filter } else { group };
            let junk = if i % 3 == 0 { junk_a } else { junk_b };
            ds.push(
                vec![AttrValue::Nom(script), AttrValue::Nom(junk)],
                script == filter,
            );
        }
        let weights = relief_weights(&ds, ReliefConfig::default());
        assert!(weights[0] > weights[1], "weights: {weights:?}");
    }

    #[test]
    fn degenerate_datasets_return_zero_weights() {
        let mut single_class = Dataset::new(vec![Attribute::numeric("x")]);
        for i in 0..5 {
            single_class.push(vec![AttrValue::Num(i as f64)], true);
        }
        assert_eq!(
            relief_weights(&single_class, ReliefConfig::default()),
            vec![0.0]
        );

        let tiny = Dataset::new(vec![Attribute::numeric("x")]);
        assert_eq!(relief_weights(&tiny, ReliefConfig::default()), vec![0.0]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = informative_dataset(11);
        let a = relief_weights(
            &ds,
            ReliefConfig {
                iterations: 60,
                seed: 3,
            },
        );
        let b = relief_weights(
            &ds,
            ReliefConfig {
                iterations: 60,
                seed: 3,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn missing_values_do_not_panic() {
        let mut ds = Dataset::new(vec![Attribute::numeric("x"), Attribute::numeric("y")]);
        for i in 0..30 {
            let x = if i % 5 == 0 {
                AttrValue::Missing
            } else {
                AttrValue::Num(i as f64)
            };
            ds.push(vec![x, AttrValue::Num((i % 2) as f64)], i % 2 == 0);
        }
        let weights = relief_weights(&ds, ReliefConfig::default());
        assert_eq!(weights.len(), 2);
        assert!(weights.iter().all(|w| w.is_finite()));
    }
}
