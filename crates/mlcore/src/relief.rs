//! The Relief feature-estimation algorithm.
//!
//! The RuleOfThumb baseline (Section 5.1 of the paper) ranks features by how
//! much impact they have on job runtime "in general"; the paper uses the
//! Relief technique (Robnik-Šikonja & Kononenko) because it handles numeric
//! and nominal attributes as well as missing values.
//!
//! This is the classic two-class Relief: for `m` randomly sampled instances,
//! find the nearest *hit* (same class) and nearest *miss* (other class) and
//! update each attribute weight by `diff(a, x, miss)/m - diff(a, x, hit)/m`,
//! where `diff` is the per-attribute distance contribution.  Missing values
//! — including NaN cells, which the trainers treat as missing — are handled
//! by assigning a neutral difference of `0.5`, a common simplification of
//! Kononenko's probabilistic treatment.
//!
//! # Columnar, parallel scan
//!
//! The distance scans run **attribute-major** over contiguous typed column
//! slices ([`Dataset::column_cells`]): per attribute the kernel is a flat
//! `f64`/`u32` loop with the attribute kind and normalisation span resolved
//! once — no per-cell enum dispatch — and the per-instance distances
//! accumulate in attribute order, so every sum is bit-identical to the
//! row-at-a-time scan it replaced ([`crate::oracle::relief_weights`], the
//! retained test oracle).  The `m` sampled instances are independent, so on
//! multi-core machines they fan out over [`crate::shard::map_chunks`]
//! threads; weight updates are applied serially in sample order afterwards,
//! keeping the result independent of the fan-out.

use crate::dataset::{AttrKind, AttrValue, ColumnCells, Dataset, NO_NOMINAL};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the Relief run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliefConfig {
    /// Number of sampled instances (`m`).  Clamped to the dataset size.
    pub iterations: usize,
    /// Seed for the instance sampler, for reproducible rankings.
    pub seed: u64,
}

impl Default for ReliefConfig {
    fn default() -> Self {
        ReliefConfig {
            iterations: 250,
            seed: 0x5eed,
        }
    }
}

/// Number of (sample × instance × attribute) distance cells below which the
/// sampled-instance scan stays serial — small Relief runs finish in well
/// under the cost of a `std::thread::scope` setup.
pub const RELIEF_PARALLEL_MIN_CELLS: usize = 1 << 16;

/// NaN cells are missing values to the trainers.
fn normalize(value: AttrValue) -> AttrValue {
    match value {
        AttrValue::Num(x) if x.is_nan() => AttrValue::Missing,
        other => other,
    }
}

/// Per-attribute difference in `[0, 1]`.  Shared by the mixed-column
/// fallback here and by the naive oracle, so the two implementations can
/// only diverge in structure, never in cell arithmetic.
pub(crate) fn diff(kind: AttrKind, a: AttrValue, b: AttrValue, range: Option<(f64, f64)>) -> f64 {
    match (normalize(a), normalize(b)) {
        (AttrValue::Missing, _) | (_, AttrValue::Missing) => 0.5,
        (AttrValue::Num(x), AttrValue::Num(y)) => match kind {
            AttrKind::Numeric => {
                let (lo, hi) = range.unwrap_or((0.0, 0.0));
                let span = hi - lo;
                if span <= f64::EPSILON {
                    0.0
                } else {
                    ((x - y).abs() / span).min(1.0)
                }
            }
            AttrKind::Nominal => {
                if (x - y).abs() <= f64::EPSILON {
                    0.0
                } else {
                    1.0
                }
            }
        },
        (AttrValue::Nom(x), AttrValue::Nom(y)) if x == y => 0.0,
        (AttrValue::Nom(_), AttrValue::Nom(_)) => 1.0,
        // Mixed storage kinds should not happen for a well-formed dataset;
        // treat them as maximally different.
        _ => 1.0,
    }
}

/// Adds attribute `a`'s contribution against instance `i` to every entry of
/// `dist` — the tight, dispatch-free inner loop of the columnar scan.  The
/// arithmetic mirrors [`diff`] arm for arm.
fn accumulate_column(
    dist: &mut [f64],
    column: &ColumnCells,
    kind: AttrKind,
    span: f64,
    range: Option<(f64, f64)>,
    i: usize,
) {
    match column {
        ColumnCells::Numeric(cells) => {
            let vi = cells[i];
            if vi.is_nan() {
                for d in dist.iter_mut() {
                    *d += 0.5;
                }
                return;
            }
            match kind {
                AttrKind::Numeric if span <= f64::EPSILON => {
                    for (d, &vj) in dist.iter_mut().zip(cells) {
                        *d += if vj.is_nan() { 0.5 } else { 0.0 };
                    }
                }
                AttrKind::Numeric => {
                    for (d, &vj) in dist.iter_mut().zip(cells) {
                        *d += if vj.is_nan() {
                            0.5
                        } else {
                            ((vi - vj).abs() / span).min(1.0)
                        };
                    }
                }
                AttrKind::Nominal => {
                    for (d, &vj) in dist.iter_mut().zip(cells) {
                        *d += if vj.is_nan() {
                            0.5
                        } else if (vi - vj).abs() <= f64::EPSILON {
                            0.0
                        } else {
                            1.0
                        };
                    }
                }
            }
        }
        ColumnCells::Nominal(cells) => {
            let ci = cells[i];
            if ci == NO_NOMINAL {
                for d in dist.iter_mut() {
                    *d += 0.5;
                }
                return;
            }
            for (d, &cj) in dist.iter_mut().zip(cells) {
                *d += if cj == NO_NOMINAL {
                    0.5
                } else if cj == ci {
                    0.0
                } else {
                    1.0
                };
            }
        }
        ColumnCells::Mixed(cells) => {
            let vi = cells[i];
            for (d, &vj) in dist.iter_mut().zip(cells) {
                *d += diff(kind, vi, vj, range);
            }
        }
    }
}

/// The scalar form of [`accumulate_column`], used for the weight updates of
/// the selected neighbours.
fn column_diff(
    column: &ColumnCells,
    kind: AttrKind,
    range: Option<(f64, f64)>,
    i: usize,
    j: usize,
) -> f64 {
    match column {
        ColumnCells::Numeric(cells) => diff(kind, num_cell(cells[i]), num_cell(cells[j]), range),
        ColumnCells::Nominal(cells) => diff(kind, nom_cell(cells[i]), nom_cell(cells[j]), range),
        ColumnCells::Mixed(cells) => diff(kind, cells[i], cells[j], range),
    }
}

fn num_cell(v: f64) -> AttrValue {
    if v.is_nan() {
        AttrValue::Missing
    } else {
        AttrValue::Num(v)
    }
}

fn nom_cell(id: u32) -> AttrValue {
    if id == NO_NOMINAL {
        AttrValue::Missing
    } else {
        AttrValue::Nom(id)
    }
}

/// Finds the nearest hit and miss of instance `i` over the typed columns.
/// `dist` is the caller's scratch buffer, reused across instances.
/// Distances accumulate attribute-major in schema order, so every per-pair
/// sum is bit-identical to the row-at-a-time scan; the selection keeps the
/// first strict minimum per class, also exactly as before.
#[allow(clippy::too_many_arguments)]
fn nearest_hit_miss(
    columns: &[ColumnCells],
    kinds: &[AttrKind],
    spans: &[f64],
    ranges: &[Option<(f64, f64)>],
    labels: &[bool],
    dist: &mut Vec<f64>,
    i: usize,
) -> Option<(usize, usize)> {
    let n = labels.len();
    dist.clear();
    dist.resize(n, 0.0);
    for (a, column) in columns.iter().enumerate() {
        accumulate_column(dist, column, kinds[a], spans[a], ranges[a], i);
    }

    let mut nearest_hit: Option<(usize, f64)> = None;
    let mut nearest_miss: Option<(usize, f64)> = None;
    for (j, (&d, &label)) in dist.iter().zip(labels).enumerate() {
        if j == i {
            continue;
        }
        let slot = if label == labels[i] {
            &mut nearest_hit
        } else {
            &mut nearest_miss
        };
        let closer = match slot {
            None => true,
            Some((_, best)) => d < *best,
        };
        if closer {
            *slot = Some((j, d));
        }
    }
    match (nearest_hit, nearest_miss) {
        (Some((hit, _)), Some((miss, _))) => Some((hit, miss)),
        _ => None,
    }
}

/// Runs Relief and returns one weight per attribute (same order as the
/// dataset schema).  Higher weights indicate more relevant attributes.
///
/// Returns a vector of zeros when the dataset has fewer than two instances or
/// only a single class.
pub fn relief_weights(data: &Dataset, config: ReliefConfig) -> Vec<f64> {
    let n = data.len();
    let k = data.num_attributes();
    let mut weights = vec![0.0; k];
    if n < 2 {
        return weights;
    }
    let positives = data.num_positive();
    if positives == 0 || positives == n {
        return weights;
    }

    // Resolved once per run: ranges/spans, attribute kinds, and the typed
    // contiguous columns the kernels scan.
    let ranges: Vec<Option<(f64, f64)>> = (0..k).map(|a| data.numeric_range(a)).collect();
    let spans: Vec<f64> = ranges
        .iter()
        .map(|r| r.map_or(0.0, |(lo, hi)| hi - lo))
        .collect();
    let kinds: Vec<AttrKind> = data.attributes().iter().map(|a| a.kind).collect();
    let columns: Vec<ColumnCells> = (0..k).map(|a| data.column_cells(a)).collect();
    let labels = data.labels();

    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    order.shuffle(&mut rng);
    let m = config.iterations.clamp(1, n);
    let sampled = &order[..m];

    // The O(m·n·attrs) part: nearest hit/miss per sampled instance,
    // independent across instances, fanned out on large runs.
    let scan_chunk = |chunk: &[usize]| -> Vec<Option<(usize, usize)>> {
        let mut dist: Vec<f64> = Vec::new();
        chunk
            .iter()
            .map(|&i| nearest_hit_miss(&columns, &kinds, &spans, &ranges, labels, &mut dist, i))
            .collect()
    };
    let neighbours: Vec<Option<(usize, usize)>> = crate::shard::map_chunks_gated(
        sampled,
        m.saturating_mul(n).saturating_mul(k.max(1)),
        RELIEF_PARALLEL_MIN_CELLS,
        scan_chunk,
    );

    // Weight updates in sample order: bit-identical to the serial loop no
    // matter how the scan above was chunked.
    for (&i, neighbour) in sampled.iter().zip(&neighbours) {
        let Some((hit, miss)) = *neighbour else {
            continue;
        };
        for (a, weight) in weights.iter_mut().enumerate() {
            let d_hit = column_diff(&columns[a], kinds[a], ranges[a], i, hit);
            let d_miss = column_diff(&columns[a], kinds[a], ranges[a], i, miss);
            *weight += (d_miss - d_hit) / m as f64;
        }
    }
    weights
}

/// Ranks attribute indices by decreasing Relief weight.
pub fn rank_attributes(data: &Dataset, config: ReliefConfig) -> Vec<usize> {
    let weights = relief_weights(data, config);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Attribute;
    use rand::RngExt;

    /// Builds a dataset where attribute 0 fully determines the label,
    /// attribute 1 is random noise and attribute 2 is constant.
    fn informative_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(vec![
            Attribute::numeric("signal"),
            Attribute::numeric("noise"),
            Attribute::numeric("constant"),
        ]);
        for _ in 0..120 {
            let signal: f64 = rng.random_range(0.0..1.0);
            let noise: f64 = rng.random_range(0.0..1.0);
            ds.push(
                vec![
                    AttrValue::Num(signal),
                    AttrValue::Num(noise),
                    AttrValue::Num(42.0),
                ],
                signal > 0.5,
            );
        }
        ds
    }

    #[test]
    fn signal_outranks_noise_and_constant() {
        let ds = informative_dataset(7);
        let weights = relief_weights(&ds, ReliefConfig::default());
        assert!(weights[0] > weights[1], "weights: {weights:?}");
        assert!(weights[0] > weights[2], "weights: {weights:?}");
        let ranking = rank_attributes(&ds, ReliefConfig::default());
        assert_eq!(ranking[0], 0);
    }

    #[test]
    fn nominal_signal_is_detected() {
        let mut ds = Dataset::new(vec![
            Attribute::nominal("script"),
            Attribute::nominal("junk"),
        ]);
        let filter = ds.attribute_mut(0).dictionary.intern("filter.pig");
        let group = ds.attribute_mut(0).dictionary.intern("groupby.pig");
        let junk_a = ds.attribute_mut(1).dictionary.intern("a");
        let junk_b = ds.attribute_mut(1).dictionary.intern("b");
        for i in 0..60 {
            let script = if i % 2 == 0 { filter } else { group };
            let junk = if i % 3 == 0 { junk_a } else { junk_b };
            ds.push(
                vec![AttrValue::Nom(script), AttrValue::Nom(junk)],
                script == filter,
            );
        }
        let weights = relief_weights(&ds, ReliefConfig::default());
        assert!(weights[0] > weights[1], "weights: {weights:?}");
    }

    #[test]
    fn degenerate_datasets_return_zero_weights() {
        let mut single_class = Dataset::new(vec![Attribute::numeric("x")]);
        for i in 0..5 {
            single_class.push(vec![AttrValue::Num(i as f64)], true);
        }
        assert_eq!(
            relief_weights(&single_class, ReliefConfig::default()),
            vec![0.0]
        );

        let tiny = Dataset::new(vec![Attribute::numeric("x")]);
        assert_eq!(relief_weights(&tiny, ReliefConfig::default()), vec![0.0]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = informative_dataset(11);
        let a = relief_weights(
            &ds,
            ReliefConfig {
                iterations: 60,
                seed: 3,
            },
        );
        let b = relief_weights(
            &ds,
            ReliefConfig {
                iterations: 60,
                seed: 3,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn missing_values_do_not_panic() {
        let mut ds = Dataset::new(vec![Attribute::numeric("x"), Attribute::numeric("y")]);
        for i in 0..30 {
            let x = if i % 5 == 0 {
                AttrValue::Missing
            } else {
                AttrValue::Num(i as f64)
            };
            ds.push(vec![x, AttrValue::Num((i % 2) as f64)], i % 2 == 0);
        }
        let weights = relief_weights(&ds, ReliefConfig::default());
        assert_eq!(weights.len(), 2);
        assert!(weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn nan_cells_behave_exactly_like_missing() {
        let make = |nan: bool| {
            let mut ds = Dataset::new(vec![Attribute::numeric("x"), Attribute::numeric("y")]);
            for i in 0..40 {
                let x = if i % 5 == 0 {
                    if nan {
                        AttrValue::Num(f64::NAN)
                    } else {
                        AttrValue::Missing
                    }
                } else {
                    AttrValue::Num(i as f64)
                };
                ds.push(vec![x, AttrValue::Num((i % 3) as f64)], i % 2 == 0);
            }
            ds
        };
        let with_nan = relief_weights(&make(true), ReliefConfig::default());
        let with_missing = relief_weights(&make(false), ReliefConfig::default());
        assert_eq!(with_nan, with_missing);
        assert!(with_nan.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn columnar_weights_match_the_naive_oracle() {
        // Numeric-only, nominal-only and mixed datasets, with missing
        // cells: the columnar attribute-major scan must be bit-identical
        // to the retained row-at-a-time oracle.
        let mut mixed = Dataset::new(vec![
            Attribute::numeric("size"),
            Attribute::nominal("script"),
            Attribute::numeric("noise"),
        ]);
        let a = mixed.attribute_mut(1).dictionary.intern("a.pig");
        let b = mixed.attribute_mut(1).dictionary.intern("b.pig");
        for i in 0..50 {
            let size = if i % 7 == 0 {
                AttrValue::Missing
            } else {
                AttrValue::Num((i % 11) as f64)
            };
            let script = if i % 2 == 0 {
                AttrValue::Nom(a)
            } else {
                AttrValue::Nom(b)
            };
            mixed.push(
                vec![size, script, AttrValue::Num((i % 5) as f64)],
                i % 3 == 0,
            );
        }
        for config in [
            ReliefConfig::default(),
            ReliefConfig {
                iterations: 7,
                seed: 99,
            },
        ] {
            assert_eq!(
                relief_weights(&mixed, config),
                crate::oracle::relief_weights(&mixed, config),
            );
        }
        let informative = informative_dataset(23);
        assert_eq!(
            relief_weights(&informative, ReliefConfig::default()),
            crate::oracle::relief_weights(&informative, ReliefConfig::default()),
        );
    }
}
