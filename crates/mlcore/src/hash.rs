//! A vendored FxHash-style hasher for hot lookup maps.
//!
//! The std `HashMap` defaults to SipHash-1-3, whose per-lookup cost (key
//! scheduling plus 8 rounds over the data) dominates the short-string
//! lookups the encode path performs millions of times: dictionary interning,
//! `ColumnStore::column_index`, `ColumnarLog::row_of` and `PairCatalog`
//! name resolution.  [`FxHasher`] follows the Rust compiler's FxHash design
//! (Firefox heritage): one add and one multiply per 8-byte chunk, fully
//! deterministic across processes — which the training pipeline requires
//! anyway, since capping decisions and shard merges must not depend on a
//! per-process random hash seed.
//!
//! Two deliberate deviations from classic rotate-xor Fx: the chunk mix is
//! **add-multiply** (a polynomial hash over 2⁶⁴), because the rotate-xor
//! form lets a difference confined to a chunk's top byte cancel against a
//! short tail (measured: ~19% full-64-bit collisions over 1000 `metric_{i}`
//! names), and [`Hasher::finish`] applies a xorshift-multiply finaliser so
//! the low bits the hash table indexes with carry full entropy.
//!
//! Not DoS-resistant: use only for maps keyed by trusted, internally
//! generated data (feature names, record ids), never for untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier of the Fx mixing step (64-bit golden-ratio-like constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiplier of the xorshift-multiply finaliser.
const FINALIZE: u64 = 0xd6e8_feb8_6659_fd93;

/// The Fx add-multiply hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = self.hash.wrapping_add(word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_to_hash(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        for &byte in bytes {
            self.add_to_hash(u64::from(byte));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut z = self.hash;
        z ^= z >> 32;
        z = z.wrapping_mul(FINALIZE);
        z ^ (z >> 32)
    }
}

/// `BuildHasher` for [`FxHasher`]; default-constructible and deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic_and_disperses() {
        assert_eq!(hash_of(&"inputsize"), hash_of(&"inputsize"));
        assert_ne!(hash_of(&"inputsize"), hash_of(&"inputsizf"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        // Distinct hashes across a realistic feature-name population.
        let names: Vec<String> = (0..1000).map(|i| format!("metric_{i}")).collect();
        let hashes: std::collections::HashSet<u64> = names.iter().map(hash_of).collect();
        assert_eq!(hashes.len(), names.len());
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        map.insert("a".to_string(), 1);
        map.insert("b".to_string(), 2);
        assert_eq!(map.get("a"), Some(&1));
        assert_eq!(map.get("c"), None);
        let mut set: FxHashSet<&str> = FxHashSet::default();
        set.insert("x");
        assert!(set.contains("x"));
    }
}
