//! A reference decision-tree learner.
//!
//! PerfXplain deliberately does **not** run a full decision-tree induction
//! (Section 4.2 discusses why), but the paper grounds its predicate search in
//! C4.5.  This module provides a small, faithful tree learner that the test
//! suite uses as an oracle for the split search and that the ablation
//! benchmarks use to compare "path of a decision tree" explanations against
//! PerfXplain's greedy precision/generality-driven conjunctions.

use crate::dataset::Dataset;
use crate::split::{best_split, TestAtom};
use serde::{Deserialize, Serialize};

/// Learner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of instances required to attempt a split.
    pub min_split: usize,
    /// Minimum information gain required to accept a split.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_split: 4,
            min_gain: 1e-6,
        }
    }
}

/// A node of the learned tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Leaf predicting the positive class with the stored probability.
    Leaf {
        /// Estimated probability of the positive class at this leaf.
        probability: f64,
        /// Number of training instances that reached the leaf.
        support: usize,
    },
    /// Internal node testing an atom.
    Split {
        /// The test applied at this node.
        atom: TestAtom,
        /// Subtree for instances satisfying the test.
        then_branch: Box<TreeNode>,
        /// Subtree for instances not satisfying the test.
        else_branch: Box<TreeNode>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: TreeNode,
    config: TreeConfig,
}

impl DecisionTree {
    /// Trains a tree on every instance of `data`.
    pub fn fit(data: &Dataset, config: TreeConfig) -> Self {
        Self::fit_with(data, config, &best_split)
    }

    /// Trains a tree with an arbitrary per-node split finder.  The public
    /// [`DecisionTree::fit`] passes the production sweep-backed
    /// [`best_split`]; the retained naive oracle passes its own, so the two
    /// trainers share these stopping rules and this partitioning verbatim
    /// and can only differ in the splits themselves.
    pub(crate) fn fit_with(
        data: &Dataset,
        config: TreeConfig,
        split: &dyn Fn(&Dataset, &[usize]) -> Option<crate::split::SplitCandidate>,
    ) -> Self {
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = Self::build(data, &indices, config, 0, split);
        DecisionTree { root, config }
    }

    fn leaf(data: &Dataset, indices: &[usize]) -> TreeNode {
        let positive = indices.iter().filter(|&&i| data.label(i)).count();
        let probability = if indices.is_empty() {
            0.5
        } else {
            positive as f64 / indices.len() as f64
        };
        TreeNode::Leaf {
            probability,
            support: indices.len(),
        }
    }

    fn build(
        data: &Dataset,
        indices: &[usize],
        config: TreeConfig,
        depth: usize,
        split: &dyn Fn(&Dataset, &[usize]) -> Option<crate::split::SplitCandidate>,
    ) -> TreeNode {
        let positive = indices.iter().filter(|&&i| data.label(i)).count();
        let pure = positive == 0 || positive == indices.len();
        if pure || depth >= config.max_depth || indices.len() < config.min_split {
            return Self::leaf(data, indices);
        }
        let Some(chosen) = split(data, indices) else {
            return Self::leaf(data, indices);
        };
        if chosen.gain < config.min_gain
            || chosen.inside.total() == 0
            || chosen.outside.total() == 0
        {
            return Self::leaf(data, indices);
        }
        let (inside, outside): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| chosen.atom.matches_row(data, i));
        TreeNode::Split {
            atom: chosen.atom,
            then_branch: Box::new(Self::build(data, &inside, config, depth + 1, split)),
            else_branch: Box::new(Self::build(data, &outside, config, depth + 1, split)),
        }
    }

    /// The configuration the tree was trained with.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// The root node.
    pub fn root(&self) -> &TreeNode {
        &self.root
    }

    /// Probability of the positive class for row `i` of `data`.
    pub fn predict_proba(&self, data: &Dataset, i: usize) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                TreeNode::Leaf { probability, .. } => return *probability,
                TreeNode::Split {
                    atom,
                    then_branch,
                    else_branch,
                } => {
                    node = if atom.matches_row(data, i) {
                        then_branch
                    } else {
                        else_branch
                    };
                }
            }
        }
    }

    /// Hard classification of row `i` (threshold 0.5).
    pub fn predict(&self, data: &Dataset, i: usize) -> bool {
        self.predict_proba(data, i) >= 0.5
    }

    /// Training-set accuracy; convenience for tests and benches.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| self.predict(data, i) == data.label(i))
            .count();
        correct as f64 / data.len() as f64
    }

    /// The sequence of atoms on the path followed by row `i`, i.e. the
    /// conjunction a plain decision tree would give as an "explanation" for
    /// that instance.  Each atom is paired with whether the instance took the
    /// `then` branch.
    pub fn decision_path(&self, data: &Dataset, i: usize) -> Vec<(TestAtom, bool)> {
        let mut node = &self.root;
        let mut path = Vec::new();
        loop {
            match node {
                TreeNode::Leaf { .. } => return path,
                TreeNode::Split {
                    atom,
                    then_branch,
                    else_branch,
                } => {
                    let taken = atom.matches_row(data, i);
                    path.push((*atom, taken));
                    node = if taken { then_branch } else { else_branch };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        fn count(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split {
                    then_branch,
                    else_branch,
                    ..
                } => 1 + count(then_branch) + count(else_branch),
            }
        }
        count(&self.root)
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split {
                    then_branch,
                    else_branch,
                    ..
                } => 1 + depth_of(then_branch).max(depth_of(else_branch)),
            }
        }
        depth_of(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{AttrValue, Attribute};

    /// label = (x > 5) XOR (color == red), learnable with depth 2.
    fn xor_dataset() -> Dataset {
        let mut ds = Dataset::new(vec![Attribute::numeric("x"), Attribute::nominal("color")]);
        let red = ds.attribute_mut(1).dictionary.intern("red");
        let blue = ds.attribute_mut(1).dictionary.intern("blue");
        for i in 0..40 {
            let x = (i % 10) as f64;
            let color = if i % 2 == 0 { red } else { blue };
            let label = (x > 5.0) ^ (color == red);
            ds.push(vec![AttrValue::Num(x), AttrValue::Nom(color)], label);
        }
        ds
    }

    #[test]
    fn learns_xor_with_enough_depth() {
        let ds = xor_dataset();
        let tree = DecisionTree::fit(
            &ds,
            TreeConfig {
                max_depth: 4,
                min_split: 2,
                min_gain: 1e-9,
            },
        );
        assert!(tree.accuracy(&ds) > 0.85, "accuracy {}", tree.accuracy(&ds));
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_zero_produces_single_leaf() {
        let ds = xor_dataset();
        let tree = DecisionTree::fit(
            &ds,
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
        );
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.depth(), 0);
        // Majority-class probability is 0.5 for the XOR data set.
        assert!((tree.predict_proba(&ds, 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn decision_path_matches_prediction_route() {
        let ds = xor_dataset();
        let tree = DecisionTree::fit(&ds, TreeConfig::default());
        for i in 0..ds.len() {
            let path = tree.decision_path(&ds, i);
            assert!(path.len() <= tree.depth());
            for (atom, taken) in path {
                assert_eq!(atom.matches_row(&ds, i), taken);
            }
        }
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let mut ds = Dataset::new(vec![Attribute::numeric("x")]);
        for i in 0..10 {
            ds.push(vec![AttrValue::Num(i as f64)], true);
        }
        let tree = DecisionTree::fit(&ds, TreeConfig::default());
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.predict(&ds, 3));
        assert_eq!(tree.accuracy(&ds), 1.0);
    }
}
