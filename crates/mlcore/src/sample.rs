//! Balanced sampling of training examples (Section 4.3 of the paper).
//!
//! PerfXplain samples the training pairs related to the current query both to
//! keep explanation generation fast and to balance the number of pairs that
//! performed *as observed* against the pairs that performed *as expected*.
//! A training example labelled `observed` is kept with probability
//! `m / (2 * |observed|)` and an example labelled `expected` with probability
//! `m / (2 * |expected|)`, so the expected sample size is `m` with roughly
//! `m/2` examples of each class.

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

/// Summary statistics of a drawn sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceStats {
    /// Number of positive (observed) examples in the sample.
    pub positive: usize,
    /// Number of negative (expected) examples in the sample.
    pub negative: usize,
}

impl BalanceStats {
    /// Total sample size.
    pub fn total(&self) -> usize {
        self.positive + self.negative
    }

    /// Fraction of positive examples (0.5 means perfectly balanced).
    pub fn positive_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.positive as f64 / self.total() as f64
        }
    }
}

/// Draws a balanced sample over `labels` (where `true` = performed as
/// observed) targeting `target_size` examples in expectation.
///
/// Returns the selected indices (in their original order) together with the
/// achieved class counts.  When one of the classes is empty, only the other
/// class is sampled — the caller decides whether that is acceptable.  When a
/// class has at most `target_size / 2` members, every member of that class is
/// kept (the keep probability saturates at 1).
pub fn balanced_sample(
    labels: &[bool],
    target_size: usize,
    seed: u64,
) -> (Vec<usize>, BalanceStats) {
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    let half = target_size as f64 / 2.0;
    let p_pos = if positives == 0 {
        0.0
    } else {
        (half / positives as f64).min(1.0)
    };
    let p_neg = if negatives == 0 {
        0.0
    } else {
        (half / negatives as f64).min(1.0)
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut selected = Vec::with_capacity(target_size.min(labels.len()));
    let mut stats = BalanceStats {
        positive: 0,
        negative: 0,
    };
    for (i, &label) in labels.iter().enumerate() {
        let keep_probability = if label { p_pos } else { p_neg };
        if keep_probability >= 1.0 || rng.random::<f64>() < keep_probability {
            if label {
                stats.positive += 1;
            } else {
                stats.negative += 1;
            }
            selected.push(i);
        }
    }
    (selected, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(positive: usize, negative: usize) -> Vec<bool> {
        let mut v = vec![true; positive];
        v.extend(vec![false; negative]);
        v
    }

    #[test]
    fn heavily_skewed_input_becomes_roughly_balanced() {
        let labels = labels(9_900, 100);
        let (selected, stats) = balanced_sample(&labels, 2_000, 1);
        // All 100 negatives should be kept (keep probability saturates at 1).
        assert_eq!(stats.negative, 100);
        // Expected positives ~= 1000; allow generous slack for randomness.
        assert!(stats.positive > 800 && stats.positive < 1_200, "{stats:?}");
        assert_eq!(selected.len(), stats.total());
        // Indices must be unique and sorted since we scan in order.
        assert!(selected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_size_close_to_target_for_balanced_input() {
        let labels = labels(5_000, 5_000);
        let (_, stats) = balanced_sample(&labels, 2_000, 7);
        let total = stats.total() as f64;
        assert!((total - 2_000.0).abs() < 300.0, "total = {total}");
        assert!((stats.positive_fraction() - 0.5).abs() < 0.1);
    }

    #[test]
    fn small_classes_are_fully_kept() {
        let labels = labels(10, 12);
        let (selected, stats) = balanced_sample(&labels, 2_000, 3);
        assert_eq!(stats.positive, 10);
        assert_eq!(stats.negative, 12);
        assert_eq!(selected.len(), 22);
    }

    #[test]
    fn empty_class_yields_single_class_sample() {
        let labels = labels(50, 0);
        let (_, stats) = balanced_sample(&labels, 20, 9);
        assert_eq!(stats.negative, 0);
        assert!(stats.positive > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let labels = labels(1_000, 1_000);
        let (a, _) = balanced_sample(&labels, 200, 42);
        let (b, _) = balanced_sample(&labels, 200, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let (selected, stats) = balanced_sample(&[], 100, 0);
        assert!(selected.is_empty());
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.positive_fraction(), 0.0);
    }
}
