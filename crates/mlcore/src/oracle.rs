//! The retained naive trainers — the proptest and benchmark oracles for the
//! sweep-based split finder ([`crate::split`]) and the columnar Relief
//! ([`crate::relief`]).
//!
//! Everything here is the pre-sweep implementation, kept verbatim (modulo
//! the shared NaN-as-missing rule): candidate atoms are materialised
//! explicitly and every candidate rescans all instances
//! ([`evaluate_atom`]), i.e. O(d·n) per attribute; Relief scans row-at-a-time
//! through per-cell enum dispatch.  The production sweep must return
//! bit-identical winners — `tests/properties.rs` (workspace root) and the
//! unit tests of [`crate::split`] prove that on randomized datasets, and the
//! `pairs_pipeline` bench measures the speedup against this module.
//!
//! Compiled only for this crate's own tests (`cfg(test)`) or under the
//! off-by-default `oracle` feature; never part of a production build.

use crate::dataset::{AttrKind, AttrValue, Dataset};
use crate::dtree::{DecisionTree, TreeConfig};
use crate::entropy::{information_gain, CellCounts};
use crate::relief::{diff, ReliefConfig};
use crate::split::{SplitCandidate, TestAtom, TestConstant, TestOp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Scores one atom by rescanning every instance — the O(n) inner loop the
/// sweep eliminated.
fn evaluate_atom(data: &Dataset, indices: &[usize], atom: TestAtom) -> SplitCandidate {
    let mut inside = CellCounts::default();
    let mut outside = CellCounts::default();
    for &i in indices {
        let cell = if atom.matches_row(data, i) {
            &mut inside
        } else {
            &mut outside
        };
        cell.record(data.label(i));
    }
    SplitCandidate {
        atom,
        gain: information_gain(inside, outside),
        inside,
        outside,
    }
}

/// The naive per-attribute search: materialise every candidate atom, score
/// each with [`evaluate_atom`], keep the best under the shared comparison.
pub fn best_split_for_attribute_filtered(
    data: &Dataset,
    indices: &[usize],
    attribute: usize,
    allow: impl Fn(&TestAtom) -> bool,
) -> Option<SplitCandidate> {
    let kind = data.attributes()[attribute].kind;
    let mut candidates: Vec<TestAtom> = Vec::new();

    match kind {
        AttrKind::Nominal => {
            let mut seen: Vec<u32> = Vec::new();
            for &i in indices {
                if let AttrValue::Nom(v) = data.value(i, attribute) {
                    if !seen.contains(&v) {
                        seen.push(v);
                    }
                }
            }
            for v in seen {
                candidates.push(TestAtom {
                    attribute,
                    op: TestOp::Eq,
                    constant: TestConstant::Nom(v),
                });
            }
        }
        AttrKind::Numeric => {
            let mut values: Vec<f64> = indices
                .iter()
                .filter_map(|&i| data.value(i, attribute).as_num())
                .filter(|v| !v.is_nan())
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("NaN values were filtered"));
            values.dedup();
            for window in values.windows(2) {
                let threshold = (window[0] + window[1]) / 2.0;
                candidates.push(TestAtom {
                    attribute,
                    op: TestOp::Le,
                    constant: TestConstant::Num(threshold),
                });
                candidates.push(TestAtom {
                    attribute,
                    op: TestOp::Gt,
                    constant: TestConstant::Num(threshold),
                });
            }
            for v in values {
                // Mirrors the sweep: ±inf orders normally but gets no
                // equality candidate (the relative tolerance degenerates,
                // inverting the predicate).
                if v.is_finite() {
                    candidates.push(TestAtom {
                        attribute,
                        op: TestOp::Eq,
                        constant: TestConstant::Num(v),
                    });
                }
            }
        }
    }

    let mut best: Option<SplitCandidate> = None;
    for atom in candidates {
        if !allow(&atom) {
            continue;
        }
        let candidate = evaluate_atom(data, indices, atom);
        if candidate.inside.total() == 0 {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                candidate.gain > b.gain + 1e-12
                    || ((candidate.gain - b.gain).abs() <= 1e-12
                        && candidate.inside.total() > b.inside.total())
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

/// Unfiltered form of [`best_split_for_attribute_filtered`].
pub fn best_split_for_attribute(
    data: &Dataset,
    indices: &[usize],
    attribute: usize,
) -> Option<SplitCandidate> {
    best_split_for_attribute_filtered(data, indices, attribute, |_| true)
}

/// The naive all-attributes search: the serial left-to-right fold the
/// parallel [`crate::split::best_split`] must reproduce exactly.
pub fn best_split(data: &Dataset, indices: &[usize]) -> Option<SplitCandidate> {
    let mut best: Option<SplitCandidate> = None;
    for attribute in 0..data.num_attributes() {
        if let Some(candidate) = best_split_for_attribute(data, indices, attribute) {
            let better = match &best {
                None => true,
                Some(b) => candidate.gain > b.gain + 1e-12,
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Trains the reference tree with the naive split search.  The tree learner
/// is generic over its split finder, so this reuses the *live* stopping
/// rules and partitioning of [`DecisionTree::fit`] verbatim — the only
/// difference is the O(d·n) candidate search, which is exactly what the
/// benchmarks time and what equivalence checks compare.
pub fn fit(data: &Dataset, config: TreeConfig) -> DecisionTree {
    DecisionTree::fit_with(data, config, &best_split)
}

/// Per-pair distance: the row-at-a-time scan through per-cell dispatch the
/// columnar Relief replaced.
fn distance(data: &Dataset, ranges: &[Option<(f64, f64)>], i: usize, j: usize) -> f64 {
    let mut total = 0.0;
    for (a, attr) in data.attributes().iter().enumerate() {
        total += diff(attr.kind, data.value(i, a), data.value(j, a), ranges[a]);
    }
    total
}

/// The naive Relief: for each sampled instance, a full O(n·attrs) distance
/// scan for the nearest hit and miss.  Must return weights bit-identical to
/// [`crate::relief::relief_weights`].
pub fn relief_weights(data: &Dataset, config: ReliefConfig) -> Vec<f64> {
    let n = data.len();
    let k = data.num_attributes();
    let mut weights = vec![0.0; k];
    if n < 2 {
        return weights;
    }
    let positives = data.num_positive();
    if positives == 0 || positives == n {
        return weights;
    }

    let ranges: Vec<Option<(f64, f64)>> = (0..k).map(|a| data.numeric_range(a)).collect();

    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    order.shuffle(&mut rng);
    let m = config.iterations.clamp(1, n);

    for &i in order.iter().take(m) {
        let mut nearest_hit: Option<(usize, f64)> = None;
        let mut nearest_miss: Option<(usize, f64)> = None;
        for j in 0..n {
            if j == i {
                continue;
            }
            let d = distance(data, &ranges, i, j);
            let slot = if data.label(j) == data.label(i) {
                &mut nearest_hit
            } else {
                &mut nearest_miss
            };
            let closer = match slot {
                None => true,
                Some((_, best)) => d < *best,
            };
            if closer {
                *slot = Some((j, d));
            }
        }
        let (Some((hit, _)), Some((miss, _))) = (nearest_hit, nearest_miss) else {
            continue;
        };
        for (a, attr) in data.attributes().iter().enumerate() {
            let d_hit = diff(attr.kind, data.value(i, a), data.value(hit, a), ranges[a]);
            let d_miss = diff(attr.kind, data.value(i, a), data.value(miss, a), ranges[a]);
            weights[a] += (d_miss - d_hit) / m as f64;
        }
    }
    weights
}
