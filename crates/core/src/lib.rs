//! PerfXplain: explain the relative performance of MapReduce jobs and tasks.
//!
//! This crate is a faithful reproduction of the system described in
//! *"PerfXplain: Debugging MapReduce Job Performance"* (Khoussainova,
//! Balazinska, Suciu — VLDB 2012).  Given
//!
//! * an **execution log** of past MapReduce job and task executions, each
//!   represented as a flat vector of features (configuration parameters,
//!   data characteristics, Hadoop counters, averaged Ganglia metrics and the
//!   runtime itself), and
//! * a **PXQL query** identifying a pair of executions and stating what was
//!   observed and what was expected,
//!
//! it produces an **explanation**: a pair of predicates over *pair features*
//! (a despite clause and a because clause) chosen to be applicable to the
//! pair of interest, precise, general and relevant.
//!
//! # Quick example
//!
//! ```
//! use perfxplain_core::{
//!     BoundQuery, ExecutionLog, ExecutionRecord, ExplainConfig, PerfXplain,
//! };
//!
//! // A miniature execution log: jobs with big blocks finish in ~600 s
//! // regardless of their input size.
//! let mut log = ExecutionLog::new();
//! for i in 0..30 {
//!     let big_blocks = i % 2 == 0;
//!     let input: f64 = if i % 4 < 2 { 32.0e9 } else { 1.0e9 };
//!     let duration = if big_blocks { 600.0 } else { input / 5.0e7 };
//!     log.push(
//!         ExecutionRecord::job(format!("job_{i}"))
//!             .with_feature("inputsize", input)
//!             .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
//!             .with_feature("duration", duration),
//!     );
//! }
//! log.rebuild_catalogs();
//!
//! // "Despite reading much more data, job_0 was not slower than job_2. Why?"
//! let query = pxql::parse_query(
//!     "DESPITE inputsize_compare = GT\n\
//!      OBSERVED duration_compare = SIM\n\
//!      EXPECTED duration_compare = GT",
//! )
//! .unwrap();
//! let bound = BoundQuery::new(query, "job_0", "job_2");
//!
//! let engine = PerfXplain::new(ExplainConfig::default().with_width(2));
//! let explanation = engine.explain(&log, &bound).unwrap();
//! assert!(explanation.width() >= 1);
//! println!("{explanation}");
//! ```

pub mod baselines;
pub mod bridge;
pub mod config;
pub mod error;
pub mod eval;
pub mod explain;
pub mod explanation;
pub mod features;
pub mod levels;
pub mod metrics;
pub mod narrate;
pub mod pairs;
pub mod query;
pub mod record;
pub mod training;

pub use baselines::{RuleOfThumb, SimButDiff};
pub use config::ExplainConfig;
pub use error::{CoreError, Result};
pub use eval::{
    evaluate_on_log, generate_explanation, split_log, train_test_round, Aggregate,
    EvaluationResult, Technique,
};
pub use explain::PerfXplain;
pub use explanation::Explanation;
pub use features::{FeatureCatalog, FeatureDef, FeatureKind, DURATION_FEATURE};
pub use levels::FeatureLevel;
pub use metrics::{assess, generality, precision, relevance, ExplanationQuality, MetricEstimate};
pub use narrate::narrate;
pub use pairs::{
    compute_pair_features, PairCatalog, PairExample, PairFeatureGroup, DEFAULT_SIM_THRESHOLD,
};
pub use query::{BoundQuery, PairLabel};
pub use record::{ExecutionKind, ExecutionLog, ExecutionRecord};
pub use training::{prepare_training_set, TrainingSet};

// Re-export the query language so that downstream users only need one
// dependency.
pub use pxql;
