//! PerfXplain: explain the relative performance of MapReduce jobs and tasks.
//!
//! This crate is a faithful reproduction of the system described in
//! *"PerfXplain: Debugging MapReduce Job Performance"* (Khoussainova,
//! Balazinska, Suciu — VLDB 2012).  Given
//!
//! * an **execution log** of past MapReduce job and task executions, each
//!   represented as a flat vector of features (configuration parameters,
//!   data characteristics, Hadoop counters, averaged Ganglia metrics and the
//!   runtime itself), and
//! * a **PXQL query** identifying a pair of executions and stating what was
//!   observed and what was expected,
//!
//! it produces an **explanation**: a pair of predicates over *pair features*
//! (a despite clause and a because clause) chosen to be applicable to the
//! pair of interest, precise, general and relevant.
//!
//! # Quick example
//!
//! An investigation is a *session*: many PXQL queries against one log.  The
//! [`XplainService`] is the entry point built for that — it owns the log,
//! caches its columnar encoding per `(generation, kind)`, and answers each
//! [`QueryRequest`] (parse + bind + explain + narrate + assess) in one
//! call, concurrently if asked ([`XplainService::par_explain_batch`]):
//!
//! ```
//! use perfxplain_core::{ExecutionLog, ExecutionRecord, QueryRequest, XplainService};
//!
//! // A miniature execution log: jobs with big blocks finish in ~600 s
//! // regardless of their input size.
//! let mut log = ExecutionLog::new();
//! for i in 0..30 {
//!     let big_blocks = i % 2 == 0;
//!     let input: f64 = if i % 4 < 2 { 32.0e9 } else { 1.0e9 };
//!     let duration = if big_blocks { 600.0 } else { input / 5.0e7 };
//!     log.push(
//!         ExecutionRecord::job(format!("job_{i}"))
//!             .with_feature("inputsize", input)
//!             .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
//!             .with_feature("duration", duration),
//!     );
//! }
//! log.rebuild_catalogs();
//!
//! // "Despite reading much more data, job_0 was not slower than job_2. Why?"
//! let service = XplainService::new(log);
//! let request = QueryRequest::text(
//!     "DESPITE inputsize_compare = GT\n\
//!      OBSERVED duration_compare = SIM\n\
//!      EXPECTED duration_compare = GT",
//! )
//! .with_pair("job_0", "job_2");
//!
//! let outcome = service.explain(&request).unwrap();
//! assert!(outcome.explanation.width() >= 1);
//! println!("{}", outcome.explanation);
//!
//! // Repeats (any pair, any query of the same kind) reuse the cached
//! // encoding; mutations bump the log's generation and invalidate it.
//! assert!(service.explain(&request).unwrap().view_reused);
//! service.with_log_mut(|log| log.rebuild_catalogs());
//! assert!(!service.explain(&request).unwrap().view_reused);
//! ```
//!
//! For one-off questions the stateless [`PerfXplain`] engine
//! (`engine.explain(&log, &bound)`) remains available; it is a thin wrapper
//! over a single-shot pass through the same [`service`] code path.
//!
//! # Performance
//!
//! Explanation generation is dominated by two costs: encoding the log into
//! its columnar view, and classifying O(n²) candidate pairs against the
//! query.  The pipeline attacks both with a **sharded, columnar, streaming,
//! zero-re-encoding hot path** ([`columnar`], [`training`], [`bridge`],
//! [`record`]), and getting *to* that hot path — and staying on it while
//! new executions stream in — is a **six-tier story**:
//!
//! | tier | start state | cost |
//! |---|---|---|
//! | cold JSON ingest | raw bundles or a JSON log | parse + catalog inference + full columnar encode |
//! | snapshot open | a [`snapshot`] directory | read + fingerprint-verify + decode binary columns; **no parsing, no re-encode** |
//! | warm service cache | a running [`XplainService`] | `Arc` clone of the cached view; zero work |
//! | live append | a running service ingesting | O(tail) splice of the fresh records into the cached view's **append tail**; base columns `Arc`-shared untouched |
//! | durable append | a service with the journal enabled | one checksummed frame written to `journal.bin` before the ack, fsynced per [`FsyncPolicy`]; replayed through the delta path on restart |
//! | networked serving | a `perfxplain-server` front-end | one admission-time [`estimate_cost`](service::XplainService::estimate_cost) per request; queries share the warm cache |
//!
//! A deployment pays tier 1 once per *source* change (and, with
//! incremental [`snapshot::sync`], only for the shards whose source
//! actually changed), tier 2 once per process start, and tier 3 on every
//! query; tier 4 keeps the cache warm *through* ingest — an
//! [`XplainService::append`](service::XplainService::append) never costs a
//! re-encode, only an O(tail) delta refresh on the next query; tier 5
//! makes those acks *mean* something across a crash — with
//! [`enable_journal`](service::XplainService::enable_journal) every append
//! is framed and checksummed into a write-ahead journal before it is
//! acknowledged ([`AppendOutcome::durable`](service::AppendOutcome)
//! reports whether the frame was fsynced first), and a restart replays the
//! journal tail through the same delta path, so recovery resumes warm;
//! tier 6 wraps the warm service in a wire protocol so many remote
//! debugging sessions share one log — each request is admitted against a
//! concurrent cost budget computed from its compiled-plan statistics
//! ([`CostEstimate`](service::CostEstimate), no view built, no features
//! scanned), refunds the estimate/actual difference mid-flight once the
//! measured related-pair count is known
//! ([`CostProbe`](service::CostProbe),
//! [`CostEstimate::refined_units`](service::CostEstimate::refined_units)),
//! and carries a [`CancelToken`](cancel::CancelToken) deadline the
//! enumeration and clause loops observe at phase boundaries, so a serving
//! process stays bounded in both memory and per-request latency.
//!
//! 1. **Ingest sharded.** [`ExecutionLog::extend_parallel`] ingests record
//!    batches on concurrent threads (per-batch catalogs inferred in
//!    parallel, merged by [`FeatureCatalog::merge`]), and
//!    [`ExecutionLog::from_shards`] assembles independently collected shard
//!    logs without re-scanning them — `hadoop_logs::collect_bundles_sharded`
//!    parses history/conf/Ganglia bundles this way.  Both are exactly
//!    equivalent to the serial push-and-rebuild path.
//! 2. **Encode sharded, once.** [`ColumnarLog`](columnar::ColumnarLog)
//!    turns the per-kind records into per-feature columns: numeric cells
//!    inline, nominal cells interned by canonical PXQL text (formatted into
//!    a reused scratch buffer — no per-cell allocation) with the original
//!    [`pxql::Value`] retained per id.
//!    [`build_sharded`](columnar::ColumnarLog::build_sharded) splits the
//!    row space into contiguous segments, encodes each with a **local**
//!    dictionary on its own `std::thread::scope` thread, and merges the
//!    segments by dictionary remapping
//!    ([`mlcore::ColumnStore::merge_segments`]) into a view **bit-identical**
//!    to the single-shot build;
//!    [`build_auto`](columnar::ColumnarLog::build_auto) picks the shard
//!    count (one per core at ≥ [`SHARDED_BUILD_THRESHOLD`] rows), and the
//!    [`XplainService`](service::XplainService) builds its cached
//!    per-`(generation, kind)` views through it automatically.  The view is
//!    self-contained and `Arc`-shared, so every query — including the
//!    despite-extension pass and whole concurrent batches — runs with zero
//!    re-encoding.  Hot lookup maps (dictionary interning, `row_of`,
//!    `PairCatalog`) use a vendored deterministic [`mlcore::FxHashMap`]
//!    instead of SipHash.
//! 3. **Compile the query.** [`CompiledQuery`](columnar::CompiledQuery)
//!    resolves every clause atom to a `(column index, pair-feature group)`
//!    pair and pre-analyses its constant (`compare` atoms become a 3-entry
//!    truth table), so classifying one candidate pair is a handful of
//!    integer/float comparisons — no allocation, no string hashing, no
//!    `BTreeMap`.
//! 4. **Stream the enumeration, parallel by default.**
//!    `collect_related_pairs` never materialises the candidate space:
//!    blocking groups and the deterministic cap (a stateless per-ordinal
//!    hash, so enumeration order and parallelism cannot change the outcome)
//!    are applied while streaming, and memory stays proportional to the
//!    *related* pairs.  On multi-core machines the outer record loop fans
//!    out over `std::thread::scope` threads automatically once the plan
//!    enumerates at least as many candidates as an unblocked
//!    [`PARALLEL_ENUMERATION_THRESHOLD`]-record log; the `parallel` feature
//!    forces the fan-out on, the `serial` feature forces it off, and
//!    results are bit-identical in every mode.
//! 5. **Encode the sample directly.**
//!    [`DatasetBridge::encode_from_view`](bridge::DatasetBridge::encode_from_view)
//!    derives the pair features of the sampled training pairs straight from
//!    the columns into the split-search [`mlcore::Dataset`];
//!    [`PairExample`] maps exist only at the API/narration boundary.
//! 6. **Train in O(n log n).**  The per-feature predicate search of
//!    Algorithm 1 ([`mlcore::best_split_for_attribute_filtered`]) is a
//!    single-sort sweep: values sorted once per (node, attribute), every
//!    candidate threshold/equality scored in O(1) from running prefix
//!    counts — the naive evaluator rescanned all rows per candidate,
//!    O(d·n), quadratic on continuous features.  The applicability filter
//!    (the pair of interest must satisfy every emitted predicate) is
//!    threaded through the sweep itself, the per-attribute searches of the
//!    greedy clause loop ([`PerfXplain`]) and of [`mlcore::best_split`] fan
//!    out over `shard::map_chunks` threads on large nodes, and Relief
//!    ([`mlcore::relief_weights`], behind the RuleOfThumb baseline) scans
//!    attribute-major over typed contiguous columns with its sampled
//!    instances fanned out the same way.  The pre-sweep trainer is retained
//!    as `mlcore::oracle` (tests/benches only) and the winners are
//!    proptest-proven bit-identical to it.
//! 7. **Persist the encoded form, compressed.** The [`snapshot`] store
//!    writes each shard as a length-prefixed binary segment file (format
//!    v2) under a manifest of FxHash content fingerprints, per-shard
//!    catalogs and per-shard byte accounting
//!    ([`SnapshotManifest::usage`](snapshot::SnapshotManifest::usage)):
//!
//!    ```text
//!    magic ─ version ─┬─ records block: id, kind, parent, exceptions
//!                     ├─ job columns:  schema + per-column compressed cells
//!                     └─ task columns: presence bitmap ─ kind tag
//!                                      ─ bit-packed dictionary ids
//!                                      ─ FoR/delta/raw numeric stream
//!    ```
//!
//!    Columns compress via [`mlcore::ColumnStore::encode_binary`]
//!    (dictionary ids at ⌈log₂(dict len)⌉ bits, integral numerics
//!    frame-of-reference/delta coded, a raw fallback that keeps NaN/±inf/
//!    −0.0 bit-exact), and the records block stores **only** the features
//!    the columns cannot reproduce bit-exactly (`Null` values,
//!    canonical-text collisions) — everything else is rebuilt from the
//!    columns on open, which is where the ≥2× on-disk shrink comes from.
//!    A cold start ([`snapshot::open`] →
//!    [`Snapshot::into_views`](snapshot::Snapshot::into_views), or
//!    [`XplainService::open_snapshot`](service::XplainService::open_snapshot)
//!    for a pre-warmed service) loads segments on concurrent threads,
//!    stitches them with the same dictionary-remapping merge as the
//!    sharded encode — bit-identical to encoding from scratch — and
//!    **moves** the decoded `Arc`-backed column buffers into the views
//!    (adopting them outright for single-segment snapshots), so peak open
//!    memory is approximately the final views, not a multiple of them.
//!    Incremental re-ingest ([`snapshot::sync`]) fingerprints each shard's
//!    source and re-encodes only the dirty shards; a changed global
//!    catalog re-encodes everything from on-disk records, still never
//!    re-parsing the source.
//! 8. **Append live, refresh by delta.**
//!    [`XplainService::append`](service::XplainService::append) extends the
//!    served log *without* invalidating the cached views: the next query
//!    splices the fresh records into a small **append-tail segment**
//!    ([`ColumnarLog::with_appended`](columnar::ColumnarLog::with_appended)
//!    over [`mlcore::ColumnStore::splice_tail`]) — dictionaries extend in
//!    place, the base columns stay `Arc`-shared byte for byte, and the
//!    refresh costs O(tail) instead of O(log).  Per-kind **rewrite
//!    watermarks** ([`ExecutionLog::rewrite_generation`]) keep the shortcut
//!    sound: an append whose batch changes the catalog, and every
//!    non-append mutation ([`XplainService::with_log_mut`]), move the
//!    watermark and force a full rebuild.  Tail lookups win over shadowed
//!    base rows (duplicate ids behave exactly like a rebuild), queries see
//!    base and tail as one view, and a tail that outgrows the configurable
//!    [`CompactionPolicy`](service::CompactionPolicy) folds back into its
//!    base ([`ColumnarLog::compacted`](columnar::ColumnarLog::compacted),
//!    [`mlcore::ColumnStore::concat_encoded`]) on the shared worker pool in
//!    the background.  [`XplainService::checkpoint`](service::XplainService::checkpoint)
//!    persists the live tail as one incremental snapshot shard
//!    ([`snapshot::sync_append`], [`ShardInput::Keep`](snapshot::ShardInput::Keep)
//!    for the clean prefix) — a checkpoint while serving, no stop-the-world
//!    re-encode.  [`ViewCacheStats`](service::ViewCacheStats) counts delta
//!    refreshes vs full rebuilds vs compactions
//!    ([`XplainService::view_stats`](service::XplainService::view_stats)).
//! 9. **Recover in layers, cheapest remedy first.** Transient IO errors
//!    (interrupted, would-block, timed-out) are absorbed *in place*: every
//!    snapshot read, write and rename retries with bounded exponential
//!    backoff before surfacing [`CoreError::SnapshotIo`], and
//!    [`SyncReport::io_retries`](snapshot::SyncReport::io_retries) counts
//!    what was absorbed.  A store the strict [`snapshot::open`] rejects as
//!    corrupt is *salvaged* next ([`snapshot::open_salvage`],
//!    [`XplainService::open_snapshot_salvage`](service::XplainService::open_snapshot_salvage)):
//!    every shard fingerprint-verifies independently, damaged segments are
//!    **quarantined** — renamed aside, never deleted — and the healthy
//!    shards keep serving as a
//!    [`PartialSnapshot`](snapshot::PartialSnapshot) while a targeted
//!    [`snapshot::sync`] re-encodes *only* the quarantined shards from
//!    source.  A full re-ingest is the **last resort**, reserved for
//!    stores salvage cannot read at all: an unusable manifest, or a v1
//!    store reporting [`CoreError::SnapshotVersionSkew`].
//!    [`snapshot::verify`] audits every fingerprint read-only (CLI
//!    `perfxplain snapshot verify`), and under `--features failpoints`
//!    every one of these IO sites carries a named fault-injection point
//!    the chaos suite drives.
//! 10. **Journal acknowledged appends; replay them on restart.** The
//!     write-ahead journal
//!     ([`XplainService::enable_journal`](service::XplainService::enable_journal))
//!     closes the durability gap between checkpoints: every append writes a
//!     length-prefixed, checksum-framed record batch to `journal.bin` in
//!     the snapshot directory *before* the ack, fsynced per
//!     [`FsyncPolicy`] (`Always` / `EveryN` /
//!     `OnCheckpoint`), and [`AppendOutcome::durable`](service::AppendOutcome)
//!     — surfaced on the wire as the append response's `durable` flag —
//!     says whether *this* ack survives a crash.  On open (strict or
//!     salvage) the journal is replayed after the manifest: frames record
//!     the log position they were acked at, so already-checkpointed frames
//!     skip, a torn or bit-rotted tail **truncates at the last valid
//!     frame** (typed, never a panic, never a count-sized allocation), and
//!     the replayed batches splice through the same
//!     [`with_appended`](columnar::ColumnarLog::with_appended) delta path
//!     as live appends — the restarted service answers its first query
//!     warm, tail already in the views.  [`XplainService::checkpoint`] and
//!     [`XplainService::persist`](service::XplainService::persist) rotate
//!     the journal atomically (fresh journal staged before the manifest
//!     rename, reset only after the commit), so journal bytes only ever
//!     describe the tail beyond the snapshot.  [`verify_journal`]
//!     audits frame checksums read-only alongside [`snapshot::verify`],
//!     [`JournalStats`] (bytes, frames appended /
//!     replayed / truncated, fsyncs, last rotation generation) feeds the
//!     server's `status` probe, and the journal's write / fsync / replay
//!     paths run through the same transient-retry and failpoint machinery
//!     as the snapshot store.  The invariant is proven both ways: a
//!     crash-prefix proptest damages the journal at arbitrary byte offsets
//!     and asserts exactly the acked prefix recovers, and the CI
//!     crash-recovery smoke SIGKILLs a journaled server mid-storm and
//!     asserts zero acked-durable records lost.
//!
//! **Invariants.** The columnar path produces the same related-pair set,
//! labels, dataset and explanations as the map-based path
//! (`compute_pair_features` + [`DatasetBridge::build`](bridge::DatasetBridge::build),
//! both retained as the reference implementation); the sharded
//! ingest/encode paths produce logs and views bit-identical to their
//! single-shot counterparts for every shard count; and a persisted
//! snapshot reopens to the same log and bit-identical views
//! (`build_from_snapshot(persist(log)) ≡ build_sharded(log, ..)`), with
//! one-dirty-shard syncs re-encoding exactly one segment; and the
//! delta-maintained live views are equivalent to never having cached at
//! all — under arbitrary interleavings of appends (catalog-preserving and
//! catalog-changing), non-append mutations, tail compactions and queries,
//! the view the service serves is bit-identical to a from-scratch
//! `build_sharded` of the log at that moment, and the answers match a
//! stateless engine's.
//! `tests/properties.rs` proves all of these on randomized logs, queries
//! and shard counts, and `tests/snapshot_store.rs` pins the corruption
//! taxonomy (truncation, fingerprint mismatch, version skew → typed
//! [`CoreError`]s), that every corruption is salvageable (lenient open
//! quarantines exactly the damaged shard and serves the rest) and
//! manifest-order authority.  Nominal
//! interning is keyed by canonical text, so two raw values that differ
//! textually but compare equal under PXQL's cross-type rules (`Bool(true)`
//! vs the string `"true"`) diverge — canonical log producers never mix
//! value types within a feature.  When the candidate space exceeds
//! `max_candidate_pairs` the subsample differs from the seed
//! implementation's (hash-based vs sequential RNG), but is equally
//! deterministic for a fixed seed.
//!
//! `cargo bench --bench pairs_pipeline` tracks pair-classification
//! throughput and candidate memory at n ∈ {100, 1k, 10k}, cached-view reuse
//! at n = 20k, sharded ingest+encode wall time at n ∈ {100k, 1M} for
//! shards ∈ {1, 2, 4, 8}, the cold-start comparison (JSON re-parse vs
//! snapshot open) at n ∈ {100k, 1M}, a despite-blocked enumeration over
//! 100k records, and the `explain_latency` phase breakdown (enumerate /
//! featurize / relief / tree at n ∈ {20k, 100k}, with the retained naive
//! trainer timed against the sweep trainer on the identical dataset and
//! cross-checked equal), and the `live_ingest` scenario (sustained append
//! batches against a served log at n ∈ {100k, 1M}: the O(tail) delta
//! refresh vs the full re-encode a non-delta cache would pay per append,
//! plus the sustained append rate and warm query latency while serving),
//! all in `BENCH_pairs.json` (alongside the
//! machine's hardware thread count — sharded speedups are real
//! parallelism, so they track the core count and degenerate to ~1x on a
//! single core).  CI additionally runs release-mode smokes under
//! wall-clock ceilings: the sharded 100k ingest+query round trip, the
//! snapshot persist → reopen → query round trip checked outcome-equal to
//! the in-memory path, the blocked 100k explain (cold + warm) on a
//! trainer-heavy log, and the append-while-serving loop (every batch must
//! refresh by delta, with the mean refresh under a fixed fraction of one
//! full re-encode).

pub mod baselines;
pub mod bridge;
pub mod cancel;
pub mod columnar;
pub mod config;
pub mod error;
pub mod eval;
pub mod explain;
pub mod explanation;
pub mod features;
pub mod levels;
pub mod metrics;
pub mod narrate;
pub mod pairs;
pub mod query;
pub mod record;
pub mod service;
pub mod snapshot;
pub mod training;

// The scoped-thread fan-out primitive now lives in `mlcore` (so the split
// search and Relief can fan out too); re-export it under its historical
// path — `perfxplain_core::shard::map_chunks` keeps working unchanged.
// The bounded worker pool sits beside it: servers build their own, batch
// APIs share `pool::shared()`.
pub use mlcore::pool;
pub use mlcore::shard;

// The fault-injection registry (a no-op unless the `failpoints` feature is
// on) is re-exported so the chaos suite and the server crate script the
// same sites the snapshot store triggers.
pub use mlcore::failpoints;

pub use baselines::{RuleOfThumb, SimButDiff};
pub use cancel::CancelToken;
pub use columnar::{ColumnarLog, CompiledPredicate, CompiledQuery, SHARDED_BUILD_THRESHOLD};
pub use config::ExplainConfig;
pub use error::{CoreError, Result};
pub use eval::{
    evaluate_on_log, generate_explanation, split_log, train_test_round, Aggregate,
    EvaluationResult, Technique,
};
pub use explain::PerfXplain;
pub use explanation::Explanation;
pub use features::{FeatureCatalog, FeatureDef, FeatureKind, DURATION_FEATURE};
pub use levels::FeatureLevel;
pub use metrics::{assess, generality, precision, relevance, ExplanationQuality, MetricEstimate};
pub use narrate::narrate;
pub use pairs::{
    compute_pair_features, PairCatalog, PairExample, PairFeatureGroup, DEFAULT_SIM_THRESHOLD,
};
pub use query::{BoundQuery, PairLabel};
pub use record::{ExecutionKind, ExecutionLog, ExecutionRecord};
pub use service::{
    AppendOutcome, CompactionPolicy, CostEstimate, CostProbe, QueryInput, QueryOutcome,
    QueryRequest, ViewCacheStats, XplainService,
};
pub use snapshot::{
    verify_journal, FsyncPolicy, JournalHealth, JournalStats, PartialSnapshot, RecordShard,
    ShardDamage, ShardEntry, ShardHealth, ShardInput, Snapshot, SnapshotManifest, SnapshotShard,
    SnapshotUsage, SnapshotViews, SyncReport, SNAPSHOT_VERSION,
};
pub use training::{
    collect_related_pairs_in, prepare_encoded_training, prepare_encoded_training_in,
    prepare_training_set, EncodedTraining, TrainingSet, PARALLEL_ENUMERATION_THRESHOLD,
};

// Re-export the query language so that downstream users only need one
// dependency.
pub use pxql;
