//! Cooperative cancellation for in-flight queries.
//!
//! The explanation pipeline runs for milliseconds to seconds depending on
//! log size; a networked caller needs to abandon a request (client hung up,
//! deadline passed, server shedding load) without tearing down the worker
//! thread that is computing it.  [`CancelToken`] is the handshake: the
//! requester keeps one clone and the pipeline checks another at its phase
//! boundaries — before resolution, per enumeration batch, after training,
//! and per clause-search iteration — returning
//! [`CoreError::Cancelled`](crate::CoreError::Cancelled) or
//! [`CoreError::DeadlineExceeded`](crate::CoreError::DeadlineExceeded)
//! instead of the explanation.  Checks are a relaxed atomic load plus, when
//! a deadline is set, an `Instant::now()` comparison — cheap enough for
//! inner loops at batch granularity.
//!
//! The default token ([`CancelToken::never`], also `Default`) carries no
//! allocation and never fires, so library callers that don't care about
//! cancellation pay one `Option` check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{CoreError, Result};

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle shared between a requester and the
/// pipeline executing its query.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A token that can never fire: no allocation, every check passes.
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A manually-fired token: call [`CancelToken::cancel`] on any clone to
    /// stop the pipeline at its next check.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that fires once `deadline` passes (and can also be fired
    /// manually before that).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// A token whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Fires the token: every clone's next [`CancelToken::check`] returns
    /// [`CoreError::Cancelled`].  A no-op on [`CancelToken::never`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has been fired or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// The deadline, if this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|inner| inner.deadline)
    }

    /// The pipeline-side check: `Ok(())` to keep going,
    /// [`CoreError::Cancelled`] after [`CancelToken::cancel`],
    /// [`CoreError::DeadlineExceeded`] once the deadline passes.  A manual
    /// cancel wins over an expired deadline (the requester's abort reason
    /// is the more specific signal).
    pub fn check(&self) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(CoreError::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(CoreError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let token = CancelToken::never();
        token.cancel();
        assert!(token.check().is_ok());
        assert!(!token.is_cancelled());
        assert_eq!(token.deadline(), None);
        assert!(CancelToken::default().check().is_ok());
    }

    #[test]
    fn manual_cancel_reaches_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(clone.check().is_ok());
        token.cancel();
        assert_eq!(clone.check(), Err(CoreError::Cancelled));
        assert!(clone.is_cancelled());
    }

    #[test]
    fn expired_deadline_fires_as_deadline_exceeded() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.check(), Err(CoreError::DeadlineExceeded));
        // A manual cancel is the more specific reason and wins.
        token.cancel();
        assert_eq!(token.check(), Err(CoreError::Cancelled));
    }

    #[test]
    fn future_deadline_passes_until_it_arrives() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(token.check().is_ok());
        assert!(token.deadline().is_some());
    }
}
