//! Evaluation harness primitives (Section 6.1 of the paper).
//!
//! The paper evaluates every technique with repeated two-fold cross
//! validation: the log of job executions is split into a training log and a
//! test log by assigning each *job* (together with its tasks) to the
//! training side with 50% probability; an explanation is generated from the
//! training log and its precision/relevance/generality are measured over the
//! test log.  The pair of interest is added to the training log so that the
//! query remains answerable.
//!
//! This module provides the split, out-of-sample metric estimation (on
//! related pairs of the test log) and a [`Technique`] dispatcher; the
//! experiment loops that regenerate the paper's figures live in the
//! benchmark crate.

use crate::baselines::{RuleOfThumb, SimButDiff};
use crate::config::ExplainConfig;
use crate::error::Result;
use crate::explain::PerfXplain;
use crate::explanation::Explanation;
use crate::metrics::{self, ExplanationQuality};
use crate::query::BoundQuery;
use crate::record::{ExecutionKind, ExecutionLog};
use crate::training::{collect_related_pairs, RelatedPair, TrainingSet};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three explanation-generation techniques compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// The PerfXplain algorithm (Algorithm 1).
    PerfXplain,
    /// The RuleOfThumb baseline (Section 5.1).
    RuleOfThumb,
    /// The SimButDiff baseline (Section 5.2, Algorithm 2).
    SimButDiff,
}

impl Technique {
    /// All techniques, in the order the paper's figures list them.
    pub fn all() -> [Technique; 3] {
        [
            Technique::PerfXplain,
            Technique::RuleOfThumb,
            Technique::SimButDiff,
        ]
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technique::PerfXplain => write!(f, "PerfXplain"),
            Technique::RuleOfThumb => write!(f, "RuleOfThumb"),
            Technique::SimButDiff => write!(f, "SimButDiff"),
        }
    }
}

/// Generates an explanation with the chosen technique.
pub fn generate_explanation(
    technique: Technique,
    log: &ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> Result<Explanation> {
    match technique {
        Technique::PerfXplain => PerfXplain::new(config.clone()).explain(log, query),
        Technique::RuleOfThumb => RuleOfThumb::new(config.clone()).explain(log, query),
        Technique::SimButDiff => SimButDiff::new(config.clone()).explain(log, query),
    }
}

/// Splits the log into a training log and a test log.
///
/// Every job is assigned to the training log with probability
/// `train_fraction`; its tasks follow it.  The executions of the query's
/// pair of interest are always kept in the training log (and also remain in
/// the test log so that test pairs exist even for very small logs).
pub fn split_log(
    log: &ExecutionLog,
    query: &BoundQuery,
    train_fraction: f64,
    seed: u64,
) -> (ExecutionLog, ExecutionLog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train_jobs: Vec<&str> = Vec::new();
    let mut test_jobs: Vec<&str> = Vec::new();
    for job in log.jobs() {
        if rng.random::<f64>() < train_fraction {
            train_jobs.push(&job.id);
        } else {
            test_jobs.push(&job.id);
        }
    }

    // The jobs owning the pair of interest must be available for training.
    let poi_jobs: Vec<String> = [&query.left_id, &query.right_id]
        .iter()
        .filter_map(|id| {
            log.get(id).map(|record| match record.kind {
                ExecutionKind::Job => record.id.clone(),
                ExecutionKind::Task => record
                    .parent_job
                    .clone()
                    .unwrap_or_else(|| record.id.clone()),
            })
        })
        .collect();
    for job in &poi_jobs {
        if !train_jobs.contains(&job.as_str()) {
            train_jobs.push(job);
        }
    }

    let train = log.restrict_to_jobs(&train_jobs);
    let mut test = log.restrict_to_jobs(&test_jobs);
    // Keep the pair of interest visible in the test log too, so that
    // explanations can be assessed even when the split put its jobs in
    // training.
    for job in &poi_jobs {
        if !test_jobs.contains(&job.as_str()) {
            let extra = log.restrict_to_jobs(&[job.as_str()]);
            test.extend(extra);
        }
    }
    (train, test)
}

/// Materialises the related pairs of a log (typically the *test* log) with
/// their full pair features, without balancing, for metric estimation.
pub fn related_pairs_for_evaluation(
    log: &ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> TrainingSet {
    let (records, related) = collect_related_pairs(log, query, config);
    materialise(log, query, &records, &related, config)
}

fn materialise(
    log: &ExecutionLog,
    query: &BoundQuery,
    records: &[&crate::record::ExecutionRecord],
    related: &[RelatedPair],
    config: &ExplainConfig,
) -> TrainingSet {
    let catalog = log.catalog(query.kind);
    let mut set = TrainingSet::default();
    for pair in related {
        set.examples.push(crate::pairs::PairExample::build(
            catalog,
            records[pair.left],
            records[pair.right],
            config.sim_threshold,
        ));
        set.labels
            .push(pair.label == crate::query::PairLabel::Observed);
    }
    set
}

/// Result of evaluating one explanation on a test log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationResult {
    /// Quality metrics measured over the related pairs of the test log.
    pub quality: ExplanationQuality,
    /// Number of related test pairs the metrics were estimated from.
    pub related_pairs: usize,
}

/// Evaluates an explanation's relevance, precision and generality over the
/// related pairs of `test_log`.
pub fn evaluate_on_log(
    explanation: &Explanation,
    test_log: &ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> EvaluationResult {
    let set = related_pairs_for_evaluation(test_log, query, config);
    EvaluationResult {
        quality: metrics::assess(&set, explanation),
        related_pairs: set.len(),
    }
}

/// Mean and standard deviation of a series of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Number of measurements that produced a defined value.
    pub samples: usize,
}

impl Aggregate {
    /// Aggregates the defined values of a series.
    pub fn from_values(values: &[Option<f64>]) -> Aggregate {
        let defined: Vec<f64> = values.iter().flatten().copied().collect();
        Aggregate {
            mean: mlcore::mean(&defined),
            stddev: mlcore::stddev(&defined),
            samples: defined.len(),
        }
    }
}

/// Runs one train/test round: split, generate with the technique, evaluate
/// on the test side.  Returns `None` when the training log does not contain
/// enough related pairs for the technique to learn from.
pub fn train_test_round(
    technique: Technique,
    log: &ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
    train_fraction: f64,
    seed: u64,
) -> Option<(Explanation, EvaluationResult)> {
    let (train, test) = split_log(log, query, train_fraction, seed);
    let explanation = generate_explanation(technique, &train, query, config).ok()?;
    let evaluation = evaluate_on_log(&explanation, &test, query, config);
    Some((explanation, evaluation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExecutionRecord;
    use pxql::parse_query;

    fn log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for i in 0..40 {
            let big_blocks = i % 2 == 0;
            let input: f64 = if i % 4 < 2 { 32.0e9 } else { 1.0e9 };
            let duration = if big_blocks { 600.0 } else { input / 5.0e7 };
            let job_id = format!("job_{i}");
            log.push(
                ExecutionRecord::job(&job_id)
                    .with_feature("inputsize", input)
                    .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                    .with_feature("duration", duration),
            );
            log.push(
                ExecutionRecord::task(format!("task_{i}_m_0"), &job_id)
                    .with_feature("jobid", job_id.as_str())
                    .with_feature("duration", duration / 4.0),
            );
        }
        log.rebuild_catalogs();
        log
    }

    fn query() -> BoundQuery {
        let q = parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        BoundQuery::new(q, "job_0", "job_2")
    }

    #[test]
    fn split_keeps_tasks_with_their_jobs_and_poi_in_training() {
        let log = log();
        let query = query();
        let (train, test) = split_log(&log, &query, 0.5, 7);
        assert!(train.jobs().count() > 0);
        assert!(test.jobs().count() > 0);
        // The pair of interest is always available for training.
        assert!(train.get("job_0").is_some());
        assert!(train.get("job_2").is_some());
        // Tasks follow their jobs.
        for task in train.tasks() {
            let parent = task.parent_job.as_deref().unwrap();
            assert!(train.get(parent).is_some());
        }
        for task in test.tasks() {
            let parent = task.parent_job.as_deref().unwrap();
            assert!(test.get(parent).is_some());
        }
    }

    #[test]
    fn split_fractions_roughly_respected() {
        let log = log();
        let query = query();
        let (train_small, _) = split_log(&log, &query, 0.1, 3);
        let (train_large, _) = split_log(&log, &query, 0.9, 3);
        assert!(train_small.jobs().count() < train_large.jobs().count());
    }

    #[test]
    fn evaluation_measures_on_test_pairs() {
        let log = log();
        let query = query();
        let config = ExplainConfig::default().with_seed(5);
        let explanation =
            generate_explanation(Technique::PerfXplain, &log, &query, &config).unwrap();
        let result = evaluate_on_log(&explanation, &log, &query, &config);
        assert!(result.related_pairs > 0);
        assert!(result.quality.precision.value.is_some());
    }

    #[test]
    fn all_techniques_produce_explanations_in_a_round() {
        let log = log();
        let query = query();
        let config = ExplainConfig::default().with_width(2).with_seed(1);
        for technique in Technique::all() {
            let round = train_test_round(technique, &log, &query, &config, 0.5, 11);
            let (explanation, evaluation) =
                round.unwrap_or_else(|| panic!("{technique} failed to produce an explanation"));
            assert!(explanation.width() <= 2, "{technique} width too large");
            assert!(evaluation.related_pairs > 0);
        }
    }

    #[test]
    fn aggregate_ignores_undefined_values() {
        let agg = Aggregate::from_values(&[Some(0.8), None, Some(0.6)]);
        assert_eq!(agg.samples, 2);
        assert!((agg.mean - 0.7).abs() < 1e-12);
        assert!(agg.stddev > 0.0);
        let empty = Aggregate::from_values(&[None, None]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn technique_display_names() {
        assert_eq!(Technique::PerfXplain.to_string(), "PerfXplain");
        assert_eq!(Technique::all().len(), 3);
    }
}
